//! E12 — range-consistent aggregation: the polynomial closed form vs. the
//! enumeration-based evaluator on key-induced conflicts whose repair space doubles with
//! every extra conflict pair (the Example 4 family), plus the range-narrowing effect of
//! increasingly complete priorities.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_aggregate::{
    narrowing_report, range_by_enumeration, range_closed_form, AggregateFunction, AggregateQuery,
};
use pdqi_core::{FamilyKind, RepairContext};
use pdqi_datagen::{example4_instance, random_priority};
use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A salary table with `groups` key groups of `dups` conflicting tuples each.
fn salary_context(groups: usize, dups: usize) -> RepairContext {
    let schema = Arc::new(
        RelationSchema::from_pairs("Emp", &[("Name", ValueType::Name), ("Salary", ValueType::Int)])
            .unwrap(),
    );
    let mut rows = Vec::new();
    for g in 0..groups {
        for d in 0..dups {
            rows.push(vec![Value::name(&format!("n{g}")), Value::int((10 * (g + 1) + d) as i64)]);
        }
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = pdqi_constraints::FdSet::parse(schema, &["Name -> Salary"]).unwrap();
    RepairContext::new(instance, fds)
}

fn bench(c: &mut Criterion) {
    // The headline series: SUM(Salary) ranges as the number of conflicting key groups
    // grows. The closed form is linear in the number of tuples; the enumeration walks a
    // repair space of size dups^groups.
    eprintln!("E12: SUM(Salary) range, closed form vs enumeration");
    for groups in [4usize, 8, 12, 16] {
        let ctx = salary_context(groups, 2);
        let query = AggregateQuery::over(ctx.instance().schema(), AggregateFunction::Sum, "Salary")
            .unwrap();
        let closed = range_closed_form(&ctx, &query).unwrap();
        let brute = range_by_enumeration(
            &ctx,
            &ctx.empty_priority(),
            FamilyKind::Rep.family().as_ref(),
            &query,
        );
        eprintln!(
            "  groups={groups:<3} repairs={:<8} closed={closed} enumerated={brute} (agree: {})",
            ctx.count_repairs(),
            closed.glb == brute.glb && closed.lub == brute.lub
        );
    }

    // Range narrowing under increasingly complete priorities (the aggregation analogue
    // of E9), printed as a series.
    let ctx = salary_context(8, 3);
    let query =
        AggregateQuery::over(ctx.instance().schema(), AggregateFunction::Sum, "Salary").unwrap();
    let mut rng = StdRng::seed_from_u64(12);
    let chain: Vec<_> = [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&p| random_priority(Arc::clone(ctx.graph()), p, &mut rng))
        .collect();
    eprintln!("E12: SUM range width vs. priority completeness (G-Rep)");
    let report = narrowing_report(&ctx, &chain, FamilyKind::Global, &query);
    eprint!("{}", report.render());

    let mut group = c.benchmark_group("e12_aggregation");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));
    for groups in [6usize, 10, 14] {
        let ctx = salary_context(groups, 2);
        let query = AggregateQuery::over(ctx.instance().schema(), AggregateFunction::Sum, "Salary")
            .unwrap();
        group.bench_with_input(BenchmarkId::new("closed_form", groups), &groups, |b, _| {
            b.iter(|| range_closed_form(&ctx, &query).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("enumeration", groups), &groups, |b, _| {
            b.iter(|| {
                range_by_enumeration(
                    &ctx,
                    &ctx.empty_priority(),
                    FamilyKind::Rep.family().as_ref(),
                    &query,
                )
            })
        });
    }
    // The Example 4 instance (a perfect matching) scales the same way; keep one series on
    // it so the aggregation experiment lines up with E2's repair-explosion series.
    for n in [8usize, 12, 16] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let query =
            AggregateQuery::over(ctx.instance().schema(), AggregateFunction::Sum, "B").unwrap();
        group.bench_with_input(BenchmarkId::new("closed_form_example4", n), &n, |b, _| {
            b.iter(|| range_closed_form(&ctx, &query).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
