//! E7 — Fig. 5, row `C-Rep`: C-repair checking is PTIME (the Algorithm-1 simulation of
//! Prop. 7), and C-consistent query answering enumerates the common repairs, whose number
//! shrinks as the priority grows.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::{CommonOptimal, RepairContext, RepairFamily};
use pdqi_datagen::{
    example4_instance, random_conflict_instance, random_conjunctive_query, random_priority,
    random_total_priority,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("e7_crep_row");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // C-repair checking (PTIME) on growing random instances with total priorities.
    for n in [100usize, 400, 1600] {
        let (instance, fds) = random_conflict_instance(n, 0.5, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        let repair = pdqi_core::clean_with_total_priority(ctx.graph(), &priority).unwrap();
        group.bench_with_input(BenchmarkId::new("c_repair_checking", n), &n, |b, _| {
            b.iter(|| CommonOptimal.is_preferred(&ctx, &priority, &repair))
        });
    }

    // C-consistent answers: the number of common repairs shrinks with priority completeness.
    eprintln!("E7: |C-Rep| vs. priority completeness (Example 4, n = 8)");
    let (instance, fds) = example4_instance(8);
    let ctx = RepairContext::new(instance, fds);
    for completeness in [0.0f64, 0.5, 1.0] {
        let priority = random_priority(Arc::clone(ctx.graph()), completeness, &mut rng);
        let count = CommonOptimal.count_preferred(&ctx, &priority);
        eprintln!("  completeness = {completeness:.2}: |C-Rep| = {count}");
        let query = random_conjunctive_query(ctx.instance(), 2, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("c_cqa_enumeration", format!("p{completeness:.2}")),
            &completeness,
            |b, _| {
                b.iter(|| {
                    preferred_consistent_answer(&ctx, &priority, &CommonOptimal, &query)
                        .unwrap()
                        .certainly_true
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
