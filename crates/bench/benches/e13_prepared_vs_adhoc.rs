//! E13 — amortisation of the prepared-query pipeline: a repeated-query workload through
//! `EngineBuilder` / `PreparedQuery` (parse + classify once, per-component preferred
//! repairs memoised in the snapshot) against the same workload run ad hoc, re-parsing
//! the query and rebuilding a cold snapshot per call.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_bench::{example1_context, example3_reliability};
use pdqi_core::{EngineBuilder, FamilyKind, PreparedQuery, Semantics};
use pdqi_datagen::example4_instance;

const QUERIES: [&str; 3] = [
    "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2",
    "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2",
    "EXISTS d,s,r . Mgr(x,d,s,r) AND s >= 10",
];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_prepared_vs_adhoc");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // Workload 1: the paper's motivating instance, the three queries asked repeatedly
    // under every family.
    let ctx = example1_context();
    let (sources, order) = example3_reliability();
    let snapshot = EngineBuilder::new()
        .relation(ctx.instance().clone(), ctx.fds().clone())
        .priority_from_sources(&sources, &order)
        .build()
        .expect("example 1 snapshot builds");
    let prepared: Vec<PreparedQuery> =
        QUERIES.iter().map(|q| PreparedQuery::parse(q).unwrap()).collect();
    group.bench_function("motivating/prepared", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for query in &prepared {
                for kind in FamilyKind::ALL {
                    rows += query.execute(&snapshot, kind, Semantics::Certain).unwrap().count();
                }
            }
            rows
        })
    });
    group.bench_function("motivating/adhoc", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for text in QUERIES {
                for kind in FamilyKind::ALL {
                    let cold = EngineBuilder::new()
                        .relation(ctx.instance().clone(), ctx.fds().clone())
                        .priority_from_sources(&sources, &order)
                        .build()
                        .unwrap();
                    let query = PreparedQuery::parse(text).unwrap();
                    rows += query.execute(&cold, kind, Semantics::Certain).unwrap().count();
                }
            }
            rows
        })
    });

    // Workload 2: growing repair spaces (Example 4, 2^n repairs) with one ground query
    // asked many times — the prepared path pays component enumeration once.
    for n in [6usize, 10] {
        let (instance, fds) = example4_instance(n);
        let snapshot =
            EngineBuilder::new().relation(instance.clone(), fds.clone()).build().unwrap();
        let query = PreparedQuery::parse("EXISTS x . R(x,0)").unwrap();
        group.bench_with_input(BenchmarkId::new("explosion/prepared", n), &n, |b, _| {
            b.iter(|| {
                (0..8)
                    .map(|_| {
                        query.consistent_answer(&snapshot, FamilyKind::Local).unwrap().examined
                    })
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("explosion/adhoc", n), &n, |b, _| {
            b.iter(|| {
                (0..8)
                    .map(|_| {
                        let cold = EngineBuilder::new()
                            .relation(instance.clone(), fds.clone())
                            .build()
                            .unwrap();
                        PreparedQuery::parse("EXISTS x . R(x,0)")
                            .unwrap()
                            .consistent_answer(&cold, FamilyKind::Local)
                            .unwrap()
                            .examined
                    })
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
