//! E17 — incremental delta maintenance: applying an INSERT/DELETE batch as a
//! snapshot delta versus rebuilding the snapshot from scratch.
//!
//! Three measurements per instance size (`chains` independent 6-tuple conflict
//! chains, the factorised shape the paper's components give us):
//!
//! * `delta_apply/<chains>` — `EngineSnapshot::with_mutations` on a warmed base:
//!   one deleted chain-interior tuple (a component split) plus one inserted
//!   conflicting tuple (a component grows). Only the two affected components are
//!   re-partitioned and re-enumerated; every other `(component, family)` memo entry
//!   carries over.
//! * `full_rebuild/<chains>` — what the serving path paid before this subsystem: a
//!   fresh `EngineBuilder` build of the mutated row list plus re-warming the families
//!   the base had memoised (the delta-derived snapshot arrives warm, so a fair
//!   comparison must re-warm too).
//! * `revise/<chains>` — `with_priority_revalidated` for scale: the other derivation
//!   the registry publishes, invalidating one component's priority-sensitive entries.
//!
//! The gap between `delta_apply` and `full_rebuild` grows with the number of
//! untouched components — that is the whole point: mutation cost tracks the *delta*,
//! not the instance.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pdqi_core::{EngineBuilder, EngineSnapshot, FamilyKind, Mutation, Parallelism};
use pdqi_datagen::multi_chain_instance;
use pdqi_relation::{RelationInstance, TupleId, Value};

/// The families a serving snapshot typically has warm; both sides of the comparison
/// enumerate exactly these.
const WARM: [FamilyKind; 2] = [FamilyKind::Rep, FamilyKind::Global];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_incremental");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    for chains in [4usize, 16, 64] {
        let (instance, fds) = multi_chain_instance(chains, 6);
        let rows: Vec<Vec<Value>> =
            instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
        let base = EngineBuilder::new()
            .relation(instance.clone(), fds.clone())
            .build()
            .expect("multi-chain instance builds");
        for kind in WARM {
            base.warm_components(kind, Parallelism::sequential());
        }

        // The mutation: delete chain 0's interior tuple (splits its path component)
        // and insert a tuple conflicting with chain 1's first A-group (grows it).
        let split_victim = rows[2].clone();
        let grow = vec![rows[6][0].clone(), Value::int(9), Value::int(9_000_000), Value::int(9)];
        let mutation = Mutation::new().delete("R", split_victim.clone()).insert("R", grow.clone());

        group.bench_function(format!("delta_apply/{chains}"), |b| {
            b.iter(|| {
                base.with_mutations(&mutation, Parallelism::sequential()).expect("delta applies")
            })
        });

        // The pre-subsystem alternative: rebuild the mutated row list and re-warm.
        let mut mutated_rows = rows.clone();
        mutated_rows.retain(|row| *row != split_victim);
        mutated_rows.push(grow);
        let schema = Arc::clone(instance.schema());
        group.bench_function(format!("full_rebuild/{chains}"), |b| {
            b.iter(|| {
                let rebuilt = EngineBuilder::new()
                    .relation(
                        RelationInstance::from_rows(Arc::clone(&schema), mutated_rows.clone())
                            .expect("mutated rows build"),
                        fds.clone(),
                    )
                    .build()
                    .expect("rebuild succeeds");
                for kind in WARM {
                    rebuilt.warm_components(kind, Parallelism::sequential());
                }
                rebuilt
            })
        });

        // For scale: the registry's other derivation, a one-component priority change.
        group.bench_function(format!("revise/{chains}"), |b| {
            b.iter(|| {
                let priority = base
                    .context()
                    .priority_from_pairs(&[(TupleId(0), TupleId(1))])
                    .expect("chain edge orients");
                EngineSnapshot::with_priority_revalidated(
                    &base,
                    priority,
                    Parallelism::sequential(),
                )
                .expect("revision derives")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
