//! E5 — Fig. 5, row `S-Rep`: S-repair checking is PTIME (duplicate-heavy one-FD
//! instances, the Example 8 pattern), and S-consistent query answering enumerates the
//! semi-globally optimal repairs.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::{RepairContext, RepairFamily, SemiGlobalOptimal};
use pdqi_datagen::{
    duplicate_instance, random_conjunctive_query, random_priority, random_total_priority,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("e5_srep_row");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // S-repair checking (PTIME) on duplicate-heavy instances of growing size.
    for groups in [50usize, 200, 800] {
        let (instance, fds) = duplicate_instance(groups, 4);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        let repair = ctx.some_repair();
        group.bench_with_input(
            BenchmarkId::new("s_repair_checking", groups * 5),
            &groups,
            |b, _| b.iter(|| SemiGlobalOptimal.is_preferred(&ctx, &priority, &repair)),
        );
    }

    // S-consistent answers by enumeration; the eprintln series shows how S-Rep shrinks
    // relative to L-Rep on the Example 8 pattern.
    eprintln!("E5: |S-Rep| vs |L-Rep| on duplicate-heavy instances (total priorities)");
    for groups in [2usize, 4, 6] {
        let (instance, fds) = duplicate_instance(groups, 3);
        let ctx = RepairContext::new(instance, fds);
        let priority = random_total_priority(Arc::clone(ctx.graph()), &mut rng);
        let l = pdqi_core::LocalOptimal.count_preferred(&ctx, &priority);
        let s = SemiGlobalOptimal.count_preferred(&ctx, &priority);
        eprintln!(
            "  groups = {groups}: |Rep| = {}, |L-Rep| = {l}, |S-Rep| = {s}",
            ctx.count_repairs()
        );
        let partial = random_priority(Arc::clone(ctx.graph()), 0.5, &mut rng);
        let query = random_conjunctive_query(ctx.instance(), 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("s_cqa_enumeration", groups), &groups, |b, _| {
            b.iter(|| {
                preferred_consistent_answer(&ctx, &partial, &SemiGlobalOptimal, &query)
                    .unwrap()
                    .certainly_true
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
