//! E11 — Section 5 related-work comparison: the paper's families vs. the baseline
//! semantics (numeric levels, preferred subtheories, repair ranking, Grosof-style
//! removal, ranking+fusion) on the motivating scenario and on scaled-up integration
//! instances.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_baselines::comparison::{compare_semantics, BaselineInputs};
use pdqi_baselines::{
    grosof_resolution, LevelAssignment, NumericLevelFamily, PreferredSubtheories,
    RepairRankingFamily, Stratification,
};
use pdqi_bench::{example1_context, example3_reliability, Q2};
use pdqi_core::{RepairContext, RepairFamily};
use pdqi_datagen::IntegrationScenario;
use pdqi_priority::priority_from_source_reliability;
use pdqi_query::parse_formula;
use pdqi_relation::RelationInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Materialises an integration scenario into an instance plus per-tuple source names and
/// reliability levels (higher = more reliable), keeping the per-tuple data aligned with
/// the deduplicated tuple ids.
fn materialise(
    scenario: &IntegrationScenario,
    sources: usize,
) -> (RelationInstance, Vec<String>, Vec<u64>) {
    let mut instance = RelationInstance::new(Arc::clone(&scenario.schema));
    let mut source_of = Vec::new();
    let mut levels = Vec::new();
    for (row, source) in scenario.all_rows().into_iter().zip(scenario.row_sources()) {
        let (_, fresh) = instance.insert(row).expect("generated rows follow the schema");
        if fresh {
            let index: usize = source.trim_start_matches('s').parse().unwrap_or(sources);
            levels.push((sources - index.min(sources)) as u64 + 1);
            source_of.push(source);
        }
    }
    (instance, source_of, levels)
}

fn bench(c: &mut Criterion) {
    // The report itself — the "table" of this experiment — printed once.
    let ctx = example1_context();
    let (sources, order) = example3_reliability();
    let priority = priority_from_source_reliability(Arc::clone(ctx.graph()), &sources, &order);
    let inputs = BaselineInputs::from_levels(vec![2, 2, 1, 1]);
    let q2 = parse_formula(Q2).unwrap();
    let report = compare_semantics(&ctx, &priority, &inputs, &q2);
    eprintln!("E11: Example 1 + Example 3 reliability, all semantics");
    eprintln!("{}", report.render());

    // Scaling comparison on integration scenarios of growing size.
    let mut group = c.benchmark_group("e11_baselines");
    group
        .sample_size(12)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    // Small department counts keep the repair space enumerable: the point of the
    // comparison is who selects how many repairs and at what per-repair cost, not raw
    // scale (E3–E8 cover scaling of the individual algorithms).
    let mut rng = StdRng::seed_from_u64(611);
    for departments in [3usize, 5, 8] {
        let scenario = IntegrationScenario::generate(departments, 3, 0.4, &mut rng);
        let (instance, source_of, levels) = materialise(&scenario, 3);
        let ctx = RepairContext::new(instance, scenario.fds.clone());
        let weights: Vec<i64> = levels.iter().map(|&l| l as i64).collect();
        let strata: Vec<usize> = {
            let top = levels.iter().copied().max().unwrap_or(0);
            levels.iter().map(|&l| (top - l) as usize).collect()
        };
        let reliability = priority_from_source_reliability(
            Arc::clone(ctx.graph()),
            &source_of,
            &scenario.reliability,
        );
        let empty = ctx.empty_priority();

        group.bench_with_input(BenchmarkId::new("G-Rep", departments), &departments, |b, _| {
            let family = pdqi_core::FamilyKind::Global.family();
            b.iter(|| family.count_preferred(&ctx, &reliability));
        });
        group.bench_with_input(
            BenchmarkId::new("FUV-levels", departments),
            &departments,
            |b, _| {
                let family = NumericLevelFamily::new(LevelAssignment::new(levels.clone()));
                b.iter(|| family.count_preferred(&ctx, &empty));
            },
        );
        group.bench_with_input(BenchmarkId::new("Brewka", departments), &departments, |b, _| {
            let family = PreferredSubtheories::new(Stratification::new(strata.clone()));
            b.iter(|| family.count_preferred(&ctx, &empty));
        });
        group.bench_with_input(
            BenchmarkId::new("repair-ranking", departments),
            &departments,
            |b, _| {
                let family = RepairRankingFamily::new(weights.clone());
                b.iter(|| family.count_preferred(&ctx, &empty));
            },
        );
        group.bench_with_input(BenchmarkId::new("Grosof", departments), &departments, |b, _| {
            b.iter(|| grosof_resolution(ctx.graph(), &reliability));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
