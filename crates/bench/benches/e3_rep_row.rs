//! E3 — Fig. 5, row `Rep`: repair checking is PTIME, consistent answers to
//! quantifier-free queries are PTIME (no repair enumeration), and conjunctive queries
//! fall back to repair enumeration (co-NP-complete in general).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::cqa_ground::ground_consistent_answer;
use pdqi_core::{AllRepairs, RepairContext};
use pdqi_datagen::{
    example4_instance, random_conflict_instance, random_conjunctive_query, random_ground_query,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("e3_rep_row");
    group
        .sample_size(15)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200));

    // Repair checking scales with the instance (PTIME).
    for n in [200usize, 800, 3200] {
        let (instance, fds) = random_conflict_instance(n, 0.5, &mut rng);
        let ctx = RepairContext::new(instance, fds);
        let repair = ctx.some_repair();
        group.bench_with_input(BenchmarkId::new("repair_checking", n), &n, |b, _| {
            b.iter(|| ctx.is_repair(&repair))
        });
    }

    // Quantifier-free CQA: the polynomial conflict-graph algorithm vs. naive enumeration.
    eprintln!("E3: ground-query CQA — polynomial algorithm vs. repair enumeration");
    for n in [6usize, 10, 14] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let query = random_ground_query(ctx.instance(), 4, &mut rng);
        eprintln!("  n = {n:>2}: {} repairs, query size {}", ctx.count_repairs(), query.size());
        group.bench_with_input(BenchmarkId::new("ground_cqa_ptime", n), &n, |b, _| {
            b.iter(|| ground_consistent_answer(&ctx, &query).unwrap())
        });
        let empty = ctx.empty_priority();
        group.bench_with_input(BenchmarkId::new("ground_cqa_enumeration", n), &n, |b, _| {
            b.iter(|| {
                preferred_consistent_answer(&ctx, &empty, &AllRepairs, &query)
                    .unwrap()
                    .certainly_true
            })
        });
    }

    // Conjunctive-query CQA (co-NP-complete): enumeration over the repairs.
    for n in [6usize, 10] {
        let (instance, fds) = example4_instance(n);
        let ctx = RepairContext::new(instance, fds);
        let query = random_conjunctive_query(ctx.instance(), 2, &mut rng);
        let empty = ctx.empty_priority();
        group.bench_with_input(BenchmarkId::new("conjunctive_cqa_enumeration", n), &n, |b, _| {
            b.iter(|| {
                preferred_consistent_answer(&ctx, &empty, &AllRepairs, &query)
                    .unwrap()
                    .certainly_true
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
