//! Shared helpers for the `pdqi` benchmark harness.
//!
//! Every bench target regenerates one experiment of `EXPERIMENTS.md` (which in turn maps
//! to a figure, example or row of the paper's Fig. 5 complexity table). The helpers here
//! keep criterion configuration consistent and build the fixtures shared by several
//! experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use pdqi_constraints::FdSet;
use pdqi_core::RepairContext;
use pdqi_priority::SourceOrder;
use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

/// The paper's query Q1: "does John earn more than Mary?".
pub const Q1: &str =
    "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";

/// The paper's query Q2: "does Mary earn more than John with fewer reports?".
pub const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

/// The integrated `Mgr` instance of Example 1 with its two key dependencies.
pub fn example1_context() -> RepairContext {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .expect("valid schema"),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ],
    )
    .expect("valid rows");
    let fds = FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
        .expect("valid FDs");
    RepairContext::new(instance, fds)
}

/// The Example 3 source-reliability order (`s3` less reliable than `s1` and `s2`) and the
/// per-tuple source assignment for [`example1_context`].
pub fn example3_reliability() -> (Vec<String>, SourceOrder) {
    let mut order = SourceOrder::new();
    order.prefer("s1", "s3").prefer("s2", "s3");
    let sources = vec!["s1".to_string(), "s2".to_string(), "s3".to_string(), "s3".to_string()];
    (sources, order)
}
