//! Bench-regression tooling: collect per-bench medians and compare runs.
//!
//! The vendored criterion harness appends one JSON line per benchmark to the file named
//! by `CRITERION_JSON` (`{"id":"…","median_ns":…}`). This binary turns those raw lines
//! into a stable JSON map and diffs two such maps, failing on regressions — the same
//! comparison CI runs, usable locally:
//!
//! ```text
//! CRITERION_JSON=$PWD/raw.jsonl CRITERION_MEASURE_MS=300 CRITERION_WARMUP_MS=100 \
//!     cargo bench -p pdqi-bench
//! cargo run -p pdqi-bench --bin bench_diff -- collect raw.jsonl BENCH_ci.json
//! cargo run -p pdqi-bench --bin bench_diff -- compare BENCH_baseline.json BENCH_ci.json
//! ```
//!
//! `compare` exits non-zero if any benchmark's median grew by more than its threshold.
//! Thresholds are **per-bench**, tiered by the baseline's time scale:
//!
//! * `< 10µs` — 20%: micro-benches are memo hits and cheap lookups whose medians are
//!   extremely stable, so a genuine regression shows up as a large relative jump;
//! * `10µs – 1ms` — 25%: the historical default;
//! * `≥ 1ms` — 50%: long enumerations run few iterations inside the short CI budgets,
//!   so their medians carry the most sampling noise.
//!
//! `--threshold 0.4` overrides every tier with a flat 40%. Benchmarks present on only
//! one side are reported but never fail the comparison, so adding or retiring benches
//! does not require touching the baseline in the same commit.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Scans a JSON string literal starting at `text[start]` (the opening quote), returning
/// the unescaped contents and the index just past the closing quote.
fn scan_string(text: &str, start: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    if bytes.get(start) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut index = start + 1;
    while index < bytes.len() {
        match bytes[index] {
            b'"' => return Some((out, index + 1)),
            b'\\' => {
                match bytes.get(index + 1)? {
                    b'"' => {
                        out.push('"');
                        index += 2;
                    }
                    b'\\' => {
                        out.push('\\');
                        index += 2;
                    }
                    // \uXXXX — the escape the harness's json_escape uses for control
                    // characters in benchmark ids.
                    b'u' => {
                        let hex = text.get(index + 2..index + 6)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        index += 6;
                    }
                    // The harness never writes other escapes; keep the parser honest
                    // rather than permissive.
                    _ => return None,
                }
            }
            _ => {
                // Multi-byte UTF-8 is copied verbatim.
                let c = text[index..].chars().next()?;
                out.push(c);
                index += c.len_utf8();
            }
        }
    }
    None
}

/// Extracts `"key": value` pairs (string key, numeric value) from one line of either
/// the raw JSONL stream or the collected map.
fn scan_pairs(line: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut index = 0;
    while let Some(offset) = line[index..].find('"') {
        let start = index + offset;
        let Some((key, after_key)) = scan_string(line, start) else { break };
        let rest = line[after_key..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            index = after_key;
            continue;
        };
        let rest = rest.trim_start();
        let number: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(value) = number.parse::<f64>() {
            pairs.push((key, value));
        }
        index = after_key;
    }
    pairs
}

/// The string value of a raw JSONL line's `"id"` field (`scan_pairs` only yields
/// numeric values, so the id needs its own extraction).
fn raw_line_id(line: &str) -> Option<String> {
    let key_at = line.find("\"id\"")?;
    let colon = key_at + line[key_at..].find(':')?;
    let quote = colon + line[colon..].find('"')?;
    scan_string(line, quote).map(|(value, _)| value)
}

/// Parses either format (raw JSONL with `id`/`median_ns` fields, or a collected
/// `{"bench": median}` map) into bench → median-ns. Later entries win.
fn parse_medians(text: &str) -> BTreeMap<String, f64> {
    let mut medians = BTreeMap::new();
    for line in text.lines() {
        let pairs = scan_pairs(line);
        let median = pairs.iter().find(|(key, _)| key == "median_ns");
        match (raw_line_id(line), median) {
            // Raw JSONL line: {"id":"…","median_ns":…}.
            (Some(id), Some(&(_, value))) => {
                medians.insert(id, value);
            }
            // Collected map line: "bench": 123.4.
            _ => {
                for (key, value) in pairs {
                    medians.insert(key, value);
                }
            }
        }
    }
    medians
}

fn render_map(medians: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (index, (id, median)) in medians.iter().enumerate() {
        let comma = if index + 1 < medians.len() { "," } else { "" };
        let escaped = id.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = writeln!(out, "  \"{escaped}\": {median:.1}{comma}");
    }
    out.push_str("}\n");
    out
}

fn collect(raw_path: &str, out_path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(raw_path).map_err(|e| format!("cannot read {raw_path}: {e}"))?;
    let medians = parse_medians(&text);
    if medians.is_empty() {
        return Err(format!("{raw_path} holds no benchmark medians"));
    }
    std::fs::write(out_path, render_map(&medians))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("collected {} benchmark median(s) into {out_path}", medians.len());
    Ok(())
}

/// The regression threshold for one benchmark, tiered by the baseline's time scale (see
/// the module docs): tight for µs-scale memo hits, loose for ms-scale enumerations.
fn tiered_threshold(base_ns: f64) -> f64 {
    if base_ns < 10_000.0 {
        0.20
    } else if base_ns < 1_000_000.0 {
        0.25
    } else {
        0.50
    }
}

fn compare(
    baseline_path: &str,
    current_path: &str,
    flat_threshold: Option<f64>,
) -> Result<bool, String> {
    let baseline = parse_medians(
        &std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?,
    );
    let current = parse_medians(
        &std::fs::read_to_string(current_path)
            .map_err(|e| format!("cannot read {current_path}: {e}"))?,
    );
    if baseline.is_empty() {
        return Err(format!("{baseline_path} holds no benchmark medians"));
    }
    let mut regressions = 0usize;
    println!(
        "{:<56} {:>12} {:>12} {:>8} {:>6}",
        "benchmark", "baseline", "current", "delta", "limit"
    );
    for (id, &base_ns) in &baseline {
        let Some(&cur_ns) = current.get(id) else {
            println!("{id:<56} {base_ns:>12.1} {:>12} {:>8} {:>6}", "absent", "-", "-");
            continue;
        };
        let threshold = flat_threshold.unwrap_or_else(|| tiered_threshold(base_ns));
        let delta = if base_ns > 0.0 { cur_ns / base_ns - 1.0 } else { 0.0 };
        let flag = if delta > threshold {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!(
            "{id:<56} {base_ns:>12.1} {cur_ns:>12.1} {:>+7.1}% {:>5.0}%{flag}",
            delta * 100.0,
            threshold * 100.0
        );
    }
    for id in current.keys().filter(|id| !baseline.contains_key(*id)) {
        println!("{id:<56} {:>12} {:>12.1} {:>8} {:>6}", "new", current[id], "-", "-");
    }
    if regressions > 0 {
        println!(
            "\n{regressions} benchmark(s) regressed past their threshold against {baseline_path}"
        );
    } else {
        println!("\nno benchmark regressed past its threshold");
    }
    Ok(regressions == 0)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench_diff collect <raw.jsonl> <out.json>\n  bench_diff compare <baseline.json> <current.json> [--threshold <fraction>]\n\nwithout --threshold, per-bench tiered thresholds apply: 20% below 10µs,\n25% up to 1ms, 50% beyond (tight for memo hits, loose for enumerations)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("collect") if args.len() == 3 => match collect(&args[1], &args[2]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        Some("compare") if args.len() == 3 || args.len() == 5 => {
            let threshold = if args.len() == 5 {
                if args[3] != "--threshold" {
                    return usage();
                }
                match args[4].parse::<f64>() {
                    Ok(t) if t > 0.0 => Some(t),
                    _ => return usage(),
                }
            } else {
                // Per-bench tiered thresholds (see `tiered_threshold`).
                None
            };
            match compare(&args[1], &args[2], threshold) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RAW: &str = "\
{\"id\":\"e1/setup\",\"median_ns\":1200.0}\n\
{\"id\":\"e1/query\",\"median_ns\":350.5}\n\
{\"id\":\"e1/query\",\"median_ns\":360.5}\n";

    #[test]
    fn raw_lines_parse_with_later_entries_winning() {
        let medians = parse_medians(RAW);
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["e1/setup"], 1200.0);
        assert_eq!(medians["e1/query"], 360.5);
    }

    #[test]
    fn collected_maps_round_trip() {
        let medians = parse_medians(RAW);
        let rendered = render_map(&medians);
        assert_eq!(parse_medians(&rendered), medians);
    }

    #[test]
    fn thresholds_tier_by_time_scale() {
        // Tight for µs-scale memo hits...
        assert_eq!(tiered_threshold(400.0), 0.20);
        assert_eq!(tiered_threshold(9_999.0), 0.20);
        // ...the historical default in the middle...
        assert_eq!(tiered_threshold(10_000.0), 0.25);
        assert_eq!(tiered_threshold(999_999.0), 0.25);
        // ...loose for ms-scale enumerations.
        assert_eq!(tiered_threshold(1_000_000.0), 0.50);
        assert_eq!(tiered_threshold(2.5e9), 0.50);
    }

    #[test]
    fn string_scanner_handles_escapes() {
        assert_eq!(scan_string("\"a/b\"", 0), Some(("a/b".to_string(), 5)));
        assert_eq!(scan_string("\"a\\\"b\"", 0), Some(("a\"b".to_string(), 6)));
        // The \uXXXX form json_escape emits for control characters round-trips.
        assert_eq!(scan_string("\"tab\\u0009here\"", 0), Some(("tab\there".to_string(), 15)));
        assert_eq!(scan_string("\"bad\\u00zz\"", 0), None);
        assert_eq!(scan_string("no quote", 0), None);
    }
}
