//! Priorities over conflict hypergraphs (denial constraints).
//!
//! Under denial constraints a single conflict can involve more than two tuples: the
//! conflicts form a *hypergraph* whose maximal independent sets are the repairs \[6\].
//! The paper's concluding section observes that its notion of priority — an orientation
//! of binary conflict edges — "does not have a clear meaning" there. This module explores
//! the most conservative generalisation:
//!
//! * a [`HyperPriority`] is an acyclic binary relation on tuples that **co-occur in some
//!   hyperedge** (the natural analogue of "defined only on conflicting tuples");
//! * repairs are compared with exactly the `≪` lifting of Proposition 5, giving the
//!   hypergraph version of globally optimal repairs
//!   ([`is_hyper_globally_optimal`], [`hyper_globally_optimal_repairs`]).
//!
//! The pleasant properties survive in part — the preferred set is a non-empty subset of
//! the repairs and shrinks as the priority grows — but the very notion of a **total**
//! priority becomes ambiguous, which is the paper's point. In the binary case "every
//! conflict is resolved" and "every conflicting pair is oriented" are the same statement
//! and imply categoricity (Proposition 4); for hyperedges they come apart: a priority
//! that resolves something inside *every* hyperedge can still leave several `≪`-maximal
//! repairs, because breaking a ternary conflict means choosing one of several tuples to
//! drop and a single oriented pair does not determine that choice. The module's tests
//! contain a minimal witness, turning the paper's caveat into an executable fact.

use std::fmt;
use std::ops::ControlFlow;

use pdqi_constraints::ConflictHypergraph;
use pdqi_relation::{TupleId, TupleSet};
use pdqi_solve::HypergraphMisEnumerator;

/// Errors raised while building a hypergraph priority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HyperPriorityError {
    /// The two tuples never co-occur in a hyperedge.
    NotCoConflicting {
        /// The dominating tuple of the rejected pair.
        winner: TupleId,
        /// The dominated tuple of the rejected pair.
        loser: TupleId,
    },
    /// Adding the pair would create a cycle.
    WouldCreateCycle {
        /// The dominating tuple of the rejected pair.
        winner: TupleId,
        /// The dominated tuple of the rejected pair.
        loser: TupleId,
    },
    /// A tuple related to itself.
    SelfEdge {
        /// The offending tuple.
        tuple: TupleId,
    },
    /// A tuple id outside the hypergraph's vertex range.
    UnknownTuple {
        /// The offending tuple id.
        tuple: TupleId,
    },
}

impl fmt::Display for HyperPriorityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HyperPriorityError::NotCoConflicting { winner, loser } => {
                write!(f, "{winner} and {loser} never co-occur in a conflict hyperedge")
            }
            HyperPriorityError::WouldCreateCycle { winner, loser } => {
                write!(f, "adding {winner} ≻ {loser} would make the priority cyclic")
            }
            HyperPriorityError::SelfEdge { tuple } => write!(f, "{tuple} cannot dominate itself"),
            HyperPriorityError::UnknownTuple { tuple } => {
                write!(f, "{tuple} is not a vertex of the conflict hypergraph")
            }
        }
    }
}

impl std::error::Error for HyperPriorityError {}

/// An acyclic binary relation on tuples co-occurring in conflict hyperedges.
#[derive(Debug, Clone)]
pub struct HyperPriority {
    vertex_count: usize,
    /// For each pair of vertices, whether they share a hyperedge (flattened upper matrix
    /// kept as per-vertex sets for simplicity).
    co_conflicting: Vec<TupleSet>,
    dominates: Vec<TupleSet>,
    edge_count: usize,
}

impl HyperPriority {
    /// The empty priority over `hypergraph`.
    pub fn new(hypergraph: &ConflictHypergraph) -> Self {
        let n = hypergraph.vertex_count();
        let mut co_conflicting = vec![TupleSet::with_capacity(n); n];
        for edge in hypergraph.hyperedges() {
            for a in edge.iter() {
                for b in edge.iter() {
                    if a != b {
                        co_conflicting[a.index()].insert(b);
                    }
                }
            }
        }
        HyperPriority {
            vertex_count: n,
            co_conflicting,
            dominates: vec![TupleSet::with_capacity(n); n],
            edge_count: 0,
        }
    }

    /// Builds a priority from explicit `winner ≻ loser` pairs.
    pub fn from_pairs(
        hypergraph: &ConflictHypergraph,
        pairs: &[(TupleId, TupleId)],
    ) -> Result<Self, HyperPriorityError> {
        let mut priority = HyperPriority::new(hypergraph);
        for &(winner, loser) in pairs {
            priority.add(winner, loser)?;
        }
        Ok(priority)
    }

    /// Adds `winner ≻ loser`.
    pub fn add(&mut self, winner: TupleId, loser: TupleId) -> Result<(), HyperPriorityError> {
        for t in [winner, loser] {
            if t.index() >= self.vertex_count {
                return Err(HyperPriorityError::UnknownTuple { tuple: t });
            }
        }
        if winner == loser {
            return Err(HyperPriorityError::SelfEdge { tuple: winner });
        }
        if !self.co_conflicting[winner.index()].contains(loser) {
            return Err(HyperPriorityError::NotCoConflicting { winner, loser });
        }
        if self.dominates[winner.index()].contains(loser) {
            return Ok(());
        }
        if self.reaches(loser, winner) {
            return Err(HyperPriorityError::WouldCreateCycle { winner, loser });
        }
        self.dominates[winner.index()].insert(loser);
        self.edge_count += 1;
        Ok(())
    }

    /// Whether `x ≻ y`.
    pub fn dominates(&self, x: TupleId, y: TupleId) -> bool {
        self.dominates[x.index()].contains(y)
    }

    /// Number of oriented pairs.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether every co-occurring pair is oriented (one reading of "total" for
    /// hypergraph priorities).
    pub fn is_pairwise_total(&self) -> bool {
        (0..self.vertex_count).all(|x| {
            self.co_conflicting[x].iter().all(|y| {
                self.dominates[x].contains(y)
                    || self.dominates[y.index()].contains(TupleId(x as u32))
            })
        })
    }

    /// Whether every hyperedge of `hypergraph` contains at least one oriented pair (the
    /// other reading of "total": every conflict has *some* resolution hint). In the
    /// binary case the two readings coincide; for hyperedges they differ, and this weaker
    /// one is not enough for categoricity — see the module tests.
    pub fn covers_every_hyperedge(&self, hypergraph: &ConflictHypergraph) -> bool {
        hypergraph
            .hyperedges()
            .iter()
            .all(|edge| edge.iter().any(|x| edge.iter().any(|y| x != y && self.dominates(x, y))))
    }

    fn reaches(&self, from: TupleId, to: TupleId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = TupleSet::with_capacity(self.vertex_count);
        let mut stack = vec![from];
        visited.insert(from);
        while let Some(v) = stack.pop() {
            for next in self.dominates[v.index()].iter() {
                if next == to {
                    return true;
                }
                if visited.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    }
}

/// The `≪` relation of Proposition 5, verbatim, over hypergraph repairs: `r2` is
/// preferred over `r1` iff every tuple of `r1 \ r2` is dominated by some tuple of
/// `r2 \ r1`.
pub fn hyper_preferred_over(priority: &HyperPriority, r1: &TupleSet, r2: &TupleSet) -> bool {
    if r1 == r2 {
        return false;
    }
    r1.difference(r2).iter().all(|x| r2.difference(r1).iter().any(|y| priority.dominates(y, x)))
}

/// Whether `repair` is a `≪`-maximal repair of the hypergraph (the global-optimality
/// analogue). Decided by scanning the other repairs, so exponential in the worst case —
/// matching the co-NP-hardness already present in the binary case.
pub fn is_hyper_globally_optimal(
    hypergraph: &ConflictHypergraph,
    priority: &HyperPriority,
    repair: &TupleSet,
) -> bool {
    if !hypergraph.is_maximal_independent(repair) {
        return false;
    }
    let mut dominated = false;
    HypergraphMisEnumerator::new(hypergraph).for_each(|other| {
        if hyper_preferred_over(priority, repair, other) {
            dominated = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    !dominated
}

/// All `≪`-maximal repairs of the hypergraph (up to `limit`).
pub fn hyper_globally_optimal_repairs(
    hypergraph: &ConflictHypergraph,
    priority: &HyperPriority,
    limit: usize,
) -> Vec<TupleSet> {
    let mut out = Vec::new();
    HypergraphMisEnumerator::new(hypergraph).for_each(|candidate| {
        if is_hyper_globally_optimal(hypergraph, priority, candidate) {
            out.push(candidate.clone());
            if out.len() >= limit {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(list: &[u32]) -> TupleSet {
        TupleSet::from_ids(list.iter().map(|&i| TupleId(i)))
    }

    /// A single ternary conflict {t0, t1, t2}: the repairs are the three pairs.
    fn ternary() -> ConflictHypergraph {
        ConflictHypergraph::from_hyperedges(3, vec![ids(&[0, 1, 2])])
    }

    #[test]
    fn priorities_only_relate_co_conflicting_tuples() {
        let hypergraph = ConflictHypergraph::from_hyperedges(4, vec![ids(&[0, 1, 2])]);
        let mut priority = HyperPriority::new(&hypergraph);
        assert!(priority.add(TupleId(0), TupleId(1)).is_ok());
        assert!(matches!(
            priority.add(TupleId(0), TupleId(3)),
            Err(HyperPriorityError::NotCoConflicting { .. })
        ));
        assert!(matches!(
            priority.add(TupleId(1), TupleId(1)),
            Err(HyperPriorityError::SelfEdge { .. })
        ));
        assert!(matches!(
            priority.add(TupleId(9), TupleId(0)),
            Err(HyperPriorityError::UnknownTuple { .. })
        ));
        priority.add(TupleId(1), TupleId(2)).unwrap();
        assert!(matches!(
            priority.add(TupleId(2), TupleId(0)),
            Err(HyperPriorityError::WouldCreateCycle { .. })
        ));
    }

    #[test]
    fn without_preferences_every_hyper_repair_is_optimal() {
        let hypergraph = ternary();
        let priority = HyperPriority::new(&hypergraph);
        let preferred = hyper_globally_optimal_repairs(&hypergraph, &priority, usize::MAX);
        assert_eq!(preferred.len(), 3);
        for repair in &preferred {
            assert!(hypergraph.is_maximal_independent(repair));
        }
    }

    #[test]
    fn a_dominated_tuple_is_pushed_out_of_the_preferred_repairs() {
        // t0 ≻ t2 and t1 ≻ t2: the repair that drops t2's "enemies"… i.e. the repair
        // {t0, t1} dominates both repairs containing t2, so it is the only preferred one.
        let hypergraph = ternary();
        let priority = HyperPriority::from_pairs(
            &hypergraph,
            &[(TupleId(0), TupleId(2)), (TupleId(1), TupleId(2))],
        )
        .unwrap();
        let preferred = hyper_globally_optimal_repairs(&hypergraph, &priority, usize::MAX);
        assert_eq!(preferred, vec![ids(&[0, 1])]);
    }

    #[test]
    fn resolving_something_in_every_hyperedge_is_not_categorical() {
        // The priority t0 ≻ t1 touches the only hyperedge, so in the binary reading every
        // conflict "has a resolution" — yet two repairs remain ≪-maximal, because the
        // single oriented pair does not say which of t1, t2 should give way. This is the
        // ambiguity the paper's concluding section points at.
        let hypergraph = ternary();
        let priority = HyperPriority::from_pairs(&hypergraph, &[(TupleId(0), TupleId(1))]).unwrap();
        assert!(priority.covers_every_hyperedge(&hypergraph));
        assert!(!priority.is_pairwise_total());
        let mut preferred = hyper_globally_optimal_repairs(&hypergraph, &priority, usize::MAX);
        preferred.sort_by_key(|s| s.iter().map(|t| t.0).collect::<Vec<_>>());
        assert_eq!(preferred, vec![ids(&[0, 1]), ids(&[0, 2])]);
    }

    #[test]
    fn orienting_every_pair_of_a_single_hyperedge_restores_uniqueness() {
        // On one ternary conflict a pairwise-total priority is a total order of its three
        // tuples, and the ≪-maximal repair drops exactly the least tuple — uniqueness is
        // restored at the price of demanding strictly more input than the binary notion
        // of totality ever would.
        let hypergraph = ternary();
        let priority = HyperPriority::from_pairs(
            &hypergraph,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        )
        .unwrap();
        assert!(priority.is_pairwise_total());
        let preferred = hyper_globally_optimal_repairs(&hypergraph, &priority, usize::MAX);
        assert_eq!(preferred, vec![ids(&[0, 1])]);
    }

    #[test]
    fn the_lifting_follows_proposition_5() {
        let hypergraph = ternary();
        let priority = HyperPriority::from_pairs(&hypergraph, &[(TupleId(0), TupleId(2))]).unwrap();
        let r01 = ids(&[0, 1]);
        let r02 = ids(&[0, 2]);
        let r12 = ids(&[1, 2]);
        // Irreflexive, and with a single oriented pair no repair dominates another: the
        // only candidate domination (r12 by a repair containing t0) also needs t1 covered.
        assert!(!hyper_preferred_over(&priority, &r01, &r01));
        assert!(!hyper_preferred_over(&priority, &r02, &r01));
        assert!(!hyper_preferred_over(&priority, &r12, &r02));
        // Once t0 dominates both t1 and t2, the repair {t0, t1} dominates {t1, t2}.
        let stronger = HyperPriority::from_pairs(
            &hypergraph,
            &[(TupleId(0), TupleId(2)), (TupleId(0), TupleId(1))],
        )
        .unwrap();
        assert!(hyper_preferred_over(&stronger, &r12, &r01));
        assert!(!hyper_preferred_over(&stronger, &r01, &r12));
    }

    #[test]
    fn growing_the_priority_narrows_the_preferred_set() {
        let hypergraph = ternary();
        let empty = HyperPriority::new(&hypergraph);
        let partial = HyperPriority::from_pairs(&hypergraph, &[(TupleId(0), TupleId(1))]).unwrap();
        let total = HyperPriority::from_pairs(
            &hypergraph,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        )
        .unwrap();
        let count =
            |p: &HyperPriority| hyper_globally_optimal_repairs(&hypergraph, p, usize::MAX).len();
        assert_eq!(count(&empty), 3);
        assert_eq!(count(&partial), 2);
        assert_eq!(count(&total), 1);
    }
}
