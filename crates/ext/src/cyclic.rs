//! Cyclic preference relations and their reduction to Definition 2 priorities.
//!
//! Users rarely hand over a carefully acyclic orientation: preference statements come
//! from several rules of thumb ("newer wins", "source A over source B", "longer record
//! over shorter") that can easily contradict each other on particular tuple pairs or
//! around longer cycles. [`CyclicPreference`] accepts such raw statements — any binary
//! relation on conflicting tuples — and [`CyclicPreference::condense`] extracts the
//! non-controversial part: the orientation induced between distinct strongly connected
//! components of the preference digraph. Edges inside a component participate in a
//! disagreement cycle and are dropped (reported in the [`CondensationReport`]).
//!
//! The construction restores Definition 2's guarantees (the result is an acyclic
//! orientation of conflict edges) and obeys a *conditional* form of monotonicity:
//! extending the raw preference without merging components only adds oriented edges,
//! whereas an extension that closes a cycle can retract previously honoured preferences —
//! the loss of monotonicity the paper warns about, confined to the cycle-forming case.

use std::sync::Arc;

use pdqi_constraints::ConflictGraph;
use pdqi_priority::{Priority, PriorityError};
use pdqi_relation::{TupleId, TupleSet};

/// A raw, possibly cyclic preference relation over conflicting tuples.
#[derive(Debug, Clone)]
pub struct CyclicPreference {
    graph: Arc<ConflictGraph>,
    /// `prefers[x]` = set of tuples y with a raw statement `x ≻ y`.
    prefers: Vec<TupleSet>,
    edge_count: usize,
}

/// What the condensation did to the raw preference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondensationReport {
    /// Number of raw preference edges.
    pub raw_edges: usize,
    /// Number of edges kept (oriented in the resulting priority).
    pub kept_edges: usize,
    /// Number of edges dropped because both endpoints lie in the same preference cycle.
    pub dropped_edges: usize,
    /// Number of non-trivial strongly connected components (preference cycles).
    pub cycles: usize,
}

impl CyclicPreference {
    /// An empty preference over the conflict graph.
    pub fn new(graph: Arc<ConflictGraph>) -> Self {
        let n = graph.vertex_count();
        CyclicPreference { graph, prefers: vec![TupleSet::with_capacity(n); n], edge_count: 0 }
    }

    /// Records the raw statement `winner ≻ loser`. Statements between non-conflicting
    /// tuples are rejected (the paper's Definition 2 scope); cycles are allowed.
    pub fn add(&mut self, winner: TupleId, loser: TupleId) -> Result<(), PriorityError> {
        let n = self.graph.vertex_count();
        for t in [winner, loser] {
            if t.index() >= n {
                return Err(PriorityError::UnknownTuple { tuple: t });
            }
        }
        if winner == loser {
            return Err(PriorityError::SelfEdge { tuple: winner });
        }
        if !self.graph.are_conflicting(winner, loser) {
            return Err(PriorityError::NotConflicting { winner, loser });
        }
        if self.prefers[winner.index()].insert(loser) {
            self.edge_count += 1;
        }
        Ok(())
    }

    /// Builds a preference from raw statements.
    pub fn from_pairs(
        graph: Arc<ConflictGraph>,
        pairs: &[(TupleId, TupleId)],
    ) -> Result<Self, PriorityError> {
        let mut preference = CyclicPreference::new(graph);
        for &(winner, loser) in pairs {
            preference.add(winner, loser)?;
        }
        Ok(preference)
    }

    /// The conflict graph the preference talks about.
    pub fn graph(&self) -> &Arc<ConflictGraph> {
        &self.graph
    }

    /// Number of raw statements.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the raw statement `x ≻ y` was recorded.
    pub fn prefers(&self, x: TupleId, y: TupleId) -> bool {
        self.prefers[x.index()].contains(y)
    }

    /// Whether the raw relation is already acyclic (in which case the condensation keeps
    /// every edge).
    pub fn is_acyclic(&self) -> bool {
        let sccs = self.strongly_connected_components();
        sccs.iter().all(|component| component.len() == 1)
            && (0..self.prefers.len()).all(|i| !self.prefers[i].contains(TupleId(i as u32)))
    }

    /// The strongly connected components of the preference digraph (Tarjan's algorithm,
    /// iterative to stay safe on long preference chains).
    pub fn strongly_connected_components(&self) -> Vec<Vec<TupleId>> {
        let n = self.graph.vertex_count();
        // Iterative Tarjan.
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![usize::MAX; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<TupleId>> = Vec::new();

        #[derive(Clone)]
        struct Frame {
            vertex: usize,
            successors: Vec<usize>,
            position: usize,
        }

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame {
                vertex: start,
                successors: self.prefers[start].iter().map(|t| t.index()).collect(),
                position: 0,
            }];
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(frame) = call_stack.last_mut() {
                if frame.position < frame.successors.len() {
                    let successor = frame.successors[frame.position];
                    frame.position += 1;
                    if index[successor] == usize::MAX {
                        index[successor] = next_index;
                        lowlink[successor] = next_index;
                        next_index += 1;
                        stack.push(successor);
                        on_stack[successor] = true;
                        call_stack.push(Frame {
                            vertex: successor,
                            successors: self.prefers[successor].iter().map(|t| t.index()).collect(),
                            position: 0,
                        });
                    } else if on_stack[successor] {
                        let v = frame.vertex;
                        lowlink[v] = lowlink[v].min(index[successor]);
                    }
                } else {
                    let v = frame.vertex;
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        let p = parent.vertex;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            component.push(TupleId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
        components
    }

    /// Reduces the raw preference to a Definition 2 priority: a raw edge survives iff its
    /// endpoints lie in different strongly connected components (it is not contradicted
    /// around any preference cycle). Returns the priority and a report of what was
    /// dropped.
    pub fn condense(&self) -> (Priority, CondensationReport) {
        let components = self.strongly_connected_components();
        let n = self.graph.vertex_count();
        let mut component_of = vec![0usize; n];
        for (id, component) in components.iter().enumerate() {
            for &tuple in component {
                component_of[tuple.index()] = id;
            }
        }
        let mut priority = Priority::empty(Arc::clone(&self.graph));
        let mut kept = 0usize;
        let mut dropped = 0usize;
        for x in 0..n {
            for y in self.prefers[x].iter() {
                if component_of[x] == component_of[y.index()] {
                    dropped += 1;
                    continue;
                }
                priority
                    .add(TupleId(x as u32), y)
                    .expect("cross-component preference edges cannot close a cycle");
                kept += 1;
            }
        }
        let cycles = components.iter().filter(|c| c.len() > 1).count();
        (
            priority,
            CondensationReport {
                raw_edges: self.edge_count,
                kept_edges: kept,
                dropped_edges: dropped,
                cycles,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_core::{FamilyKind, RepairContext};
    use pdqi_relation::Value;
    use std::sync::Arc;

    /// A triangle of pairwise-conflicting tuples (one key, three claimants).
    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        ))
    }

    #[test]
    fn acyclic_preferences_survive_condensation_unchanged() {
        let preference = CyclicPreference::from_pairs(
            triangle(),
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2))],
        )
        .unwrap();
        assert!(preference.is_acyclic());
        let (priority, report) = preference.condense();
        assert_eq!(report.kept_edges, 2);
        assert_eq!(report.dropped_edges, 0);
        assert_eq!(report.cycles, 0);
        assert!(priority.dominates(TupleId(0), TupleId(1)));
        assert!(priority.dominates(TupleId(1), TupleId(2)));
    }

    #[test]
    fn a_two_cycle_cancels_itself_but_keeps_the_rest() {
        // The user says both t0 ≻ t1 and t1 ≻ t0 (two rules of thumb disagree), and also
        // t0 ≻ t2. The contradiction is dropped, the uncontroversial edge survives.
        let mut preference = CyclicPreference::new(triangle());
        preference.add(TupleId(0), TupleId(1)).unwrap();
        preference.add(TupleId(1), TupleId(0)).unwrap();
        preference.add(TupleId(0), TupleId(2)).unwrap();
        assert!(!preference.is_acyclic());
        let (priority, report) = preference.condense();
        assert_eq!(report.raw_edges, 3);
        assert_eq!(report.dropped_edges, 2);
        assert_eq!(report.kept_edges, 1);
        assert_eq!(report.cycles, 1);
        assert!(!priority.orients_edge(TupleId(0), TupleId(1)));
        assert!(priority.dominates(TupleId(0), TupleId(2)));
    }

    #[test]
    fn longer_cycles_are_detected_and_dropped() {
        // t0 ≻ t1 ≻ t2 ≻ t0: all three edges are controversial.
        let preference = CyclicPreference::from_pairs(
            triangle(),
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(2), TupleId(0))],
        )
        .unwrap();
        let (priority, report) = preference.condense();
        assert_eq!(report.dropped_edges, 3);
        assert_eq!(report.kept_edges, 0);
        assert_eq!(report.cycles, 1);
        assert!(priority.is_empty());
    }

    #[test]
    fn invalid_statements_are_rejected() {
        let graph = Arc::new(ConflictGraph::from_edges(3, &[(TupleId(0), TupleId(1))]));
        let mut preference = CyclicPreference::new(graph);
        assert!(matches!(
            preference.add(TupleId(0), TupleId(2)),
            Err(PriorityError::NotConflicting { .. })
        ));
        assert!(matches!(
            preference.add(TupleId(1), TupleId(1)),
            Err(PriorityError::SelfEdge { .. })
        ));
        assert!(matches!(
            preference.add(TupleId(0), TupleId(7)),
            Err(PriorityError::UnknownTuple { .. })
        ));
        // Duplicate statements are idempotent.
        preference.add(TupleId(0), TupleId(1)).unwrap();
        preference.add(TupleId(0), TupleId(1)).unwrap();
        assert_eq!(preference.edge_count(), 1);
    }

    /// A concrete instance for the monotonicity experiments: one key group of three.
    fn salary_context() -> RepairContext {
        let schema = Arc::new(
            pdqi_relation::RelationSchema::from_pairs(
                "R",
                &[("A", pdqi_relation::ValueType::Int), ("B", pdqi_relation::ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = pdqi_relation::RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(1), Value::int(3)],
            ],
        )
        .unwrap();
        let fds = pdqi_constraints::FdSet::parse(schema, &["A -> B"]).unwrap();
        RepairContext::new(instance, fds)
    }

    #[test]
    fn cycle_free_extensions_preserve_monotonicity() {
        let ctx = salary_context();
        let mut preference = CyclicPreference::new(Arc::clone(ctx.graph()));
        preference.add(TupleId(0), TupleId(1)).unwrap();
        let (before, _) = preference.condense();
        // Extend with a statement that does not close any cycle.
        preference.add(TupleId(0), TupleId(2)).unwrap();
        let (after, _) = preference.condense();
        assert!(after.is_extension_of(&before));
        // Hence P2 holds along this step for every family of the paper.
        let family = FamilyKind::Global.family();
        let selected_after = family.preferred_repairs(&ctx, &after, usize::MAX);
        for repair in &selected_after {
            assert!(family.is_preferred(&ctx, &before, repair));
        }
    }

    #[test]
    fn cycle_forming_extensions_can_retract_preferences() {
        // The paper's warning made concrete: adding a statement that closes a cycle makes
        // the condensed priority *smaller*, and a repair excluded before becomes
        // preferred again — monotonicity fails across the cycle-forming step.
        let ctx = salary_context();
        let mut preference = CyclicPreference::new(Arc::clone(ctx.graph()));
        preference.add(TupleId(0), TupleId(1)).unwrap();
        let (before, _) = preference.condense();
        preference.add(TupleId(1), TupleId(0)).unwrap();
        let (after, _) = preference.condense();
        assert!(!after.is_extension_of(&before) || before.is_empty());
        assert_eq!(after.edge_count(), 0);
        let family = FamilyKind::Global.family();
        let rejected_before = pdqi_relation::TupleSet::from_ids([TupleId(1)]);
        assert!(!family.is_preferred(&ctx, &before, &rejected_before));
        assert!(family.is_preferred(&ctx, &after, &rejected_before));
    }
}
