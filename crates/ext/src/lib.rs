//! Extensions of the preference framework sketched in the paper's concluding section.
//!
//! The paper closes with two open directions, both of which this crate makes concrete so
//! they can be experimented with:
//!
//! * **Cyclic priorities** ([`cyclic`]). Definition 2 requires the priority to be
//!   acyclic, and the paper notes that lifting the restriction is "an interesting and
//!   challenging issue" because monotonicity (P2) is lost in related frameworks. We model
//!   the user's raw, possibly cyclic preference statements as a [`CyclicPreference`] and
//!   reduce them to a Definition 2 priority by condensing the strongly connected
//!   components: preference edges inside a cycle are treated as mutually cancelling, and
//!   only the orientation induced between different components survives. The module also
//!   exhibits the *conditional* monotonicity the paper anticipates: extensions that do
//!   not merge components preserve P2, extensions that do merge components may not.
//!
//! * **Priorities over conflict hypergraphs** ([`hyper`]). For denial constraints a
//!   conflict can involve more than two tuples and "the current notion of priority does
//!   not have a clear meaning". We keep the priority a binary relation on tuples that
//!   co-occur in some conflict and lift it to hypergraph repairs with the same `≪`
//!   relation as Proposition 5. The familiar structure survives (P1–P3, inclusion in the
//!   set of repairs), but the binary notion of a "total" priority splits into two
//!   inequivalent readings and the weaker one no longer guarantees categoricity — the
//!   module's tests include a witness, substantiating the paper's caveat.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cyclic;
pub mod hyper;

pub use cyclic::{CondensationReport, CyclicPreference};
pub use hyper::{
    hyper_globally_optimal_repairs, is_hyper_globally_optimal, HyperPriority, HyperPriorityError,
};
