//! Consistency checking and violation listings.
//!
//! A database is inconsistent with a set of functional dependencies iff it contains a
//! pair of conflicting tuples (Section 2.1). These helpers report consistency of whole
//! instances and of tuple subsets, and enumerate the individual violations (useful for
//! diagnostics, the data-cleaning baseline and the examples).

use pdqi_relation::{RelationInstance, TupleId, TupleSet};

use crate::conflict::ConflictGraph;
use crate::fd::FdSet;

/// One violation: a pair of conflicting tuples together with the index of the violated
/// dependency within its [`FdSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// First tuple of the conflicting pair (smaller id).
    pub first: TupleId,
    /// Second tuple of the conflicting pair (larger id).
    pub second: TupleId,
    /// Index of the violated FD in the [`FdSet`] that was checked.
    pub fd_index: usize,
}

/// Whether `instance` is consistent with `fds`.
pub fn is_consistent(instance: &RelationInstance, fds: &FdSet) -> bool {
    check_consistency(instance, fds).is_empty()
}

/// Lists every violation of `fds` in `instance`. A pair of tuples violating several
/// dependencies is reported once per violated dependency.
pub fn check_consistency(instance: &RelationInstance, fds: &FdSet) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (fd_index, fd) in fds.fds().iter().enumerate() {
        if fd.is_trivial() {
            continue;
        }
        use std::collections::HashMap;
        let mut groups: HashMap<Vec<pdqi_relation::Value>, Vec<TupleId>> = HashMap::new();
        for (id, tuple) in instance.iter() {
            groups.entry(tuple.project(fd.lhs())).or_default().push(id);
        }
        for group in groups.values() {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if instance.tuple_unchecked(a).differs_on(instance.tuple_unchecked(b), fd.rhs())
                    {
                        violations.push(Violation { first: a.min(b), second: a.max(b), fd_index });
                    }
                }
            }
        }
    }
    violations.sort_by_key(|v| (v.first, v.second, v.fd_index));
    violations
}

/// Whether the subset `subset` of `instance` is consistent with `fds`, checked against a
/// prebuilt conflict graph (a subset is consistent iff it is an independent set).
pub fn is_consistent_subset(graph: &ConflictGraph, subset: &TupleSet) -> bool {
    graph.is_independent(subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_relation::{RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn mgr() -> (RelationInstance, FdSet) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let rows = vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ];
        let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        (instance, fds)
    }

    #[test]
    fn example_1_reports_its_three_conflicts() {
        let (instance, fds) = mgr();
        let violations = check_consistency(&instance, &fds);
        assert_eq!(violations.len(), 3);
        assert!(!is_consistent(&instance, &fds));
        // Conflict 1 is w.r.t. fd1 (index 0); conflicts 2 and 3 are w.r.t. fd2 (index 1).
        assert_eq!(violations.iter().filter(|v| v.fd_index == 0).count(), 1);
        assert_eq!(violations.iter().filter(|v| v.fd_index == 1).count(), 2);
    }

    #[test]
    fn consistent_subsets_are_recognised() {
        let (instance, fds) = mgr();
        let graph = ConflictGraph::build(&instance, &fds);
        assert!(is_consistent_subset(&graph, &TupleSet::from_ids([TupleId(2), TupleId(3)])));
        assert!(!is_consistent_subset(&graph, &TupleSet::from_ids([TupleId(0), TupleId(1)])));
    }

    #[test]
    fn sources_of_example_1_are_individually_consistent() {
        let (instance, fds) = mgr();
        // s1 = {Mary R&D}, s2 = {John R&D}, s3 = {Mary IT, John PR}
        for subset in [
            TupleSet::from_ids([TupleId(0)]),
            TupleSet::from_ids([TupleId(1)]),
            TupleSet::from_ids([TupleId(2), TupleId(3)]),
        ] {
            assert!(is_consistent(&instance.restrict(&subset), &fds));
        }
    }

    #[test]
    fn violations_are_sorted_and_deterministic() {
        let (instance, fds) = mgr();
        let a = check_consistency(&instance, &fds);
        let b = check_consistency(&instance, &fds);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| (w[0].first, w[0].second) <= (w[1].first, w[1].second)));
    }
}
