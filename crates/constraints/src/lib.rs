//! Integrity constraints and conflict structures for `pdqi`.
//!
//! The paper studies inconsistency with respect to **functional dependencies** and
//! represents the space of repairs through the **conflict graph**: vertices are the
//! tuples of the instance and edges connect conflicting tuples; the repairs are exactly
//! the maximal independent sets of that graph. Its concluding section points at the
//! generalisation to **denial constraints** via conflict *hypergraphs* \[6\].
//!
//! This crate provides:
//!
//! * [`FunctionalDependency`] / [`FdSet`] — FDs with parsing, attribute closure,
//!   key inference, minimal cover and BCNF tests,
//! * [`DenialConstraint`] — the broader constraint class of the paper's future-work
//!   section, with evaluation over tuple assignments,
//! * [`ConflictGraph`] — neighbourhoods `n(t)`, vicinities `v(t)`, connected components
//!   and independence/maximality tests,
//! * [`ConflictHypergraph`] — the hypergraph generalisation for denial constraints,
//! * [`violations`] — consistency checking and violation listings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conflict;
pub mod denial;
pub mod fd;
pub mod hypergraph;
pub mod violations;

pub use conflict::{fd_conflict_edges, fd_conflict_edges_touching, ConflictGraph};
pub use denial::{CompOp, DenialAtom, DenialConstraint, DenialTerm};
pub use fd::{FdSet, FunctionalDependency};
pub use hypergraph::ConflictHypergraph;
pub use violations::{check_consistency, is_consistent, is_consistent_subset, Violation};

/// Errors raised while parsing or applying constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// An error bubbled up from the relational substrate (unknown attribute, bad types, ...).
    Relation(pdqi_relation::RelationError),
    /// A textual FD or denial constraint could not be parsed.
    Parse {
        /// The offending input.
        input: String,
        /// Description of the problem.
        message: String,
    },
    /// A denial constraint referenced a tuple variable that is out of range.
    BadTupleVariable {
        /// The variable index used.
        var: usize,
        /// The number of tuple variables declared.
        declared: usize,
    },
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::Relation(e) => write!(f, "{e}"),
            ConstraintError::Parse { input, message } => {
                write!(f, "cannot parse constraint `{input}`: {message}")
            }
            ConstraintError::BadTupleVariable { var, declared } => write!(
                f,
                "denial constraint uses tuple variable t{var} but declares only {declared} variables"
            ),
        }
    }
}

impl std::error::Error for ConstraintError {}

impl From<pdqi_relation::RelationError> for ConstraintError {
    fn from(e: pdqi_relation::RelationError) -> Self {
        ConstraintError::Relation(e)
    }
}

/// Convenience result alias for constraint operations.
pub type Result<T, E = ConstraintError> = std::result::Result<T, E>;
