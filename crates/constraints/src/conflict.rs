//! Conflict graphs.
//!
//! Given an instance `r` and a set of functional dependencies `F`, the **conflict graph**
//! has the tuples of `r` as vertices and an edge between every pair of tuples that
//! conflict with some FD of `F` (Section 2.1 of the paper). Conflict graphs are a compact
//! representation of the repair space: the repairs of `r` are exactly the maximal
//! independent sets of the conflict graph.
//!
//! Construction groups tuples by their left-hand-side projection for every FD, so the
//! cost is proportional to the number of tuples plus the number of genuinely comparable
//! pairs rather than always quadratic in the instance size.

use std::collections::HashMap;
use std::fmt;

use pdqi_relation::{RelationInstance, TupleId, TupleSet, Value};

use crate::fd::FdSet;

/// The conflict graph of an instance w.r.t. a set of functional dependencies.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// Neighbourhood `n(t)` per tuple id (indexed by `TupleId::index()`).
    neighbors: Vec<TupleSet>,
    /// All conflict edges, each stored once with the smaller id first.
    edges: Vec<(TupleId, TupleId)>,
}

/// The conflict edges a single functional dependency induces on `instance`, sorted with
/// the smaller id first.
///
/// This is the per-FD *shard* of [`ConflictGraph::build`]: the edge lists of distinct
/// FDs are independent (each only compares tuples agreeing on its own left-hand side),
/// so callers may compute them concurrently and merge them with
/// [`ConflictGraph::from_edge_lists`] — the merge is a set union, so the result is
/// identical to building the graph from all FDs at once.
pub fn fd_conflict_edges(
    instance: &RelationInstance,
    fd: &crate::fd::FunctionalDependency,
) -> Vec<(TupleId, TupleId)> {
    let mut edges = Vec::new();
    if fd.is_trivial() {
        return edges;
    }
    // Group tuples by their projection on the FD's left-hand side; only tuples in
    // the same group can conflict with this FD.
    let mut groups: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
    for (id, tuple) in instance.iter() {
        groups.entry(tuple.project(fd.lhs())).or_default().push(id);
    }
    for group in groups.values() {
        for (i, &a) in group.iter().enumerate() {
            let ta = instance.tuple_unchecked(a);
            for &b in &group[i + 1..] {
                let tb = instance.tuple_unchecked(b);
                if ta.differs_on(tb, fd.rhs()) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
        }
    }
    // HashMap group order is unspecified; sort so the per-FD shard is deterministic.
    edges.sort_unstable();
    edges
}

/// The conflict edges of one functional dependency that are **incident to at least one
/// tuple of `touched`**, sorted with the smaller id first.
///
/// This is the *delta* analogue of [`fd_conflict_edges`], built for incremental
/// maintenance: when a batch of tuples is inserted into an instance whose conflict
/// graph is already known, the only edges that can appear are those touching an
/// inserted tuple (a conflict is a property of the two tuples alone, so edges between
/// pre-existing tuples are unchanged). The scan still walks the instance once to
/// project left-hand sides, but pairwise comparisons happen only inside groups that
/// contain a touched tuple, and only for pairs involving a touched tuple — on a large
/// instance with a small delta that is the difference between `O(comparable pairs)`
/// and `O(delta × group sizes)`.
///
/// The result equals `fd_conflict_edges(instance, fd)` filtered to edges with an
/// endpoint in `touched` (pinned by tests), so unioning it with the carried-over edges
/// of the untouched tuples reproduces the full edge set exactly.
pub fn fd_conflict_edges_touching(
    instance: &RelationInstance,
    fd: &crate::fd::FunctionalDependency,
    touched: &TupleSet,
) -> Vec<(TupleId, TupleId)> {
    let mut edges = Vec::new();
    if fd.is_trivial() || touched.is_empty() {
        return edges;
    }
    // Group the *touched* tuples by their left-hand-side projection; only tuples whose
    // projection hits one of these groups can gain an edge.
    let mut groups: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
    for id in touched.iter() {
        let tuple = instance.tuple_unchecked(id);
        groups.entry(tuple.project(fd.lhs())).or_default().push(id);
    }
    // Pass 1 — untouched × touched: each such pair is visited exactly once (from the
    // untouched side).
    for (id, tuple) in instance.iter() {
        if touched.contains(id) {
            continue;
        }
        if let Some(group) = groups.get(&tuple.project(fd.lhs())) {
            for &t in group {
                if tuple.differs_on(instance.tuple_unchecked(t), fd.rhs()) {
                    edges.push((id.min(t), id.max(t)));
                }
            }
        }
    }
    // Pass 2 — touched × touched, once per unordered pair within a group.
    for group in groups.values() {
        for (i, &a) in group.iter().enumerate() {
            let ta = instance.tuple_unchecked(a);
            for &b in &group[i + 1..] {
                if ta.differs_on(instance.tuple_unchecked(b), fd.rhs()) {
                    edges.push((a.min(b), a.max(b)));
                }
            }
        }
    }
    edges.sort_unstable();
    edges
}

impl ConflictGraph {
    /// Builds the conflict graph of `instance` w.r.t. `fds`.
    pub fn build(instance: &RelationInstance, fds: &FdSet) -> Self {
        let lists: Vec<Vec<(TupleId, TupleId)>> =
            fds.fds().iter().map(|fd| fd_conflict_edges(instance, fd)).collect();
        ConflictGraph::from_edge_lists(instance.len(), &lists)
    }

    /// Merges per-FD edge shards (see [`fd_conflict_edges`]) into one conflict graph.
    /// The union is order-insensitive, so the result does not depend on how the shards
    /// were produced or listed.
    pub fn from_edge_lists(vertex_count: usize, lists: &[Vec<(TupleId, TupleId)>]) -> Self {
        let mut neighbors = vec![TupleSet::with_capacity(vertex_count); vertex_count];
        let mut edges = Vec::new();
        for list in lists {
            for &(a, b) in list {
                if !neighbors[a.index()].contains(b) {
                    neighbors[a.index()].insert(b);
                    neighbors[b.index()].insert(a);
                    edges.push((a.min(b), a.max(b)));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        ConflictGraph { neighbors, edges }
    }

    /// Builds a conflict graph directly from an edge list (used by generators and tests
    /// that construct graph shapes without materialising tuples first).
    pub fn from_edges(vertex_count: usize, edge_list: &[(TupleId, TupleId)]) -> Self {
        let mut neighbors = vec![TupleSet::with_capacity(vertex_count); vertex_count];
        let mut edges = Vec::with_capacity(edge_list.len());
        for &(a, b) in edge_list {
            if a == b {
                continue;
            }
            if !neighbors[a.index()].contains(b) {
                neighbors[a.index()].insert(b);
                neighbors[b.index()].insert(a);
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        ConflictGraph { neighbors, edges }
    }

    /// Number of vertices (tuples of the underlying instance).
    pub fn vertex_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of conflict edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All conflict edges (smaller id first).
    pub fn edges(&self) -> &[(TupleId, TupleId)] {
        &self.edges
    }

    /// The neighbourhood `n(t)`: all tuples conflicting with `t`.
    pub fn neighbors(&self, t: TupleId) -> &TupleSet {
        &self.neighbors[t.index()]
    }

    /// The vicinity `v(t) = {t} ∪ n(t)`.
    pub fn vicinity(&self, t: TupleId) -> TupleSet {
        let mut v = self.neighbors[t.index()].clone();
        v.insert(t);
        v
    }

    /// Whether `a` and `b` are conflicting (adjacent).
    pub fn are_conflicting(&self, a: TupleId, b: TupleId) -> bool {
        self.neighbors[a.index()].contains(b)
    }

    /// The degree of `t` in the conflict graph.
    pub fn degree(&self, t: TupleId) -> usize {
        self.neighbors[t.index()].len()
    }

    /// The maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count()).map(|i| self.neighbors[i].len()).max().unwrap_or(0)
    }

    /// The vertices that participate in no conflict.
    pub fn isolated_vertices(&self) -> TupleSet {
        (0..self.vertex_count())
            .filter(|&i| self.neighbors[i].is_empty())
            .map(|i| TupleId(i as u32))
            .collect()
    }

    /// Whether the set `s` is independent: no two members are adjacent.
    pub fn is_independent(&self, s: &TupleSet) -> bool {
        s.iter().all(|t| self.neighbors[t.index()].is_disjoint_from(s))
    }

    /// Whether `s` is a *maximal* independent set: independent, and every vertex outside
    /// `s` has a neighbour inside `s`. Maximal independent sets are exactly the repairs.
    pub fn is_maximal_independent(&self, s: &TupleSet) -> bool {
        if !self.is_independent(s) {
            return false;
        }
        (0..self.vertex_count()).all(|i| {
            let t = TupleId(i as u32);
            s.contains(t) || !self.neighbors[i].is_disjoint_from(s)
        })
    }

    /// The connected components of the conflict graph, each as a set of tuple ids.
    /// Components are the unit of divide-and-conquer for repair enumeration: repairs of
    /// the whole instance are exactly the unions of one repair per component.
    pub fn connected_components(&self) -> Vec<TupleSet> {
        let n = self.vertex_count();
        let mut component = vec![usize::MAX; n];
        let mut components = Vec::new();
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let idx = components.len();
            let mut members = TupleSet::with_capacity(n);
            let mut stack = vec![start];
            component[start] = idx;
            while let Some(v) = stack.pop() {
                members.insert(TupleId(v as u32));
                for u in self.neighbors[v].iter() {
                    if component[u.index()] == usize::MAX {
                        component[u.index()] = idx;
                        stack.push(u.index());
                    }
                }
            }
            components.push(members);
        }
        components
    }

    /// Greedily completes the independent set `s` into a maximal independent set,
    /// preferring lower tuple ids. `s` must be independent.
    pub fn complete_to_maximal(&self, s: &TupleSet) -> TupleSet {
        debug_assert!(self.is_independent(s));
        let mut result = s.clone();
        let mut blocked = TupleSet::with_capacity(self.vertex_count());
        for t in s.iter() {
            blocked.union_with(&self.neighbors[t.index()]);
        }
        for i in 0..self.vertex_count() {
            let t = TupleId(i as u32);
            if !result.contains(t) && !blocked.contains(t) {
                result.insert(t);
                blocked.union_with(&self.neighbors[i]);
            }
        }
        result
    }

    /// Summary statistics used by the benchmark harness.
    pub fn stats(&self) -> ConflictGraphStats {
        let components = self.connected_components();
        ConflictGraphStats {
            vertices: self.vertex_count(),
            edges: self.edge_count(),
            max_degree: self.max_degree(),
            isolated: self.isolated_vertices().len(),
            components: components.len(),
            largest_component: components.iter().map(TupleSet::len).max().unwrap_or(0),
        }
    }
}

/// Aggregate shape statistics of a conflict graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictGraphStats {
    /// Number of tuples.
    pub vertices: usize,
    /// Number of conflict edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of tuples involved in no conflict.
    pub isolated: usize,
    /// Number of connected components.
    pub components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

impl fmt::Display for ConflictGraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vertices, {} edges, max degree {}, {} isolated, {} components (largest {})",
            self.vertices,
            self.edges,
            self.max_degree,
            self.isolated,
            self.components,
            self.largest_component
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FdSet;
    use pdqi_relation::{RelationSchema, Value, ValueType};
    use std::sync::Arc;

    /// The instance r_n of Example 4: {(i, 0), (i, 1) | i < n} with FD A -> B.
    fn example4(n: i64) -> (RelationInstance, FdSet) {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let mut rows = Vec::new();
        for i in 0..n {
            rows.push(vec![Value::int(i), Value::int(0)]);
            rows.push(vec![Value::int(i), Value::int(1)]);
        }
        let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        (instance, fds)
    }

    /// The Mgr instance of Example 1 with its two key dependencies.
    fn example1() -> (RelationInstance, FdSet) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let rows = vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ];
        let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        (instance, fds)
    }

    #[test]
    fn example_1_has_exactly_three_conflicts() {
        let (instance, fds) = example1();
        let graph = ConflictGraph::build(&instance, &fds);
        assert_eq!(graph.vertex_count(), 4);
        assert_eq!(graph.edge_count(), 3);
        // (Mary,R&D) conflicts with (John,R&D) and (Mary,IT); (John,R&D) with (John,PR).
        assert!(graph.are_conflicting(TupleId(0), TupleId(1)));
        assert!(graph.are_conflicting(TupleId(0), TupleId(2)));
        assert!(graph.are_conflicting(TupleId(1), TupleId(3)));
        assert!(!graph.are_conflicting(TupleId(2), TupleId(3)));
        assert_eq!(graph.degree(TupleId(0)), 2);
        assert_eq!(graph.vicinity(TupleId(3)).len(), 2);
    }

    #[test]
    fn example_4_is_a_perfect_matching() {
        let (instance, fds) = example4(4);
        let graph = ConflictGraph::build(&instance, &fds);
        assert_eq!(graph.vertex_count(), 8);
        assert_eq!(graph.edge_count(), 4);
        assert_eq!(graph.max_degree(), 1);
        assert_eq!(graph.connected_components().len(), 4);
    }

    #[test]
    fn conflicting_pairs_are_only_counted_once_across_fds() {
        // Both FDs A->B and A->C generate a conflict for the same pair: one edge.
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(1), Value::int(1)],
                vec![Value::int(1), Value::int(2), Value::int(2)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B", "A -> C"]).unwrap();
        let graph = ConflictGraph::build(&instance, &fds);
        assert_eq!(graph.edge_count(), 1);
    }

    #[test]
    fn consistent_instance_has_no_edges() {
        let (instance, fds) = example1();
        let consistent = instance.restrict(&TupleSet::from_ids([TupleId(2), TupleId(3)]));
        let graph = ConflictGraph::build(&consistent, &fds);
        assert_eq!(graph.edge_count(), 0);
        assert_eq!(graph.isolated_vertices().len(), 2);
    }

    #[test]
    fn independence_and_maximality() {
        let (instance, fds) = example1();
        let graph = ConflictGraph::build(&instance, &fds);
        // The three repairs of Example 2.
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(3)]);
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(2)]);
        let r3 = TupleSet::from_ids([TupleId(2), TupleId(3)]);
        for r in [&r1, &r2, &r3] {
            assert!(graph.is_independent(r));
            assert!(graph.is_maximal_independent(r));
        }
        // {Mary-IT} alone is independent but not maximal; {Mary-R&D, John-R&D} not independent.
        assert!(graph.is_independent(&TupleSet::from_ids([TupleId(2)])));
        assert!(!graph.is_maximal_independent(&TupleSet::from_ids([TupleId(2)])));
        assert!(!graph.is_independent(&TupleSet::from_ids([TupleId(0), TupleId(1)])));
    }

    #[test]
    fn completion_produces_a_maximal_independent_set() {
        let (instance, fds) = example1();
        let graph = ConflictGraph::build(&instance, &fds);
        let completed = graph.complete_to_maximal(&TupleSet::from_ids([TupleId(2)]));
        assert!(graph.is_maximal_independent(&completed));
        assert!(completed.contains(TupleId(2)));
    }

    #[test]
    fn touching_edges_equal_the_full_scan_filtered_to_the_touched_set() {
        let (instance, fds) = example1();
        for touched in [
            TupleSet::new(),
            TupleSet::from_ids([TupleId(0)]),
            TupleSet::from_ids([TupleId(1), TupleId(2)]),
            TupleSet::full(instance.len()),
        ] {
            for fd in fds.fds() {
                let full = fd_conflict_edges(&instance, fd);
                let expected: Vec<_> = full
                    .iter()
                    .copied()
                    .filter(|&(a, b)| touched.contains(a) || touched.contains(b))
                    .collect();
                let delta = fd_conflict_edges_touching(&instance, fd, &touched);
                assert_eq!(delta, expected, "touched {touched:?}");
            }
        }
        // Unioning untouched-survivor edges with the delta reproduces the full graph.
        let (instance, fds) = example4(5);
        let touched = TupleSet::from_ids([TupleId(2), TupleId(3), TupleId(7)]);
        for fd in fds.fds() {
            let full = fd_conflict_edges(&instance, fd);
            let untouched: Vec<_> = full
                .iter()
                .copied()
                .filter(|&(a, b)| !touched.contains(a) && !touched.contains(b))
                .collect();
            let mut union = untouched;
            union.extend(fd_conflict_edges_touching(&instance, fd, &touched));
            union.sort_unstable();
            assert_eq!(union, full);
        }
    }

    #[test]
    fn from_edges_ignores_loops_and_duplicates() {
        let graph = ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(0)), (TupleId(2), TupleId(2))],
        );
        assert_eq!(graph.edge_count(), 1);
        assert_eq!(graph.degree(TupleId(2)), 0);
    }

    #[test]
    fn stats_summarise_the_graph_shape() {
        let (instance, fds) = example4(3);
        let graph = ConflictGraph::build(&instance, &fds);
        let stats = graph.stats();
        assert_eq!(stats.vertices, 6);
        assert_eq!(stats.edges, 3);
        assert_eq!(stats.components, 3);
        assert_eq!(stats.largest_component, 2);
        assert_eq!(stats.isolated, 0);
        assert!(stats.to_string().contains("6 vertices"));
    }
}
