//! Conflict hypergraphs for denial constraints.
//!
//! The paper's future-work section points out that conflict graphs generalise to
//! *hypergraphs* when constraints may involve more than two tuples (denial
//! constraints \[6\]). A hyperedge is a minimal set of tuples that jointly violates some
//! constraint; repairs are again exactly the maximal independent sets (sets containing
//! no hyperedge in full).
//!
//! For two-variable constraints (in particular all FD-derived constraints) the
//! hypergraph degenerates to the ordinary conflict graph; [`ConflictHypergraph::to_graph`]
//! performs that conversion.

use pdqi_relation::{RelationInstance, TupleId, TupleSet};

use crate::conflict::ConflictGraph;
use crate::denial::DenialConstraint;

/// The conflict hypergraph of an instance w.r.t. a set of denial constraints.
#[derive(Debug, Clone)]
pub struct ConflictHypergraph {
    vertex_count: usize,
    /// Hyperedges, each a set of at least one tuple id, with no hyperedge containing another.
    hyperedges: Vec<TupleSet>,
}

impl ConflictHypergraph {
    /// Builds the conflict hypergraph of `instance` w.r.t. `constraints`.
    ///
    /// For every constraint with `k` tuple variables all assignments of *distinct*
    /// instance tuples to the variables are considered (tuples may repeat in the
    /// constraint semantics, but a violation witnessed with repeated tuples is also
    /// witnessed by the corresponding smaller set, which is what minimality keeps).
    pub fn build(instance: &RelationInstance, constraints: &[DenialConstraint]) -> Self {
        let mut raw_edges: Vec<TupleSet> = Vec::new();
        let ids: Vec<TupleId> = instance.ids().collect();
        for constraint in constraints {
            let k = constraint.tuple_vars();
            let mut assignment: Vec<TupleId> = Vec::with_capacity(k);
            Self::enumerate_assignments(
                instance,
                constraint,
                &ids,
                &mut assignment,
                &mut raw_edges,
            );
        }
        let hyperedges = Self::minimise(raw_edges);
        ConflictHypergraph { vertex_count: instance.len(), hyperedges }
    }

    fn enumerate_assignments(
        instance: &RelationInstance,
        constraint: &DenialConstraint,
        ids: &[TupleId],
        assignment: &mut Vec<TupleId>,
        out: &mut Vec<TupleSet>,
    ) {
        if assignment.len() == constraint.tuple_vars() {
            let tuples: Vec<&pdqi_relation::Tuple> =
                assignment.iter().map(|&id| instance.tuple_unchecked(id)).collect();
            if constraint.body_satisfied(&tuples) {
                out.push(assignment.iter().copied().collect());
            }
            return;
        }
        for &id in ids {
            // Variables are assigned distinct tuples; violations witnessed by repeated
            // tuples are subsumed by a smaller assignment of another constraint instance
            // or are self-violations, which FD-style constraints never produce.
            if assignment.contains(&id) {
                continue;
            }
            assignment.push(id);
            Self::enumerate_assignments(instance, constraint, ids, assignment, out);
            assignment.pop();
        }
    }

    /// Keeps only inclusion-minimal violation sets and removes duplicates.
    fn minimise(mut edges: Vec<TupleSet>) -> Vec<TupleSet> {
        edges.sort_by_key(TupleSet::len);
        let mut minimal: Vec<TupleSet> = Vec::new();
        for edge in edges {
            if !minimal.iter().any(|kept| kept.is_subset_of(&edge)) {
                minimal.push(edge);
            }
        }
        minimal
    }

    /// Creates a hypergraph directly from hyperedges (generators and tests).
    pub fn from_hyperedges(vertex_count: usize, hyperedges: Vec<TupleSet>) -> Self {
        ConflictHypergraph { vertex_count, hyperedges: Self::minimise(hyperedges) }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// The minimal hyperedges.
    pub fn hyperedges(&self) -> &[TupleSet] {
        &self.hyperedges
    }

    /// Whether `s` contains no hyperedge in full.
    pub fn is_independent(&self, s: &TupleSet) -> bool {
        !self.hyperedges.iter().any(|edge| edge.is_subset_of(s))
    }

    /// Whether `s` is a maximal independent set: independent, and adding any outside
    /// vertex would complete some hyperedge.
    pub fn is_maximal_independent(&self, s: &TupleSet) -> bool {
        if !self.is_independent(s) {
            return false;
        }
        (0..self.vertex_count).all(|i| {
            let t = TupleId(i as u32);
            if s.contains(t) {
                return true;
            }
            let mut extended = s.clone();
            extended.insert(t);
            !self.is_independent(&extended)
        })
    }

    /// Converts to an ordinary conflict graph, provided every hyperedge has exactly two
    /// vertices. Returns `None` if some hyperedge is not binary.
    pub fn to_graph(&self) -> Option<ConflictGraph> {
        let mut edges = Vec::with_capacity(self.hyperedges.len());
        for edge in &self.hyperedges {
            let members: Vec<TupleId> = edge.iter().collect();
            if members.len() != 2 {
                return None;
            }
            edges.push((members[0], members[1]));
        }
        Some(ConflictGraph::from_edges(self.vertex_count, &edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denial::{CompOp, DenialAtom, DenialConstraint, DenialTerm};
    use crate::fd::{FdSet, FunctionalDependency};
    use pdqi_relation::{AttrId, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        )
    }

    fn instance(rows: &[(i64, i64)]) -> RelationInstance {
        RelationInstance::from_rows(
            schema(),
            rows.iter().map(|&(a, b)| vec![Value::int(a), Value::int(b)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn fd_derived_hypergraph_matches_the_conflict_graph() {
        let r = instance(&[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let fd = FunctionalDependency::parse(r.schema(), "A -> B").unwrap();
        let constraints = DenialConstraint::from_fd(Arc::clone(r.schema()), &fd);
        let hyper = ConflictHypergraph::build(&r, &constraints);
        assert_eq!(hyper.hyperedges().len(), 2);
        assert!(hyper.hyperedges().iter().all(|e| e.len() == 2));
        let graph = hyper.to_graph().unwrap();
        let fds = FdSet::parse(Arc::clone(r.schema()), &["A -> B"]).unwrap();
        let direct = crate::conflict::ConflictGraph::build(&r, &fds);
        assert_eq!(graph.edge_count(), direct.edge_count());
        for &(a, b) in direct.edges() {
            assert!(graph.are_conflicting(a, b));
        }
    }

    #[test]
    fn three_tuple_denial_constraint_produces_ternary_hyperedges() {
        // "The sum cannot exceed 5 over three distinct tuples all sharing A":
        // NOT EXISTS t1,t2,t3 . t1.A = t2.A AND t2.A = t3.A AND t1.B < t2.B AND t2.B < t3.B
        // (three tuples with the same A-value and strictly increasing B-values).
        let s = schema();
        let dc = DenialConstraint::new(
            Arc::clone(&s),
            3,
            vec![
                DenialAtom {
                    left: DenialTerm::Attr { var: 0, attr: AttrId(0) },
                    op: CompOp::Eq,
                    right: DenialTerm::Attr { var: 1, attr: AttrId(0) },
                },
                DenialAtom {
                    left: DenialTerm::Attr { var: 1, attr: AttrId(0) },
                    op: CompOp::Eq,
                    right: DenialTerm::Attr { var: 2, attr: AttrId(0) },
                },
                DenialAtom {
                    left: DenialTerm::Attr { var: 0, attr: AttrId(1) },
                    op: CompOp::Lt,
                    right: DenialTerm::Attr { var: 1, attr: AttrId(1) },
                },
                DenialAtom {
                    left: DenialTerm::Attr { var: 1, attr: AttrId(1) },
                    op: CompOp::Lt,
                    right: DenialTerm::Attr { var: 2, attr: AttrId(1) },
                },
            ],
        )
        .unwrap();
        let r = instance(&[(1, 1), (1, 2), (1, 3), (2, 1)]);
        let hyper = ConflictHypergraph::build(&r, &[dc]);
        assert_eq!(hyper.hyperedges().len(), 1);
        assert_eq!(hyper.hyperedges()[0].len(), 3);
        assert!(hyper.to_graph().is_none());
        // Any two of the three violating tuples are fine; all three together are not.
        let all_three = TupleSet::from_ids([TupleId(0), TupleId(1), TupleId(2)]);
        let two = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(3)]);
        assert!(!hyper.is_independent(&all_three));
        assert!(hyper.is_independent(&two));
        assert!(hyper.is_maximal_independent(&two));
    }

    #[test]
    fn minimisation_drops_supersets_and_duplicates() {
        let e01 = TupleSet::from_ids([TupleId(0), TupleId(1)]);
        let e012 = TupleSet::from_ids([TupleId(0), TupleId(1), TupleId(2)]);
        let hyper = ConflictHypergraph::from_hyperedges(3, vec![e012, e01.clone(), e01.clone()]);
        assert_eq!(hyper.hyperedges(), &[e01]);
    }

    #[test]
    fn consistent_instance_has_maximal_set_equal_to_everything() {
        let r = instance(&[(0, 0), (1, 1)]);
        let fd = FunctionalDependency::parse(r.schema(), "A -> B").unwrap();
        let constraints = DenialConstraint::from_fd(Arc::clone(r.schema()), &fd);
        let hyper = ConflictHypergraph::build(&r, &constraints);
        assert!(hyper.hyperedges().is_empty());
        let all = r.all_ids();
        assert!(hyper.is_maximal_independent(&all));
    }
}
