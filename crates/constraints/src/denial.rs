//! Denial constraints.
//!
//! The paper's concluding section observes that conflict graphs generalise to conflict
//! *hypergraphs* when the constraint class is widened from functional dependencies to
//! denial constraints \[6\]: statements of the form
//!
//! ```text
//!     ¬ ∃ t1, …, tk ∈ R .  φ(t1, …, tk)
//! ```
//!
//! where `φ` is a conjunction of comparisons between attributes of the quantified tuples
//! and constants. A set of tuples *violates* the constraint when some assignment of the
//! tuple variables to (not necessarily distinct) tuples of the set satisfies `φ`.

use std::fmt;
use std::sync::Arc;

use pdqi_relation::{AttrId, RelationSchema, Tuple, Value};

use crate::fd::FunctionalDependency;
use crate::{ConstraintError, Result};

/// A comparison operator usable inside a denial constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompOp {
    /// Evaluates the comparison on two values. Equality and inequality are defined on
    /// all values; order comparisons require both operands to be integers.
    pub fn eval(self, left: &Value, right: &Value) -> Result<bool, pdqi_relation::RelationError> {
        match self {
            CompOp::Eq => Ok(left == right),
            CompOp::Neq => Ok(left != right),
            CompOp::Lt => Ok(left.try_cmp(right)?.is_lt()),
            CompOp::Le => Ok(left.try_cmp(right)?.is_le()),
            CompOp::Gt => Ok(left.try_cmp(right)?.is_gt()),
            CompOp::Ge => Ok(left.try_cmp(right)?.is_ge()),
        }
    }

    /// The negated operator (`<` ↔ `≥`, `=` ↔ `≠`, ...).
    pub fn negate(self) -> CompOp {
        match self {
            CompOp::Eq => CompOp::Neq,
            CompOp::Neq => CompOp::Eq,
            CompOp::Lt => CompOp::Ge,
            CompOp::Le => CompOp::Gt,
            CompOp::Gt => CompOp::Le,
            CompOp::Ge => CompOp::Lt,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Eq => "=",
            CompOp::Neq => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        })
    }
}

/// A term inside a denial-constraint comparison: an attribute of one of the quantified
/// tuple variables, or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DenialTerm {
    /// `t<var>.<attr>`.
    Attr {
        /// Index of the tuple variable (0-based).
        var: usize,
        /// Attribute of that tuple.
        attr: AttrId,
    },
    /// A constant value.
    Const(Value),
}

impl DenialTerm {
    fn resolve<'a>(&'a self, assignment: &'a [&Tuple]) -> &'a Value {
        match self {
            DenialTerm::Attr { var, attr } => assignment[*var].get(*attr),
            DenialTerm::Const(v) => v,
        }
    }
}

/// One comparison atom of a denial constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DenialAtom {
    /// Left operand.
    pub left: DenialTerm,
    /// Comparison operator.
    pub op: CompOp,
    /// Right operand.
    pub right: DenialTerm,
}

/// A denial constraint `¬∃ t1..tk ∈ R . atom₁ ∧ … ∧ atomₘ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenialConstraint {
    schema: Arc<RelationSchema>,
    tuple_vars: usize,
    atoms: Vec<DenialAtom>,
}

impl DenialConstraint {
    /// Creates a denial constraint, validating that every referenced tuple variable is in
    /// range.
    pub fn new(
        schema: Arc<RelationSchema>,
        tuple_vars: usize,
        atoms: Vec<DenialAtom>,
    ) -> Result<Self> {
        for atom in &atoms {
            for term in [&atom.left, &atom.right] {
                if let DenialTerm::Attr { var, .. } = term {
                    if *var >= tuple_vars {
                        return Err(ConstraintError::BadTupleVariable {
                            var: *var,
                            declared: tuple_vars,
                        });
                    }
                }
            }
        }
        Ok(DenialConstraint { schema, tuple_vars, atoms })
    }

    /// The relation schema the constraint is defined over.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The number of quantified tuple variables `k`.
    pub fn tuple_vars(&self) -> usize {
        self.tuple_vars
    }

    /// The comparison atoms.
    pub fn atoms(&self) -> &[DenialAtom] {
        &self.atoms
    }

    /// Whether the given assignment of tuples to the tuple variables satisfies the body
    /// `φ` (i.e. witnesses a violation). Order comparisons on non-integer values make the
    /// atom false rather than an error: a denial constraint simply cannot be violated by
    /// values it cannot compare.
    pub fn body_satisfied(&self, assignment: &[&Tuple]) -> bool {
        debug_assert_eq!(assignment.len(), self.tuple_vars);
        self.atoms.iter().all(|atom| {
            let left = atom.left.resolve(assignment);
            let right = atom.right.resolve(assignment);
            atom.op.eval(left, right).unwrap_or(false)
        })
    }

    /// The denial constraints equivalent to a functional dependency `X → Y`: one
    /// two-variable constraint per attribute `B ∈ Y`, namely
    /// `¬∃ t1,t2 . t1.X = t2.X ∧ t1.B ≠ t2.B`.
    pub fn from_fd(
        schema: Arc<RelationSchema>,
        fd: &FunctionalDependency,
    ) -> Vec<DenialConstraint> {
        fd.rhs()
            .iter()
            .map(|b| {
                let mut atoms: Vec<DenialAtom> = fd
                    .lhs()
                    .iter()
                    .map(|a| DenialAtom {
                        left: DenialTerm::Attr { var: 0, attr: a },
                        op: CompOp::Eq,
                        right: DenialTerm::Attr { var: 1, attr: a },
                    })
                    .collect();
                atoms.push(DenialAtom {
                    left: DenialTerm::Attr { var: 0, attr: b },
                    op: CompOp::Neq,
                    right: DenialTerm::Attr { var: 1, attr: b },
                });
                DenialConstraint::new(Arc::clone(&schema), 2, atoms)
                    .expect("FD-derived constraints only use variables 0 and 1")
            })
            .collect()
    }

    /// Renders the constraint with attribute names.
    pub fn render(&self) -> String {
        let term = |t: &DenialTerm| match t {
            DenialTerm::Attr { var, attr } => {
                format!("t{}.{}", var + 1, self.schema.attribute(*attr).name)
            }
            DenialTerm::Const(v) => v.to_string(),
        };
        let body = self
            .atoms
            .iter()
            .map(|a| format!("{} {} {}", term(&a.left), a.op, term(&a.right)))
            .collect::<Vec<_>>()
            .join(" AND ");
        let vars = (1..=self.tuple_vars).map(|i| format!("t{i}")).collect::<Vec<_>>().join(",");
        format!("NOT EXISTS {vars} IN {} . {body}", self.schema.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_relation::ValueType;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        )
    }

    fn tuple(name: &str, dept: &str, salary: i64) -> Tuple {
        schema().tuple(vec![name.into(), dept.into(), Value::int(salary)]).unwrap()
    }

    #[test]
    fn comparison_operators_evaluate_on_integers() {
        assert!(CompOp::Lt.eval(&Value::int(1), &Value::int(2)).unwrap());
        assert!(CompOp::Ge.eval(&Value::int(2), &Value::int(2)).unwrap());
        assert!(!CompOp::Gt.eval(&Value::int(1), &Value::int(2)).unwrap());
        assert!(CompOp::Neq.eval(&Value::name("a"), &Value::name("b")).unwrap());
        assert!(CompOp::Lt.eval(&Value::name("a"), &Value::name("b")).is_err());
    }

    #[test]
    fn negation_is_an_involution() {
        for op in [CompOp::Eq, CompOp::Neq, CompOp::Lt, CompOp::Le, CompOp::Gt, CompOp::Ge] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn out_of_range_tuple_variable_is_rejected() {
        let err = DenialConstraint::new(
            schema(),
            1,
            vec![DenialAtom {
                left: DenialTerm::Attr { var: 1, attr: AttrId(0) },
                op: CompOp::Eq,
                right: DenialTerm::Const(Value::int(0)),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ConstraintError::BadTupleVariable { var: 1, declared: 1 }));
    }

    #[test]
    fn single_tuple_denial_constraint() {
        // No employee earns more than 100: NOT EXISTS t1 . t1.Salary > 100
        let dc = DenialConstraint::new(
            schema(),
            1,
            vec![DenialAtom {
                left: DenialTerm::Attr { var: 0, attr: AttrId(2) },
                op: CompOp::Gt,
                right: DenialTerm::Const(Value::int(100)),
            }],
        )
        .unwrap();
        assert!(dc.body_satisfied(&[&tuple("Mary", "R&D", 150)]));
        assert!(!dc.body_satisfied(&[&tuple("Mary", "R&D", 50)]));
    }

    #[test]
    fn fd_translates_to_denial_constraints() {
        let s = schema();
        let fd = FunctionalDependency::parse(&s, "Name -> Dept Salary").unwrap();
        let dcs = DenialConstraint::from_fd(Arc::clone(&s), &fd);
        assert_eq!(dcs.len(), 2);
        let mary_rd = tuple("Mary", "R&D", 40);
        let mary_it = tuple("Mary", "IT", 40);
        // The Dept-constraint is violated by (mary_rd, mary_it); the Salary one is not.
        let violated: Vec<bool> =
            dcs.iter().map(|dc| dc.body_satisfied(&[&mary_rd, &mary_it])).collect();
        assert_eq!(violated.iter().filter(|v| **v).count(), 1);
        // The same tuple twice never witnesses a violation of an FD-derived constraint.
        assert!(dcs.iter().all(|dc| !dc.body_satisfied(&[&mary_rd, &mary_rd])));
    }

    #[test]
    fn order_comparison_on_names_cannot_witness_a_violation() {
        let dc = DenialConstraint::new(
            schema(),
            1,
            vec![DenialAtom {
                left: DenialTerm::Attr { var: 0, attr: AttrId(0) },
                op: CompOp::Lt,
                right: DenialTerm::Const(Value::name("Zzz")),
            }],
        )
        .unwrap();
        assert!(!dc.body_satisfied(&[&tuple("Mary", "R&D", 40)]));
    }

    #[test]
    fn render_mentions_attribute_names_and_operators() {
        let s = schema();
        let fd = FunctionalDependency::parse(&s, "Name -> Dept").unwrap();
        let dc = &DenialConstraint::from_fd(Arc::clone(&s), &fd)[0];
        let text = dc.render();
        assert!(text.contains("t1.Name = t2.Name"));
        assert!(text.contains("t1.Dept != t2.Dept"));
    }
}
