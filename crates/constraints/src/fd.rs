//! Functional dependencies.
//!
//! A functional dependency `X → Y` over a relation schema states that any two tuples
//! agreeing on every attribute of `X` must also agree on every attribute of `Y`
//! (formula (1) of the paper). Two tuples *conflict* w.r.t. `X → Y` when they agree on
//! `X` but differ on some attribute of `Y`.
//!
//! [`FdSet`] adds the classical dependency-theory toolbox the rest of the workspace and
//! the paper's future-work section rely on: attribute closure, logical implication, key
//! inference, minimal covers and BCNF tests.

use std::fmt;
use std::sync::Arc;

use pdqi_relation::{AttrSet, RelationSchema, Tuple};

use crate::{ConstraintError, Result};

/// A functional dependency `lhs → rhs` over a fixed relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FunctionalDependency {
    lhs: AttrSet,
    rhs: AttrSet,
}

impl FunctionalDependency {
    /// Creates an FD from attribute sets.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        FunctionalDependency { lhs, rhs }
    }

    /// Parses an FD written as `"A B -> C D"` against a schema. Attribute names on each
    /// side are separated by whitespace or commas.
    pub fn parse(schema: &RelationSchema, text: &str) -> Result<Self> {
        let (lhs_text, rhs_text) = text.split_once("->").ok_or_else(|| ConstraintError::Parse {
            input: text.to_string(),
            message: "expected `lhs -> rhs`".to_string(),
        })?;
        let parse_side = |side: &str| -> Result<AttrSet> {
            let mut set = AttrSet::new();
            for token in side.split(|c: char| c.is_whitespace() || c == ',') {
                if token.is_empty() {
                    continue;
                }
                set.insert(schema.attr_id(token)?);
            }
            Ok(set)
        };
        let lhs = parse_side(lhs_text)?;
        let rhs = parse_side(rhs_text)?;
        if rhs.is_empty() {
            return Err(ConstraintError::Parse {
                input: text.to_string(),
                message: "right-hand side must name at least one attribute".to_string(),
            });
        }
        Ok(FunctionalDependency::new(lhs, rhs))
    }

    /// The determining attribute set `X`.
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// The determined attribute set `Y`.
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// Whether `t1` and `t2` conflict with this FD: they agree on `X` and differ on some
    /// attribute of `Y`.
    pub fn conflicts(&self, t1: &Tuple, t2: &Tuple) -> bool {
        t1.agrees_on(t2, &self.lhs) && t1.differs_on(t2, &self.rhs)
    }

    /// Whether the pair `t1`, `t2` *satisfies* the FD.
    pub fn satisfied_by_pair(&self, t1: &Tuple, t2: &Tuple) -> bool {
        !self.conflicts(t1, t2)
    }

    /// Whether the FD is trivial (`Y ⊆ X`), in which case it can never be violated.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset_of(&self.lhs)
    }

    /// Renders the FD using the attribute names of `schema`.
    pub fn render(&self, schema: &RelationSchema) -> String {
        format!("{} -> {}", schema.render_attr_set(&self.lhs), schema.render_attr_set(&self.rhs))
    }
}

impl fmt::Display for FunctionalDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |set: &AttrSet| {
            set.iter().map(|a| format!("#{}", a.index())).collect::<Vec<_>>().join(" ")
        };
        write!(f, "{} -> {}", side(&self.lhs), side(&self.rhs))
    }
}

/// A set of functional dependencies over one relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSet {
    schema: Arc<RelationSchema>,
    fds: Vec<FunctionalDependency>,
}

impl FdSet {
    /// Creates an empty FD set over `schema`.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        FdSet { schema, fds: Vec::new() }
    }

    /// Creates an FD set from already-built dependencies.
    pub fn from_fds(schema: Arc<RelationSchema>, fds: Vec<FunctionalDependency>) -> Self {
        FdSet { schema, fds }
    }

    /// Parses several textual FDs (one per element) against the schema.
    pub fn parse(schema: Arc<RelationSchema>, texts: &[&str]) -> Result<Self> {
        let fds = texts
            .iter()
            .map(|t| FunctionalDependency::parse(&schema, t))
            .collect::<Result<Vec<_>>>()?;
        Ok(FdSet { schema, fds })
    }

    /// The schema the dependencies are defined over.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// The dependencies.
    pub fn fds(&self) -> &[FunctionalDependency] {
        &self.fds
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set contains no dependency.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Adds a dependency.
    pub fn push(&mut self, fd: FunctionalDependency) {
        self.fds.push(fd);
    }

    /// Whether the two tuples conflict with *some* dependency of the set.
    pub fn conflicting(&self, t1: &Tuple, t2: &Tuple) -> bool {
        self.fds.iter().any(|fd| fd.conflicts(t1, t2))
    }

    /// The attribute closure `attrs⁺` under this FD set (textbook fixpoint algorithm).
    pub fn closure(&self, attrs: &AttrSet) -> AttrSet {
        let mut closure = attrs.clone();
        loop {
            let mut changed = false;
            for fd in &self.fds {
                if fd.lhs().is_subset_of(&closure) && !fd.rhs().is_subset_of(&closure) {
                    closure.union_with(fd.rhs());
                    changed = true;
                }
            }
            if !changed {
                return closure;
            }
        }
    }

    /// Whether `fd` is logically implied by this set (via attribute closure).
    pub fn implies(&self, fd: &FunctionalDependency) -> bool {
        fd.rhs().is_subset_of(&self.closure(fd.lhs()))
    }

    /// Whether `attrs` is a superkey (determines every attribute of the schema).
    pub fn is_superkey(&self, attrs: &AttrSet) -> bool {
        self.schema.all_attrs().is_subset_of(&self.closure(attrs))
    }

    /// Whether `attrs` is a key: a superkey none of whose proper subsets is a superkey.
    pub fn is_key(&self, attrs: &AttrSet) -> bool {
        if !self.is_superkey(attrs) {
            return false;
        }
        attrs.iter().all(|a| {
            let mut smaller = attrs.clone();
            smaller.remove(a);
            !self.is_superkey(&smaller)
        })
    }

    /// Whether every dependency of the set is either trivial or has a superkey left-hand
    /// side, i.e. the schema is in Boyce–Codd normal form w.r.t. this set. (The paper's
    /// future-work section suggests refining the complexity analysis under BCNF.)
    pub fn is_bcnf(&self) -> bool {
        self.fds.iter().all(|fd| fd.is_trivial() || self.is_superkey(fd.lhs()))
    }

    /// A minimal cover: an equivalent FD set with singleton right-hand sides, no
    /// redundant dependencies and no extraneous left-hand-side attributes.
    pub fn minimal_cover(&self) -> FdSet {
        // 1. Split right-hand sides into singletons.
        let mut work: Vec<FunctionalDependency> = Vec::new();
        for fd in &self.fds {
            for attr in fd.rhs().iter() {
                let single = AttrSet::from_ids([attr]);
                work.push(FunctionalDependency::new(fd.lhs().clone(), single));
            }
        }
        // 2. Remove extraneous attributes from left-hand sides.
        let all = FdSet::from_fds(Arc::clone(&self.schema), work.clone());
        for fd in work.iter_mut() {
            let mut lhs = fd.lhs().clone();
            loop {
                let mut removed_one = false;
                for attr in lhs.clone().iter() {
                    let mut candidate = lhs.clone();
                    candidate.remove(attr);
                    if fd.rhs().is_subset_of(&all.closure(&candidate)) {
                        lhs = candidate;
                        removed_one = true;
                        break;
                    }
                }
                if !removed_one {
                    break;
                }
            }
            *fd = FunctionalDependency::new(lhs, fd.rhs().clone());
        }
        // 3. Drop redundant dependencies.
        let mut result: Vec<FunctionalDependency> = work.clone();
        let mut i = 0;
        while i < result.len() {
            let candidate = result[i].clone();
            let mut without: Vec<FunctionalDependency> = result.clone();
            without.remove(i);
            let reduced = FdSet::from_fds(Arc::clone(&self.schema), without.clone());
            if reduced.implies(&candidate) {
                result = without;
            } else {
                i += 1;
            }
        }
        // Deduplicate (splitting may create identical singletons).
        let mut deduped: Vec<FunctionalDependency> = Vec::new();
        for fd in result {
            if !deduped.contains(&fd) {
                deduped.push(fd);
            }
        }
        FdSet::from_fds(Arc::clone(&self.schema), deduped)
    }

    /// Renders every dependency using attribute names.
    pub fn render(&self) -> Vec<String> {
        self.fds.iter().map(|fd| fd.render(&self.schema)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_relation::{Value, ValueType};

    fn mgr_schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        )
    }

    fn mgr_fds() -> FdSet {
        // fd1: Dept -> Name Salary Reports, fd2: Name -> Dept Salary Reports
        FdSet::parse(mgr_schema(), &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
            .unwrap()
    }

    fn mgr_tuple(name: &str, dept: &str, salary: i64, reports: i64) -> Tuple {
        mgr_schema()
            .tuple(vec![name.into(), dept.into(), Value::int(salary), Value::int(reports)])
            .unwrap()
    }

    #[test]
    fn parse_accepts_commas_and_whitespace() {
        let schema = mgr_schema();
        let fd = FunctionalDependency::parse(&schema, "Dept, Name -> Salary").unwrap();
        assert_eq!(fd.lhs().len(), 2);
        assert_eq!(fd.rhs().len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let schema = mgr_schema();
        assert!(FunctionalDependency::parse(&schema, "Dept Name Salary").is_err());
        assert!(FunctionalDependency::parse(&schema, "Dept -> ").is_err());
        assert!(FunctionalDependency::parse(&schema, "Dept -> Bogus").is_err());
    }

    #[test]
    fn conflict_detection_matches_example_1() {
        let fds = mgr_fds();
        let mary_rd = mgr_tuple("Mary", "R&D", 40, 3);
        let john_rd = mgr_tuple("John", "R&D", 10, 2);
        let mary_it = mgr_tuple("Mary", "IT", 20, 1);
        let john_pr = mgr_tuple("John", "PR", 30, 4);
        // The three conflicts listed in Example 1.
        assert!(fds.fds()[0].conflicts(&mary_rd, &john_rd)); // fd1
        assert!(fds.fds()[1].conflicts(&mary_rd, &mary_it)); // fd2
        assert!(fds.fds()[1].conflicts(&john_rd, &john_pr)); // fd2
                                                             // Non-conflicting pairs.
        assert!(!fds.conflicting(&mary_rd, &john_pr));
        assert!(!fds.conflicting(&mary_it, &john_pr));
        assert!(!fds.conflicting(&mary_it, &john_rd));
    }

    #[test]
    fn identical_tuples_never_conflict() {
        let fds = mgr_fds();
        let t = mgr_tuple("Mary", "R&D", 40, 3);
        assert!(!fds.conflicting(&t, &t));
    }

    #[test]
    fn trivial_fd_is_never_violated() {
        let schema = mgr_schema();
        let fd = FunctionalDependency::parse(&schema, "Dept Salary -> Dept").unwrap();
        assert!(fd.is_trivial());
        assert!(!fd.conflicts(&mgr_tuple("Mary", "R&D", 40, 3), &mgr_tuple("John", "R&D", 10, 2)));
    }

    #[test]
    fn closure_and_implication() {
        let fds = mgr_fds();
        let schema = fds.schema().clone();
        let dept = schema.attr_set(&["Dept"]).unwrap();
        assert_eq!(fds.closure(&dept), schema.all_attrs());
        let implied = FunctionalDependency::parse(&schema, "Dept -> Salary").unwrap();
        assert!(fds.implies(&implied));
        let not_implied = FunctionalDependency::parse(&schema, "Salary -> Dept").unwrap();
        assert!(!fds.implies(&not_implied));
    }

    #[test]
    fn key_detection() {
        let fds = mgr_fds();
        let schema = fds.schema().clone();
        assert!(fds.is_key(&schema.attr_set(&["Dept"]).unwrap()));
        assert!(fds.is_key(&schema.attr_set(&["Name"]).unwrap()));
        assert!(fds.is_superkey(&schema.attr_set(&["Name", "Salary"]).unwrap()));
        assert!(!fds.is_key(&schema.attr_set(&["Name", "Salary"]).unwrap()));
        assert!(!fds.is_superkey(&schema.attr_set(&["Salary"]).unwrap()));
    }

    #[test]
    fn bcnf_detection() {
        // Mgr with its two keys is in BCNF.
        assert!(mgr_fds().is_bcnf());
        // Example 8 schema R(A,B,C) with A -> B only is in BCNF? A+ = {A,B}, not all attrs,
        // so A is not a superkey and the FD is non-trivial: not BCNF.
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        );
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        assert!(!fds.is_bcnf());
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        );
        // A -> B, B -> C, A -> C (redundant), A B -> C (extraneous B and redundant).
        let fds =
            FdSet::parse(Arc::clone(&schema), &["A -> B", "B -> C", "A -> C", "A B -> C"]).unwrap();
        let cover = fds.minimal_cover();
        assert_eq!(cover.len(), 2);
        // The cover is logically equivalent to the original set.
        for fd in fds.fds() {
            assert!(cover.implies(fd));
        }
        for fd in cover.fds() {
            assert!(fds.implies(fd));
        }
    }

    #[test]
    fn render_uses_attribute_names() {
        let fds = mgr_fds();
        let rendered = fds.render();
        assert_eq!(rendered[0], "Dept -> Name Salary Reports");
    }
}
