//! Multi-relation database instances.
//!
//! The paper restricts its exposition to a single relation "only for the sake of
//! clarity"; the framework extends to databases with multiple relations along the lines
//! of its reference \[7\]. [`DatabaseInstance`] provides that general container so the SQL
//! front end and the examples can work with several relations at once.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::relation::RelationInstance;
use crate::schema::{DatabaseSchema, RelationSchema};

/// A database instance: one [`RelationInstance`] per relation name.
#[derive(Debug, Clone, Default)]
pub struct DatabaseInstance {
    relations: BTreeMap<String, RelationInstance>,
}

impl DatabaseInstance {
    /// Creates an empty database instance.
    pub fn new() -> Self {
        DatabaseInstance::default()
    }

    /// Creates an empty instance for every relation of `schema`.
    pub fn for_schema(schema: &DatabaseSchema) -> Self {
        let mut db = DatabaseInstance::new();
        for relation in schema.relations() {
            db.add_relation(RelationInstance::new(Arc::clone(relation)))
                .expect("database schema has unique relation names");
        }
        db
    }

    /// Adds a relation instance, rejecting duplicate names.
    pub fn add_relation(&mut self, instance: RelationInstance) -> Result<(), RelationError> {
        let name = instance.schema().name().to_string();
        if self.relations.contains_key(&name) {
            return Err(RelationError::DuplicateRelation { relation: name });
        }
        self.relations.insert(name, instance);
        Ok(())
    }

    /// The instance of relation `name`.
    pub fn relation(&self, name: &str) -> Result<&RelationInstance, RelationError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationError::UnknownRelation { relation: name.to_string() })
    }

    /// Mutable access to the instance of relation `name`.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut RelationInstance, RelationError> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationError::UnknownRelation { relation: name.to_string() })
    }

    /// Whether the database contains a relation called `name`.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over `(name, instance)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RelationInstance)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.values().map(RelationInstance::len).sum()
    }

    /// The schemas of all relations in this database, as a [`DatabaseSchema`].
    pub fn schema(&self) -> DatabaseSchema {
        let mut schema = DatabaseSchema::new();
        for instance in self.relations.values() {
            schema
                .add_relation(RelationSchema::clone(instance.schema()))
                .expect("instance relation names are unique");
        }
        schema
    }
}

impl fmt::Display for DatabaseInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, instance) in self.relations.values().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{instance}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::{Value, ValueType};

    fn schema(name: &str) -> RelationSchema {
        RelationSchema::from_pairs(name, &[("A", ValueType::Int)]).unwrap()
    }

    #[test]
    fn relations_are_addressable_by_name() {
        let mut db = DatabaseInstance::new();
        db.add_relation(RelationInstance::new(Arc::new(schema("R")))).unwrap();
        db.add_relation(RelationInstance::new(Arc::new(schema("S")))).unwrap();
        assert!(db.has_relation("R"));
        assert!(db.relation("S").is_ok());
        assert!(db.relation("T").is_err());
        assert_eq!(db.relation_count(), 2);
    }

    #[test]
    fn duplicate_relation_names_are_rejected() {
        let mut db = DatabaseInstance::new();
        db.add_relation(RelationInstance::new(Arc::new(schema("R")))).unwrap();
        assert!(db.add_relation(RelationInstance::new(Arc::new(schema("R")))).is_err());
    }

    #[test]
    fn for_schema_creates_empty_instances() {
        let mut dbs = DatabaseSchema::new();
        dbs.add_relation(schema("R")).unwrap();
        dbs.add_relation(schema("S")).unwrap();
        let db = DatabaseInstance::for_schema(&dbs);
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.tuple_count(), 0);
    }

    #[test]
    fn tuple_count_sums_over_relations() {
        let mut db = DatabaseInstance::new();
        db.add_relation(RelationInstance::new(Arc::new(schema("R")))).unwrap();
        db.relation_mut("R").unwrap().insert(vec![Value::int(1)]).unwrap();
        db.relation_mut("R").unwrap().insert(vec![Value::int(2)]).unwrap();
        assert_eq!(db.tuple_count(), 2);
    }

    #[test]
    fn schema_round_trips_relation_names() {
        let mut db = DatabaseInstance::new();
        db.add_relation(RelationInstance::new(Arc::new(schema("R")))).unwrap();
        let derived = db.schema();
        assert!(derived.relation("R").is_ok());
    }
}
