//! Error types for the relational substrate.

use std::fmt;

use crate::value::ValueType;

/// Errors produced while constructing or manipulating schemas, tuples and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A tuple was built with a different number of values than the schema has attributes.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Number of attributes declared by the schema.
        expected: usize,
        /// Number of values supplied.
        actual: usize,
    },
    /// A value of the wrong type was supplied for an attribute.
    TypeMismatch {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
        /// Type declared by the schema.
        expected: ValueType,
        /// Type of the supplied value.
        actual: ValueType,
    },
    /// Two values of incompatible types were compared with `<`, `>`, `<=` or `>=`.
    IncomparableValues {
        /// Type of the left operand.
        left: ValueType,
        /// Type of the right operand.
        right: ValueType,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// Relation name.
        relation: String,
        /// The attribute that was looked up.
        attribute: String,
    },
    /// A relation name was not found in a database schema or instance.
    UnknownRelation {
        /// The relation that was looked up.
        relation: String,
    },
    /// A duplicate attribute name appeared in a schema definition.
    DuplicateAttribute {
        /// Relation name.
        relation: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// A duplicate relation name appeared in a database schema.
    DuplicateRelation {
        /// The duplicated relation name.
        relation: String,
    },
    /// A tuple identifier did not refer to a tuple of the instance.
    UnknownTupleId {
        /// The identifier that was looked up.
        id: u32,
    },
    /// A textual instance description could not be parsed.
    ParseError {
        /// Line number (1-based) where the problem was found.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "relation `{relation}`: expected {expected} values, got {actual}"
            ),
            RelationError::TypeMismatch { relation, attribute, expected, actual } => write!(
                f,
                "relation `{relation}`, attribute `{attribute}`: expected a value of type {expected}, got {actual}"
            ),
            RelationError::IncomparableValues { left, right } => write!(
                f,
                "values of types {left} and {right} cannot be compared with an order predicate"
            ),
            RelationError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            RelationError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            RelationError::DuplicateAttribute { relation, attribute } => write!(
                f,
                "relation `{relation}` declares attribute `{attribute}` more than once"
            ),
            RelationError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` is declared more than once")
            }
            RelationError::UnknownTupleId { id } => {
                write!(f, "tuple id {id} does not refer to a tuple of this instance")
            }
            RelationError::ParseError { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_relation_and_attribute() {
        let err = RelationError::TypeMismatch {
            relation: "Mgr".into(),
            attribute: "Salary".into(),
            expected: ValueType::Int,
            actual: ValueType::Name,
        };
        let text = err.to_string();
        assert!(text.contains("Mgr"));
        assert!(text.contains("Salary"));
        assert!(text.contains("int"));
        assert!(text.contains("name"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = RelationError::UnknownRelation { relation: "R".into() };
        let b = RelationError::UnknownRelation { relation: "R".into() };
        assert_eq!(a, b);
    }
}
