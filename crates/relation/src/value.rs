//! Typed attribute values.
//!
//! The paper's two disjoint domains are uninterpreted names `D` (only `=`/`≠` are
//! meaningful) and the naturals `N` (with the usual order). [`Value`] carries a value of
//! either domain; [`Value::try_cmp`] implements the paper's comparison semantics, where
//! ordering a name against anything (or an integer against a name) is a type error.

use std::cmp::Ordering;
use std::fmt;

use crate::error::RelationError;
use crate::symbol::Name;

/// The type of an attribute or value: either an uninterpreted name or an integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ValueType {
    /// The uninterpreted name domain `D`.
    Name,
    /// The numeric domain `N` (modelled as signed 64-bit integers).
    Int,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Name => f.write_str("name"),
            ValueType::Int => f.write_str("int"),
        }
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// An uninterpreted constant.
    Name(Name),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Creates a name value (interning the spelling).
    pub fn name(text: &str) -> Self {
        Value::Name(Name::new(text))
    }

    /// Creates an integer value.
    pub fn int(n: i64) -> Self {
        Value::Int(n)
    }

    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Name(_) => ValueType::Name,
            Value::Int(_) => ValueType::Int,
        }
    }

    /// Compares two values with the *query* semantics of the paper: integers compare
    /// numerically, while applying an order predicate to a name (or mixing domains) is a
    /// type error. Equality between values of different domains is always `false` and is
    /// handled by `==`, not by this method.
    pub fn try_cmp(&self, other: &Value) -> Result<Ordering, RelationError> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (a, b) => Err(RelationError::IncomparableValues {
                left: a.value_type(),
                right: b.value_type(),
            }),
        }
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Name(_) => None,
        }
    }

    /// Returns the name payload if this is a [`Value::Name`].
    pub fn as_name(&self) -> Option<&Name> {
        match self {
            Value::Name(n) => Some(n),
            Value::Int(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Name(n) => write!(f, "{n}"),
            Value::Int(n) => write!(f, "{n}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(text: &str) -> Self {
        Value::name(text)
    }
}

impl From<Name> for Value {
    fn from(name: Name) -> Self {
        Value::Name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_compare_numerically() {
        assert_eq!(Value::int(10).try_cmp(&Value::int(40)).unwrap(), Ordering::Less);
        assert_eq!(Value::int(40).try_cmp(&Value::int(40)).unwrap(), Ordering::Equal);
    }

    #[test]
    fn ordering_names_is_a_type_error() {
        let err = Value::name("Mary").try_cmp(&Value::name("John")).unwrap_err();
        assert!(matches!(err, RelationError::IncomparableValues { .. }));
    }

    #[test]
    fn ordering_across_domains_is_a_type_error() {
        assert!(Value::name("Mary").try_cmp(&Value::int(1)).is_err());
        assert!(Value::int(1).try_cmp(&Value::name("Mary")).is_err());
    }

    #[test]
    fn equality_across_domains_is_false_not_an_error() {
        assert_ne!(Value::name("1"), Value::int(1));
    }

    #[test]
    fn value_types_are_reported() {
        assert_eq!(Value::name("x").value_type(), ValueType::Name);
        assert_eq!(Value::int(3).value_type(), ValueType::Int);
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_name(), None);
        assert_eq!(Value::name("a").as_name(), Some(&Name::new("a")));
        assert_eq!(Value::name("a").as_int(), None);
    }

    #[test]
    fn display_renders_payload_without_decoration() {
        assert_eq!(Value::name("R&D").to_string(), "R&D");
        assert_eq!(Value::int(-3).to_string(), "-3");
    }
}
