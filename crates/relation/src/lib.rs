//! Relational substrate for `pdqi`.
//!
//! The paper works with databases over a schema consisting of relations with typed
//! attributes drawn from two disjoint domains: *uninterpreted names* `D` and *natural
//! numbers* `N` (we use signed 64-bit integers, which subsume the paper's naturals).
//! This crate provides that data model:
//!
//! * [`Name`] — interned, cheaply clonable uninterpreted constants,
//! * [`Value`] / [`ValueType`] — typed attribute values,
//! * [`RelationSchema`], [`AttrId`], [`AttrSet`] — schemas and attribute sets,
//! * [`Tuple`], [`TupleId`] — tuples and stable tuple identities inside an instance,
//! * [`RelationInstance`] — a finite set of tuples with stable identities,
//! * [`ColumnarView`] — the per-attribute columnar transpose of an instance, the
//!   substrate of vectorized query evaluation,
//! * [`DatabaseInstance`] — a multi-relation instance (the paper restricts itself to a
//!   single relation "for the sake of clarity"; we support the general case),
//! * [`text`] — a small plain-text loader/renderer used by examples and tests.
//!
//! Everything downstream (conflict graphs, repairs, preferred repairs, consistent query
//! answers) is built on the types in this crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod columnar;
pub mod database;
pub mod error;
pub mod relation;
pub mod schema;
pub mod symbol;
pub mod text;
pub mod tuple;
pub mod value;

pub use columnar::ColumnarView;
pub use database::DatabaseInstance;
pub use error::RelationError;
pub use relation::{RelationInstance, TupleSet};
pub use schema::{AttrId, AttrSet, AttributeDef, DatabaseSchema, RelationSchema};
pub use symbol::Name;
pub use tuple::{Tuple, TupleId};
pub use value::{Value, ValueType};

/// Convenience result alias used throughout the relational substrate.
pub type Result<T, E = RelationError> = std::result::Result<T, E>;
