//! Plain-text loading and rendering of relation instances.
//!
//! The examples, tests and benchmark harness describe instances in a minimal
//! comma-separated format: one tuple per line, `#`-comments and blank lines ignored.
//! Values are interpreted according to the attribute types of the target schema; name
//! values may optionally be wrapped in single quotes (required when the spelling
//! contains a comma or starts with a digit).

use std::sync::Arc;

use crate::error::RelationError;
use crate::relation::RelationInstance;
use crate::schema::RelationSchema;
use crate::value::{Value, ValueType};

/// Parses a comma-separated instance description against `schema`.
pub fn parse_instance(
    schema: Arc<RelationSchema>,
    text: &str,
) -> Result<RelationInstance, RelationError> {
    let mut instance = RelationInstance::new(schema);
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_fields(line, line_no + 1)?;
        let arity = instance.schema().arity();
        if fields.len() != arity {
            return Err(RelationError::ParseError {
                line: line_no + 1,
                message: format!("expected {arity} fields, found {}", fields.len()),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (field, attr) in fields.iter().zip(instance.schema().attributes().to_vec()) {
            values.push(parse_value(field, attr.ty, line_no + 1)?);
        }
        instance.insert(values)?;
    }
    Ok(instance)
}

/// Renders an instance as an aligned text table (header row plus one row per tuple).
pub fn render_instance(instance: &RelationInstance) -> String {
    let schema = instance.schema();
    let mut columns: Vec<Vec<String>> =
        schema.attributes().iter().map(|a| vec![a.name.clone()]).collect();
    for (_, tuple) in instance.iter() {
        for (col, value) in columns.iter_mut().zip(tuple.values()) {
            col.push(value.to_string());
        }
    }
    let widths: Vec<usize> =
        columns.iter().map(|col| col.iter().map(String::len).max().unwrap_or(0)).collect();
    let mut out = String::new();
    let row_count = instance.len() + 1;
    for row in 0..row_count {
        for (col, width) in columns.iter().zip(&widths) {
            out.push_str(&format!("{:width$}  ", col[row], width = width));
        }
        let trimmed = out.trim_end().len();
        out.truncate(trimmed);
        out.push('\n');
        if row == 0 {
            for (i, width) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&"-".repeat(*width));
            }
            out.push('\n');
        }
    }
    out
}

fn split_fields(line: &str, line_no: usize) -> Result<Vec<String>, RelationError> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '\'' if !in_quotes => in_quotes = true,
            '\'' if in_quotes => {
                // Doubled quote inside a quoted field is an escaped quote.
                if chars.peek() == Some(&'\'') {
                    chars.next();
                    current.push('\'');
                } else {
                    in_quotes = false;
                }
            }
            ',' if !in_quotes => {
                fields.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if in_quotes {
        return Err(RelationError::ParseError {
            line: line_no,
            message: "unterminated quoted value".to_string(),
        });
    }
    fields.push(current.trim().to_string());
    Ok(fields)
}

fn parse_value(field: &str, ty: ValueType, line_no: usize) -> Result<Value, RelationError> {
    match ty {
        ValueType::Int => {
            field.parse::<i64>().map(Value::Int).map_err(|_| RelationError::ParseError {
                line: line_no,
                message: format!("`{field}` is not an integer"),
            })
        }
        ValueType::Name => {
            if field.is_empty() {
                return Err(RelationError::ParseError {
                    line: line_no,
                    message: "empty name value".to_string(),
                });
            }
            Ok(Value::name(field))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn parses_the_paper_running_example() {
        let text = "\
            # integrated instance from Example 1\n\
            Mary, R&D, 40, 3\n\
            John, R&D, 10, 2\n\
            Mary, IT, 20, 1\n\
            John, PR, 30, 4\n";
        let instance = parse_instance(mgr_schema(), text).unwrap();
        assert_eq!(instance.len(), 4);
        let tuple = instance
            .schema()
            .tuple(vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)])
            .unwrap();
        assert!(instance.contains_tuple(&tuple));
    }

    #[test]
    fn quoted_names_may_contain_commas() {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Name), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = parse_instance(schema, "'Smith, John', 5\n").unwrap();
        let (_, tuple) = instance.iter().next().unwrap();
        assert_eq!(tuple.get(crate::AttrId(0)), &Value::name("Smith, John"));
    }

    #[test]
    fn doubled_quotes_escape_a_quote() {
        let schema = Arc::new(RelationSchema::from_pairs("R", &[("A", ValueType::Name)]).unwrap());
        let instance = parse_instance(schema, "'O''Brien'\n").unwrap();
        let (_, tuple) = instance.iter().next().unwrap();
        assert_eq!(tuple.get(crate::AttrId(0)), &Value::name("O'Brien"));
    }

    #[test]
    fn field_count_mismatch_is_a_parse_error() {
        let err = parse_instance(mgr_schema(), "Mary, R&D, 40\n").unwrap_err();
        assert!(matches!(err, RelationError::ParseError { line: 1, .. }));
    }

    #[test]
    fn non_integer_in_int_column_is_a_parse_error() {
        let err = parse_instance(mgr_schema(), "Mary, R&D, forty, 3\n").unwrap_err();
        assert!(matches!(err, RelationError::ParseError { .. }));
    }

    #[test]
    fn unterminated_quote_is_a_parse_error() {
        let schema = Arc::new(RelationSchema::from_pairs("R", &[("A", ValueType::Name)]).unwrap());
        assert!(parse_instance(schema, "'oops\n").is_err());
    }

    #[test]
    fn render_produces_header_and_rows() {
        let instance = parse_instance(mgr_schema(), "Mary, R&D, 40, 3\n").unwrap();
        let rendered = render_instance(&instance);
        assert!(rendered.contains("Name"));
        assert!(rendered.contains("Mary"));
        assert!(rendered.lines().count() >= 3);
    }
}
