//! Relation instances and tuple-id sets.
//!
//! A [`RelationInstance`] is a finite *set* of tuples (duplicates are collapsed on
//! insertion, matching the paper's set semantics) in which every tuple has a stable
//! [`TupleId`]. Downstream machinery — conflict graphs, priorities, repairs — never
//! copies tuples around; it manipulates [`TupleSet`]s of ids against a fixed instance.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::schema::RelationSchema;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;

/// A set of tuple ids of one relation instance, stored as a bitset.
///
/// Repairs are exactly such sets; the bitset representation makes the maximality and
/// independence checks used throughout repair enumeration cheap.
#[derive(Clone, Default)]
pub struct TupleSet {
    words: Vec<u64>,
}

impl PartialEq for TupleSet {
    fn eq(&self, other: &Self) -> bool {
        // Trailing zero words are irrelevant: sets are equal iff they have the same members.
        let longest = self.words.len().max(other.words.len());
        (0..longest).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for TupleSet {}

impl std::hash::Hash for TupleSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last non-zero word so that equal sets hash equally.
        let significant = self.words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        self.words[..significant].hash(state);
    }
}

impl TupleSet {
    /// The empty set.
    pub fn new() -> Self {
        TupleSet::default()
    }

    /// The empty set with capacity for ids `0..n` pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        TupleSet { words: vec![0; n.div_ceil(64)] }
    }

    /// The full set `{0, .., n-1}`.
    pub fn full(n: usize) -> Self {
        let mut set = TupleSet::with_capacity(n);
        for i in 0..n {
            set.insert(TupleId(i as u32));
        }
        set
    }

    /// Builds a set from ids.
    pub fn from_ids<I: IntoIterator<Item = TupleId>>(ids: I) -> Self {
        let mut set = TupleSet::new();
        for id in ids {
            set.insert(id);
        }
        set
    }

    /// Adds an id. Returns `true` if it was not already present.
    pub fn insert(&mut self, id: TupleId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let absent = self.words[word] & mask == 0;
        self.words[word] |= mask;
        absent
    }

    /// Removes an id. Returns `true` if it was present.
    pub fn remove(&mut self, id: TupleId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        present
    }

    /// Membership test.
    pub fn contains(&self, id: TupleId) -> bool {
        let (word, bit) = (id.index() / 64, id.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &TupleSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Whether the two sets share no id.
    pub fn is_disjoint_from(&self, other: &TupleSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// Set union.
    pub fn union(&self, other: &TupleSet) -> TupleSet {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, slot) in words.iter_mut().enumerate() {
            *slot =
                self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        TupleSet { words }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &TupleSet) -> TupleSet {
        let mut words = vec![0u64; self.words.len().min(other.words.len())];
        for (i, slot) in words.iter_mut().enumerate() {
            *slot = self.words[i] & other.words[i];
        }
        TupleSet { words }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &TupleSet) -> TupleSet {
        let mut words = self.words.clone();
        for (i, slot) in words.iter_mut().enumerate() {
            *slot &= !other.words.get(i).copied().unwrap_or(0);
        }
        TupleSet { words }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &TupleSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, slot) in self.words.iter_mut().enumerate() {
            *slot |= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference.
    pub fn remove_all(&mut self, other: &TupleSet) {
        for (i, slot) in self.words.iter_mut().enumerate() {
            *slot &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.words.iter().enumerate().flat_map(|(word_idx, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(TupleId((word_idx * 64 + bit) as u32))
                }
            })
        })
    }

    /// The smallest id in the set, if any.
    pub fn first(&self) -> Option<TupleId> {
        self.iter().next()
    }
}

impl fmt::Debug for TupleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<TupleId> for TupleSet {
    fn from_iter<I: IntoIterator<Item = TupleId>>(iter: I) -> Self {
        TupleSet::from_ids(iter)
    }
}

/// A relation instance: a set of tuples over one schema with stable tuple ids.
///
/// Instances are append-only; ids are assigned in insertion order and never reused,
/// which is what lets conflict graphs and priorities reference tuples by id.
#[derive(Debug, Clone)]
pub struct RelationInstance {
    schema: Arc<RelationSchema>,
    tuples: Vec<Tuple>,
    index: HashMap<Tuple, TupleId>,
}

impl RelationInstance {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: Arc<RelationSchema>) -> Self {
        RelationInstance { schema, tuples: Vec::new(), index: HashMap::new() }
    }

    /// The schema of the instance.
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// Inserts a tuple (validated against the schema). Returns the tuple's id and
    /// whether it was newly inserted (`false` means the identical tuple was already
    /// present — set semantics).
    pub fn insert(&mut self, values: Vec<Value>) -> Result<(TupleId, bool), RelationError> {
        let tuple = self.schema.tuple(values)?;
        Ok(self.insert_tuple(tuple))
    }

    /// Inserts an already-validated tuple.
    pub fn insert_tuple(&mut self, tuple: Tuple) -> (TupleId, bool) {
        if let Some(&id) = self.index.get(&tuple) {
            return (id, false);
        }
        let id = TupleId(self.tuples.len() as u32);
        self.index.insert(tuple.clone(), id);
        self.tuples.push(tuple);
        (id, true)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple with id `id`.
    pub fn tuple(&self, id: TupleId) -> Result<&Tuple, RelationError> {
        self.tuples.get(id.index()).ok_or(RelationError::UnknownTupleId { id: id.0 })
    }

    /// The tuple with id `id`, panicking on an invalid id (internal fast path).
    pub fn tuple_unchecked(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.index()]
    }

    /// The id of `tuple`, if present.
    pub fn id_of(&self, tuple: &Tuple) -> Option<TupleId> {
        self.index.get(tuple).copied()
    }

    /// Whether the instance contains a tuple with exactly these values.
    pub fn contains_tuple(&self, tuple: &Tuple) -> bool {
        self.index.contains_key(tuple)
    }

    /// Iterates over `(id, tuple)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| (TupleId(i as u32), t))
    }

    /// All tuple ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        (0..self.tuples.len()).map(|i| TupleId(i as u32))
    }

    /// The set of all tuple ids.
    pub fn all_ids(&self) -> TupleSet {
        TupleSet::full(self.tuples.len())
    }

    /// Materialises the sub-instance containing exactly the tuples in `ids`.
    ///
    /// The new instance assigns fresh ids; use this when handing a repair to a consumer
    /// that expects a plain instance (e.g. query evaluation over a single repair).
    pub fn restrict(&self, ids: &TupleSet) -> RelationInstance {
        let mut sub = RelationInstance::new(Arc::clone(&self.schema));
        for id in ids.iter() {
            if let Some(tuple) = self.tuples.get(id.index()) {
                sub.insert_tuple(tuple.clone());
            }
        }
        sub
    }

    /// Builds an instance directly from rows, validating each row.
    pub fn from_rows(
        schema: Arc<RelationSchema>,
        rows: Vec<Vec<Value>>,
    ) -> Result<Self, RelationError> {
        let mut instance = RelationInstance::new(schema);
        for row in rows {
            instance.insert(row)?;
        }
        Ok(instance)
    }

    /// Unions another instance of the same schema into this one (source integration).
    pub fn union_with(&mut self, other: &RelationInstance) {
        for (_, tuple) in other.iter() {
            self.insert_tuple(tuple.clone());
        }
    }
}

impl fmt::Display for RelationInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (id, tuple) in self.iter() {
            writeln!(f, "  {id}: {tuple}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::ValueType;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        )
    }

    fn instance(rows: &[(i64, i64)]) -> RelationInstance {
        RelationInstance::from_rows(
            schema(),
            rows.iter().map(|&(a, b)| vec![Value::int(a), Value::int(b)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn insertion_assigns_sequential_ids_and_dedups() {
        let mut r = RelationInstance::new(schema());
        let (id0, fresh0) = r.insert(vec![Value::int(0), Value::int(0)]).unwrap();
        let (id1, fresh1) = r.insert(vec![Value::int(0), Value::int(1)]).unwrap();
        let (id2, fresh2) = r.insert(vec![Value::int(0), Value::int(0)]).unwrap();
        assert_eq!((id0, fresh0), (TupleId(0), true));
        assert_eq!((id1, fresh1), (TupleId(1), true));
        assert_eq!((id2, fresh2), (TupleId(0), false));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn invalid_rows_are_rejected() {
        let mut r = RelationInstance::new(schema());
        assert!(r.insert(vec![Value::int(0)]).is_err());
        assert!(r.insert(vec![Value::name("x"), Value::int(0)]).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn tuple_lookup_by_id_and_value() {
        let r = instance(&[(1, 2), (3, 4)]);
        assert_eq!(r.tuple(TupleId(1)).unwrap().get(crate::AttrId(1)), &Value::int(4));
        assert!(r.tuple(TupleId(9)).is_err());
        let t = r.schema().tuple(vec![Value::int(1), Value::int(2)]).unwrap();
        assert_eq!(r.id_of(&t), Some(TupleId(0)));
        assert!(r.contains_tuple(&t));
    }

    #[test]
    fn restriction_keeps_only_selected_tuples() {
        let r = instance(&[(1, 2), (3, 4), (5, 6)]);
        let sub = r.restrict(&TupleSet::from_ids([TupleId(0), TupleId(2)]));
        assert_eq!(sub.len(), 2);
        let kept = r.schema().tuple(vec![Value::int(5), Value::int(6)]).unwrap();
        let dropped = r.schema().tuple(vec![Value::int(3), Value::int(4)]).unwrap();
        assert!(sub.contains_tuple(&kept));
        assert!(!sub.contains_tuple(&dropped));
    }

    #[test]
    fn union_of_instances_is_set_union() {
        let mut r = instance(&[(1, 2)]);
        let s = instance(&[(1, 2), (3, 4)]);
        r.union_with(&s);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn tuple_set_basic_operations() {
        let a = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(70)]);
        let b = TupleSet::from_ids([TupleId(2), TupleId(3)]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(TupleId(70)));
        assert!(!a.contains(TupleId(1)));
        assert_eq!(a.intersection(&b), TupleSet::from_ids([TupleId(2)]));
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.difference(&b), TupleSet::from_ids([TupleId(0), TupleId(70)]));
        assert!(TupleSet::from_ids([TupleId(2)]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_disjoint_from(&TupleSet::from_ids([TupleId(5)])));
    }

    #[test]
    fn tuple_set_full_and_iteration_order() {
        let full = TupleSet::full(5);
        assert_eq!(full.len(), 5);
        let ids: Vec<u32> = full.iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(full.first(), Some(TupleId(0)));
        assert_eq!(TupleSet::new().first(), None);
    }

    #[test]
    fn tuple_set_in_place_operations() {
        let mut a = TupleSet::from_ids([TupleId(1), TupleId(2)]);
        a.union_with(&TupleSet::from_ids([TupleId(100)]));
        assert!(a.contains(TupleId(100)));
        a.remove_all(&TupleSet::from_ids([TupleId(1), TupleId(100)]));
        assert_eq!(a, TupleSet::from_ids([TupleId(2)]));
    }
}
