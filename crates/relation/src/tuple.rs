//! Tuples and stable tuple identities.

use std::fmt;
use std::sync::Arc;

use crate::schema::{AttrId, AttrSet};
use crate::value::Value;

/// Identity of a tuple *within one relation instance*.
///
/// Repairs, conflict graphs and priorities all refer to tuples by their [`TupleId`];
/// the id is stable for the lifetime of the instance (instances are append-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TupleId(pub u32);

impl TupleId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An immutable tuple: an ordered list of attribute values.
///
/// Tuples are cheap to clone (the payload is shared). Construct tuples through
/// [`crate::RelationSchema::tuple`], which validates arity and attribute types.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Wraps raw values into a tuple without schema validation. Prefer
    /// [`crate::RelationSchema::tuple`].
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values: values.into() }
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value of attribute `attr` (the paper's `t.A`).
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// All values, in attribute order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projects the tuple on an attribute set, returning the projected values in
    /// ascending attribute order.
    pub fn project(&self, attrs: &AttrSet) -> Vec<Value> {
        attrs.iter().map(|a| self.values[a.index()].clone()).collect()
    }

    /// Whether two tuples agree on every attribute in `attrs`
    /// (the paper's `⋀_{A∈X} t1.A = t2.A`).
    pub fn agrees_on(&self, other: &Tuple, attrs: &AttrSet) -> bool {
        attrs.iter().all(|a| self.values[a.index()] == other.values[a.index()])
    }

    /// Whether two tuples differ on some attribute in `attrs`
    /// (the paper's `⋁_{B∈Y} t1.B ≠ t2.B`).
    pub fn differs_on(&self, other: &Tuple, attrs: &AttrSet) -> bool {
        !self.agrees_on(other, attrs)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple{self}")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrSet;

    fn t(values: &[Value]) -> Tuple {
        Tuple::new(values.to_vec())
    }

    #[test]
    fn get_returns_attribute_values_in_order() {
        let tuple = t(&["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)]);
        assert_eq!(tuple.get(AttrId(0)), &Value::name("Mary"));
        assert_eq!(tuple.get(AttrId(2)), &Value::int(40));
        assert_eq!(tuple.arity(), 4);
    }

    #[test]
    fn agrees_and_differs_follow_attribute_sets() {
        let a = t(&["Mary".into(), "R&D".into(), Value::int(40)]);
        let b = t(&["John".into(), "R&D".into(), Value::int(10)]);
        let dept = AttrSet::from_ids([AttrId(1)]);
        let name_salary = AttrSet::from_ids([AttrId(0), AttrId(2)]);
        assert!(a.agrees_on(&b, &dept));
        assert!(a.differs_on(&b, &name_salary));
        assert!(!a.differs_on(&b, &dept));
    }

    #[test]
    fn agreement_on_the_empty_set_is_trivially_true() {
        let a = t(&["Mary".into()]);
        let b = t(&["John".into()]);
        assert!(a.agrees_on(&b, &AttrSet::new()));
        assert!(!a.differs_on(&b, &AttrSet::new()));
    }

    #[test]
    fn projection_preserves_attribute_order() {
        let tuple = t(&["Mary".into(), "R&D".into(), Value::int(40)]);
        let attrs = AttrSet::from_ids([AttrId(2), AttrId(0)]);
        assert_eq!(tuple.project(&attrs), vec![Value::name("Mary"), Value::int(40)]);
    }

    #[test]
    fn display_renders_parenthesised_values() {
        let tuple = t(&["Mary".into(), Value::int(40)]);
        assert_eq!(tuple.to_string(), "(Mary, 40)");
    }

    #[test]
    fn tuples_with_equal_values_are_equal() {
        let a = t(&["Mary".into(), Value::int(40)]);
        let b = t(&["Mary".into(), Value::int(40)]);
        assert_eq!(a, b);
    }
}
