//! Relation and database schemas, attribute identifiers and attribute sets.

use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// Index of an attribute within its relation schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrId(pub usize);

impl AttrId {
    /// The position of the attribute inside the schema.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A set of attributes of one relation, stored as a bitset.
///
/// Functional dependencies, attribute closures and projections all operate on attribute
/// sets; a bitset makes the subset / union / intersection operations used by conflict
/// detection cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrSet {
    words: Vec<u64>,
}

impl AttrSet {
    /// The empty attribute set.
    pub fn new() -> Self {
        AttrSet::default()
    }

    /// Builds a set from attribute ids.
    pub fn from_ids<I: IntoIterator<Item = AttrId>>(ids: I) -> Self {
        let mut set = AttrSet::new();
        for id in ids {
            set.insert(id);
        }
        set
    }

    /// Adds an attribute to the set. Returns `true` if it was not already present.
    pub fn insert(&mut self, id: AttrId) -> bool {
        let (word, bit) = (id.0 / 64, id.0 % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let was_absent = self.words[word] & mask == 0;
        self.words[word] |= mask;
        was_absent
    }

    /// Removes an attribute from the set. Returns `true` if it was present.
    pub fn remove(&mut self, id: AttrId) -> bool {
        let (word, bit) = (id.0 / 64, id.0 % 64);
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let was_present = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        was_present
    }

    /// Membership test.
    pub fn contains(&self, id: AttrId) -> bool {
        let (word, bit) = (id.0 / 64, id.0 % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &AttrSet) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Set union.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, slot) in words.iter_mut().enumerate() {
            *slot =
                self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        AttrSet { words }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let mut words = vec![0u64; self.words.len().min(other.words.len())];
        for (i, slot) in words.iter_mut().enumerate() {
            *slot = self.words[i] & other.words[i];
        }
        AttrSet { words }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let mut words = self.words.clone();
        for (i, slot) in words.iter_mut().enumerate() {
            *slot &= !other.words.get(i).copied().unwrap_or(0);
        }
        AttrSet { words }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &AttrSet) {
        *self = self.union(other);
    }

    /// Iterates over the attribute ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.words.iter().enumerate().flat_map(|(word_idx, &word)| {
            (0..64).filter_map(move |bit| {
                if word & (1u64 << bit) != 0 {
                    Some(AttrId(word_idx * 64 + bit))
                } else {
                    None
                }
            })
        })
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        AttrSet::from_ids(iter)
    }
}

/// An attribute declaration: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttributeDef {
    /// Attribute name (unique within its relation).
    pub name: String,
    /// Attribute type.
    pub ty: ValueType,
}

impl AttributeDef {
    /// Creates an attribute declaration.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        AttributeDef { name: name.into(), ty }
    }
}

/// The schema of one relation: a name and an ordered list of typed attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelationSchema {
    name: String,
    attributes: Vec<AttributeDef>,
}

impl RelationSchema {
    /// Creates a schema, rejecting duplicate attribute names.
    pub fn new(
        name: impl Into<String>,
        attributes: Vec<AttributeDef>,
    ) -> Result<Self, RelationError> {
        let name = name.into();
        for (i, attr) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|other| other.name == attr.name) {
                return Err(RelationError::DuplicateAttribute {
                    relation: name,
                    attribute: attr.name.clone(),
                });
            }
        }
        Ok(RelationSchema { name, attributes })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(
        name: impl Into<String>,
        pairs: &[(&str, ValueType)],
    ) -> Result<Self, RelationError> {
        RelationSchema::new(name, pairs.iter().map(|(n, t)| AttributeDef::new(*n, *t)).collect())
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attribute declarations, in order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, RelationError> {
        self.attributes.iter().position(|a| a.name == name).map(AttrId).ok_or_else(|| {
            RelationError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            }
        })
    }

    /// The declaration of attribute `id`.
    pub fn attribute(&self, id: AttrId) -> &AttributeDef {
        &self.attributes[id.0]
    }

    /// Builds an [`AttrSet`] from attribute names.
    pub fn attr_set(&self, names: &[&str]) -> Result<AttrSet, RelationError> {
        names.iter().map(|n| self.attr_id(n)).collect()
    }

    /// The set of all attributes of this relation.
    pub fn all_attrs(&self) -> AttrSet {
        (0..self.arity()).map(AttrId).collect()
    }

    /// Validates a list of values against this schema and wraps it into a [`Tuple`].
    pub fn tuple(&self, values: Vec<Value>) -> Result<Tuple, RelationError> {
        if values.len() != self.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                actual: values.len(),
            });
        }
        for (attr, value) in self.attributes.iter().zip(&values) {
            if attr.ty != value.value_type() {
                return Err(RelationError::TypeMismatch {
                    relation: self.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty,
                    actual: value.value_type(),
                });
            }
        }
        Ok(Tuple::new(values))
    }

    /// Renders the attribute names of an attribute set (used by error messages and docs).
    pub fn render_attr_set(&self, set: &AttrSet) -> String {
        let names: Vec<&str> = set.iter().map(|id| self.attribute(id).name.as_str()).collect();
        names.join(" ")
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, attr) in self.attributes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", attr.name, attr.ty)?;
        }
        f.write_str(")")
    }
}

/// A database schema: a collection of relation schemas with unique names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    relations: Vec<Arc<RelationSchema>>,
}

impl DatabaseSchema {
    /// Creates an empty database schema.
    pub fn new() -> Self {
        DatabaseSchema::default()
    }

    /// Adds a relation schema, rejecting duplicate relation names.
    pub fn add_relation(
        &mut self,
        schema: RelationSchema,
    ) -> Result<Arc<RelationSchema>, RelationError> {
        if self.relations.iter().any(|r| r.name() == schema.name()) {
            return Err(RelationError::DuplicateRelation { relation: schema.name().to_string() });
        }
        let arc = Arc::new(schema);
        self.relations.push(Arc::clone(&arc));
        Ok(arc)
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&Arc<RelationSchema>, RelationError> {
        self.relations
            .iter()
            .find(|r| r.name() == name)
            .ok_or_else(|| RelationError::UnknownRelation { relation: name.to_string() })
    }

    /// All relation schemas, in declaration order.
    pub fn relations(&self) -> &[Arc<RelationSchema>] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr_schema() -> RelationSchema {
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn attr_lookup_by_name() {
        let schema = mgr_schema();
        assert_eq!(schema.attr_id("Dept").unwrap(), AttrId(1));
        assert!(schema.attr_id("Missing").is_err());
    }

    #[test]
    fn duplicate_attribute_is_rejected() {
        let err = RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("A", ValueType::Name)])
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn tuple_construction_checks_arity_and_types() {
        let schema = mgr_schema();
        assert!(schema
            .tuple(vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)])
            .is_ok());
        assert!(matches!(
            schema.tuple(vec!["Mary".into()]).unwrap_err(),
            RelationError::ArityMismatch { .. }
        ));
        assert!(matches!(
            schema
                .tuple(vec!["Mary".into(), "R&D".into(), "oops".into(), Value::int(3)])
                .unwrap_err(),
            RelationError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn attr_set_operations() {
        let schema = mgr_schema();
        let key = schema.attr_set(&["Name"]).unwrap();
        let rest = schema.attr_set(&["Dept", "Salary", "Reports"]).unwrap();
        let all = schema.all_attrs();
        assert!(key.is_subset_of(&all));
        assert!(rest.is_subset_of(&all));
        assert_eq!(key.union(&rest), all);
        assert!(key.intersection(&rest).is_empty());
        assert_eq!(all.difference(&rest), key);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn attr_set_iteration_is_sorted() {
        let set = AttrSet::from_ids([AttrId(70), AttrId(3), AttrId(0)]);
        let ids: Vec<usize> = set.iter().map(|a| a.index()).collect();
        assert_eq!(ids, vec![0, 3, 70]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(AttrId(70)));
        assert!(!set.contains(AttrId(64)));
    }

    #[test]
    fn attr_set_insert_and_remove_report_change() {
        let mut set = AttrSet::new();
        assert!(set.insert(AttrId(5)));
        assert!(!set.insert(AttrId(5)));
        assert!(set.remove(AttrId(5)));
        assert!(!set.remove(AttrId(5)));
        assert!(set.is_empty());
    }

    #[test]
    fn database_schema_rejects_duplicate_relations() {
        let mut db = DatabaseSchema::new();
        db.add_relation(mgr_schema()).unwrap();
        assert!(matches!(
            db.add_relation(mgr_schema()).unwrap_err(),
            RelationError::DuplicateRelation { .. }
        ));
        assert!(db.relation("Mgr").is_ok());
        assert!(db.relation("Nope").is_err());
    }

    #[test]
    fn schema_display_lists_attributes() {
        assert_eq!(
            mgr_schema().to_string(),
            "Mgr(Name: name, Dept: name, Salary: int, Reports: int)"
        );
    }
}
