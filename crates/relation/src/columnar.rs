//! Columnar projection of a relation instance.
//!
//! A [`ColumnarView`] stores one dense `Vec<Value>` per attribute, indexed by
//! [`TupleId`](crate::TupleId) — the transpose of the row-major tuple storage of
//! [`RelationInstance`]. Vectorized query evaluation scans these column slices
//! (constant filters, comparisons, duplicate-variable equality) and gathers answer
//! rows from them without materialising per-row environments.
//!
//! Views are derived, immutable data: build one per instance (snapshots build one per
//! swap and share it across derived snapshots whose instance is unchanged) and hand
//! out `&[Value]` slices per attribute.

use crate::relation::RelationInstance;
use crate::value::Value;

/// Dense per-attribute columns of one relation instance.
///
/// Column `a` holds the value of attribute `a` for every tuple, indexed by tuple id;
/// all columns have the same length (the number of tuples in the instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarView {
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl ColumnarView {
    /// Transposes `instance` into per-attribute columns (`O(rows × arity)` value
    /// clones; values are cheap to clone — interned names or integers).
    pub fn build(instance: &RelationInstance) -> Self {
        let arity = instance.schema().arity();
        let rows = instance.len();
        let mut columns: Vec<Vec<Value>> = (0..arity).map(|_| Vec::with_capacity(rows)).collect();
        for (_, tuple) in instance.iter() {
            for (column, value) in columns.iter_mut().zip(tuple.values()) {
                column.push(value.clone());
            }
        }
        ColumnarView { columns, rows }
    }

    /// Number of rows (tuples) each column covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the relation's arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The dense column of attribute `attr`, indexed by tuple id.
    ///
    /// # Panics
    /// If `attr >= self.arity()`.
    pub fn column(&self, attr: usize) -> &[Value] {
        &self.columns[attr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::ValueType;
    use std::sync::Arc;

    #[test]
    fn build_transposes_rows_into_columns() {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Name), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            schema,
            vec![
                vec![Value::name("x"), Value::int(1)],
                vec![Value::name("y"), Value::int(2)],
                vec![Value::name("x"), Value::int(3)],
            ],
        )
        .unwrap();
        let view = ColumnarView::build(&instance);
        assert_eq!(view.rows(), 3);
        assert_eq!(view.arity(), 2);
        assert_eq!(view.column(0), &[Value::name("x"), Value::name("y"), Value::name("x")]);
        assert_eq!(view.column(1), &[Value::int(1), Value::int(2), Value::int(3)]);
    }

    #[test]
    fn empty_instances_yield_empty_columns() {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let view = ColumnarView::build(&RelationInstance::new(schema));
        assert_eq!(view.rows(), 0);
        assert_eq!(view.arity(), 2);
        assert!(view.column(0).is_empty());
    }
}
