//! Interned uninterpreted names (the paper's domain `D`).
//!
//! The paper assumes a domain of *uninterpreted names* where constants with different
//! spellings are different and only `=` / `≠` are meaningful. [`Name`] implements that
//! domain. Names are interned in a process-wide table so that cloning a name and testing
//! two names for equality are cheap (pointer-sized copy and pointer comparison in the
//! common case), which matters because conflict detection compares attribute values for
//! every candidate tuple pair.

use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide interner. A `Mutex<HashSet>` is entirely sufficient here: interning only
/// happens when values are constructed (loading or generating data), never on the hot
/// comparison paths.
fn interner() -> &'static Mutex<HashSet<Arc<str>>> {
    static INTERNER: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(HashSet::new()))
}

/// An interned, uninterpreted constant from the name domain `D`.
///
/// Two names are equal exactly when their spellings are equal. Names are ordered
/// lexicographically, which gives instances a deterministic rendering order; the query
/// semantics never applies `<` / `>` to names (see `Value::try_cmp`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(Arc<str>);

impl Name {
    /// Interns `text` and returns the canonical [`Name`] for it.
    pub fn new(text: &str) -> Self {
        let mut table = interner().lock().expect("name interner poisoned");
        if let Some(existing) = table.get(text) {
            return Name(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(text);
        table.insert(Arc::clone(&arc));
        Name(arc)
    }

    /// Returns the spelling of the name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", self.as_str())
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Name {
    fn from(text: &str) -> Self {
        Name::new(text)
    }
}

impl From<String> for Name {
    fn from(text: String) -> Self {
        Name::new(&text)
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Name {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Name {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        Ok(Name::new(&text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_spellings_intern_to_the_same_allocation() {
        let a = Name::new("Mary");
        let b = Name::new("Mary");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn different_spellings_are_different_names() {
        assert_ne!(Name::new("Mary"), Name::new("John"));
    }

    #[test]
    fn names_are_ordered_lexicographically() {
        assert!(Name::new("IT") < Name::new("R&D"));
    }

    #[test]
    fn display_is_the_raw_spelling() {
        assert_eq!(Name::new("R&D").to_string(), "R&D");
    }

    #[test]
    fn conversion_from_string_types() {
        let a: Name = "PR".into();
        let b: Name = String::from("PR").into();
        assert_eq!(a, b);
    }
}
