//! A blocking client for the `pdqi` wire protocol.
//!
//! [`Client`] is deliberately thin: one request frame out, one response frame in, plus
//! typed helpers that parse the response head. The CLI's `connect` subcommand and the
//! serving tests and benches all drive servers through it.

use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use pdqi_core::FamilyKind;

use crate::protocol::{read_frame, write_frame, ExecMode, ExecSpec, FrameError, Request};

/// Errors raised by client calls.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing failed.
    Frame(FrameError),
    /// The server answered `ERR …`.
    Server(String),
    /// The server answered `OK` but the response body did not have the promised shape.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Malformed(message) => write!(f, "malformed response: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// The result of one `EXEC` (or one entry of a `BATCH`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Open-query rows: column headers plus tab-split rows, sorted and de-duplicated.
    Rows {
        /// The column headers (the query's free variables).
        columns: Vec<String>,
        /// The answer rows, one `Vec<String>` per row.
        rows: Vec<Vec<String>>,
    },
    /// Closed-query verdict (`true`, `false` or `undetermined`).
    Outcome {
        /// The rendered verdict.
        verdict: String,
        /// Preferred repairs the server examined (0 for the polynomial fast path).
        examined: u64,
    },
    /// This batch entry failed (other entries may still have succeeded).
    Error(String),
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a `pdqi` server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    /// Sends one raw payload and returns the raw response payload. `ERR` responses are
    /// returned verbatim, not turned into [`ClientError::Server`] — this is the escape
    /// hatch scripted sessions (`pdqi connect`) use.
    pub fn request_raw(&mut self, payload: &str) -> Result<String, ClientError> {
        write_frame(&mut self.writer, payload)?;
        Ok(read_frame(&mut self.reader)?)
    }

    /// Sends a typed request; `ERR` responses become [`ClientError::Server`].
    fn request(&mut self, request: &Request) -> Result<String, ClientError> {
        let response = self.request_raw(&request.render())?;
        match response.strip_prefix("ERR ") {
            Some(message) => Err(ClientError::Server(message.to_string())),
            None => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Parses and stores `query` under `id` on the server.
    pub fn prepare(&mut self, id: &str, query: &str) -> Result<(), ClientError> {
        self.request(&Request::Prepare { id: id.to_string(), query: query.to_string() }).map(|_| ())
    }

    /// Executes a prepared query; returns the outcome and the snapshot generation the
    /// server answered against.
    pub fn exec(
        &mut self,
        id: &str,
        family: FamilyKind,
        mode: ExecMode,
    ) -> Result<(ExecOutcome, u64), ClientError> {
        let spec = ExecSpec { id: id.to_string(), family, mode };
        let response = self.request(&Request::Exec(spec))?;
        // split('\n'), not lines(): a zero-column answer row renders as an empty line,
        // which lines() would silently drop at the end of the payload.
        let mut lines = response.split('\n');
        let head = lines.next().unwrap_or("");
        let head = head.strip_prefix("OK ").unwrap_or(head);
        let generation = parse_tagged(head, "gen")?;
        let outcome = parse_block(head, &mut lines)?;
        Ok((outcome, generation))
    }

    /// Executes several prepared queries against one pinned snapshot; outcomes come
    /// back in request order, all answered at the returned generation.
    pub fn batch(&mut self, specs: Vec<ExecSpec>) -> Result<(Vec<ExecOutcome>, u64), ClientError> {
        let expected = specs.len();
        let response = self.request(&Request::Batch(specs))?;
        let mut lines = response.split('\n');
        let head = lines.next().unwrap_or("");
        let generation = parse_tagged(head, "gen")?;
        let mut outcomes = Vec::with_capacity(expected);
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            outcomes.push(parse_block(line, &mut lines)?);
        }
        if outcomes.len() != expected {
            return Err(ClientError::Malformed(format!(
                "expected {expected} batch responses, got {}",
                outcomes.len()
            )));
        }
        Ok((outcomes, generation))
    }

    /// Inserts rows into `table` over the wire. The server types the raw fields
    /// against the served schema and publishes a **delta-derived** snapshot (affected
    /// conflict components only — no rebuild). Returns how many rows were genuinely
    /// inserted (duplicates collapse under set semantics) and the new generation.
    pub fn insert(
        &mut self,
        table: &str,
        rows: &[Vec<String>],
    ) -> Result<(usize, u64), ClientError> {
        self.mutate(Request::Insert { table: table.to_string(), rows: rows.to_vec() }, "inserted")
    }

    /// Deletes rows (by value) from `table` over the wire; absent rows are no-ops.
    /// Returns how many tuples were genuinely removed and the new generation.
    pub fn delete(
        &mut self,
        table: &str,
        rows: &[Vec<String>],
    ) -> Result<(usize, u64), ClientError> {
        self.mutate(Request::Delete { table: table.to_string(), rows: rows.to_vec() }, "deleted")
    }

    fn mutate(&mut self, request: Request, verb: &str) -> Result<(usize, u64), ClientError> {
        let response = self.request(&request)?;
        let head = response.lines().next().unwrap_or("");
        let generation = parse_tagged(head, "gen")?;
        let count = head
            .split_whitespace()
            .skip_while(|token| *token != verb)
            .nth(1)
            .and_then(|token| token.parse().ok())
            .ok_or_else(|| ClientError::Malformed(format!("no `{verb} <n>` in `{head}`")))?;
        Ok((count, generation))
    }

    /// Replaces `table`'s priority with explicit `winner ≻ loser` tuple-id pairs and
    /// swaps the revised snapshot in; returns the new generation.
    pub fn set_priority(&mut self, table: &str, pairs: &[(u32, u32)]) -> Result<u64, ClientError> {
        let response = self
            .request(&Request::SetPriority { table: table.to_string(), pairs: pairs.to_vec() })?;
        parse_tagged(response.lines().next().unwrap_or(""), "gen")
    }

    /// The server's raw `STATS` response.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.request(&Request::Stats)
    }

    /// Asks the server to stop (the server answers, then shuts down).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Extracts `tag=<u64>` from a response head line.
fn parse_tagged(line: &str, tag: &str) -> Result<u64, ClientError> {
    let prefix = format!("{tag}=");
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&prefix))
        .and_then(|text| text.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("no `{tag}=` in `{line}`")))
}

/// Parses one response block: `rows <n>` (consuming a header and `n` row lines from
/// `lines`), `outcome <verdict> examined=<k>`, or `error <message>`.
fn parse_block<'a>(
    head: &str,
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<ExecOutcome, ClientError> {
    let mut tokens = head.split_whitespace();
    match tokens.next() {
        Some("rows") => {
            let count: usize = tokens
                .next()
                .and_then(|text| text.parse().ok())
                .ok_or_else(|| ClientError::Malformed(format!("bad rows head `{head}`")))?;
            let header = lines
                .next()
                .ok_or_else(|| ClientError::Malformed("missing column header".to_string()))?;
            let columns: Vec<String> = if header.is_empty() {
                Vec::new()
            } else {
                header.split('\t').map(str::to_string).collect()
            };
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                let line = lines
                    .next()
                    .ok_or_else(|| ClientError::Malformed("missing answer row".to_string()))?;
                // A closed query executed under row semantics yields zero-column rows,
                // which render as empty lines — not as one empty value. Non-empty
                // fields are unescaped (the server escapes embedded tabs/newlines).
                let row: Vec<String> = if columns.is_empty() && line.is_empty() {
                    Vec::new()
                } else {
                    line.split('\t').map(crate::protocol::unescape_field).collect()
                };
                rows.push(row);
            }
            Ok(ExecOutcome::Rows { columns, rows })
        }
        Some("outcome") => {
            let verdict = tokens
                .next()
                .ok_or_else(|| ClientError::Malformed(format!("bad outcome head `{head}`")))?
                .to_string();
            let examined = parse_tagged(head, "examined")?;
            Ok(ExecOutcome::Outcome { verdict, examined })
        }
        Some("error") => {
            let message = head.strip_prefix("error ").unwrap_or(head).to_string();
            Ok(ExecOutcome::Error(message))
        }
        _ => Err(ClientError::Malformed(format!("unrecognised response block `{head}`"))),
    }
}
