//! A blocking client for the `pdqi` wire protocol.
//!
//! [`Client`] is deliberately thin: one request frame out, one response frame in, plus
//! typed helpers that parse the response head. The CLI's `connect` subcommand and the
//! serving tests and benches all drive servers through it.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Read as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use pdqi_core::{FamilyKind, Semantics};
use pdqi_relation::ValueType;

use crate::protocol::{
    read_frame, write_frame, ExecMode, ExecSpec, FrameError, ReportSpec, Request, MAX_FRAME_BYTES,
};

/// How often a mid-frame deadline read re-polls the socket.
const PUSH_POLL: Duration = Duration::from_millis(50);

/// Errors raised by client calls.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing failed.
    Frame(FrameError),
    /// The server answered `ERR …`.
    Server(String),
    /// The server answered `OK` but the response body did not have the promised shape.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
            ClientError::Malformed(message) => write!(f, "malformed response: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// The result of one `EXEC` (or one entry of a `BATCH`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome {
    /// Open-query rows: column headers plus tab-split rows, sorted and de-duplicated.
    Rows {
        /// The column headers (the query's free variables).
        columns: Vec<String>,
        /// The answer rows, one `Vec<String>` per row.
        rows: Vec<Vec<String>>,
    },
    /// Closed-query verdict (`true`, `false` or `undetermined`).
    Outcome {
        /// The rendered verdict.
        verdict: String,
        /// Preferred repairs the server examined (0 for the polynomial fast path).
        examined: u64,
    },
    /// Closed-query profile: the repair-product size and the first true/false
    /// positions within it (`PROFILE` mode — the scatter-gather merge input).
    Profile {
        /// The size of the product of per-component preferred repairs.
        total: u128,
        /// Position of the first repair satisfying the query, if any.
        first_true: Option<u128>,
        /// Position of the first repair falsifying the query, if any.
        first_false: Option<u128>,
    },
    /// This batch entry failed (other entries may still have succeeded).
    Error(String),
}

/// The server's answer to a `DESCRIBE`: the served table's shape at one generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDescription {
    /// The described table.
    pub table: String,
    /// Its current row count.
    pub rows: usize,
    /// The snapshot generation the description was taken at.
    pub generation: u64,
    /// Column names and types, in schema order.
    pub columns: Vec<(String, ValueType)>,
}

/// One pushed subscription frame, parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushEvent {
    /// An incremental answer change for one subscription.
    Delta {
        /// The subscription the delta belongs to.
        sub: u64,
        /// The snapshot generation the delta carries the answer to.
        generation: u64,
        /// Rows that entered the answer, tab-split and unescaped.
        added: Vec<Vec<String>>,
        /// Rows that left the answer.
        removed: Vec<Vec<String>>,
    },
    /// The subscriber fell behind and the server resynced it with a full answer.
    Lagged {
        /// The subscription that lagged.
        sub: u64,
        /// The generation of the full answer below.
        generation: u64,
        /// The complete current answer rows.
        rows: Vec<Vec<String>>,
    },
}

/// The server's answer to a successful `SUBSCRIBE`: the subscription id plus the full
/// initial answer every later [`PushEvent::Delta`] is relative to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeReply {
    /// The subscription id (`UNSUBSCRIBE` takes it; pushed frames carry it).
    pub sub: u64,
    /// The generation the initial answer was computed at.
    pub generation: u64,
    /// The column headers (the query's free variables).
    pub columns: Vec<String>,
    /// The initial answer rows.
    pub rows: Vec<Vec<String>>,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Pushed `DELTA `/`LAGGED ` frames that arrived interleaved with a response;
    /// drained by [`Client::try_event`] / [`Client::wait_event`] before the socket is.
    pending: VecDeque<String>,
}

impl Client {
    /// Connects to a `pdqi` server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream), pending: VecDeque::new() })
    }

    /// Sends one raw payload and returns the raw response payload. `ERR` responses are
    /// returned verbatim, not turned into [`ClientError::Server`] — this is the escape
    /// hatch scripted sessions (`pdqi connect`) use.
    ///
    /// Pushed subscription frames that arrive before the response are buffered for
    /// [`Client::try_event`] / [`Client::wait_event`], never returned from here.
    pub fn request_raw(&mut self, payload: &str) -> Result<String, ClientError> {
        write_frame(&mut self.writer, payload)?;
        loop {
            let response = read_frame(&mut self.reader)?;
            if response.starts_with("DELTA ") || response.starts_with("LAGGED ") {
                self.pending.push_back(response);
                continue;
            }
            return Ok(response);
        }
    }

    /// Sends a typed request; `ERR` responses become [`ClientError::Server`].
    fn request(&mut self, request: &Request) -> Result<String, ClientError> {
        let response = self.request_raw(&request.render())?;
        match response.strip_prefix("ERR ") {
            Some(message) => Err(ClientError::Server(message.to_string())),
            None => Ok(response),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Parses and stores `query` under `id` on the server.
    pub fn prepare(&mut self, id: &str, query: &str) -> Result<(), ClientError> {
        self.request(&Request::Prepare { id: id.to_string(), query: query.to_string() }).map(|_| ())
    }

    /// Executes a prepared query; returns the outcome and the snapshot generation the
    /// server answered against.
    pub fn exec(
        &mut self,
        id: &str,
        family: FamilyKind,
        mode: ExecMode,
    ) -> Result<(ExecOutcome, u64), ClientError> {
        let spec = ExecSpec { id: id.to_string(), family, mode };
        let response = self.request(&Request::Exec(spec))?;
        // split('\n'), not lines(): a zero-column answer row renders as an empty line,
        // which lines() would silently drop at the end of the payload.
        let mut lines = response.split('\n');
        let head = lines.next().unwrap_or("");
        let head = head.strip_prefix("OK ").unwrap_or(head);
        let generation = parse_tagged(head, "gen")?;
        let outcome = parse_block(head, &mut lines)?;
        Ok((outcome, generation))
    }

    /// Executes several prepared queries against one pinned snapshot; outcomes come
    /// back in request order, all answered at the returned generation.
    pub fn batch(&mut self, specs: Vec<ExecSpec>) -> Result<(Vec<ExecOutcome>, u64), ClientError> {
        let expected = specs.len();
        let response = self.request(&Request::Batch(specs))?;
        let mut lines = response.split('\n');
        let head = lines.next().unwrap_or("");
        let generation = parse_tagged(head, "gen")?;
        let mut outcomes = Vec::with_capacity(expected);
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            outcomes.push(parse_block(line, &mut lines)?);
        }
        if outcomes.len() != expected {
            return Err(ClientError::Malformed(format!(
                "expected {expected} batch responses, got {}",
                outcomes.len()
            )));
        }
        Ok((outcomes, generation))
    }

    /// Fetches the costed physical plan the server's planner picks for a prepared
    /// query — the deterministic plan tree (estimated cardinalities, join order,
    /// per-component strategies, eval path) followed by the post-execution actuals —
    /// plus the generation of the snapshot it was planned against.
    pub fn explain(
        &mut self,
        id: &str,
        family: FamilyKind,
        semantics: Semantics,
    ) -> Result<(String, u64), ClientError> {
        let response = self.request(&Request::Explain { id: id.to_string(), family, semantics })?;
        let (head, report) = response
            .split_once('\n')
            .ok_or_else(|| ClientError::Malformed(format!("no plan body in `{response}`")))?;
        let generation = parse_tagged(head, "gen")?;
        Ok((report.to_string(), generation))
    }

    /// Inserts rows into `table` over the wire. The server types the raw fields
    /// against the served schema and publishes a **delta-derived** snapshot (affected
    /// conflict components only — no rebuild). Returns how many rows were genuinely
    /// inserted (duplicates collapse under set semantics) and the new generation.
    pub fn insert(
        &mut self,
        table: &str,
        rows: &[Vec<String>],
    ) -> Result<(usize, u64), ClientError> {
        self.mutation_request(
            Request::Insert { table: table.to_string(), rows: rows.to_vec() },
            "inserted",
        )
    }

    /// Deletes rows (by value) from `table` over the wire; absent rows are no-ops.
    /// Returns how many tuples were genuinely removed and the new generation.
    pub fn delete(
        &mut self,
        table: &str,
        rows: &[Vec<String>],
    ) -> Result<(usize, u64), ClientError> {
        self.mutation_request(
            Request::Delete { table: table.to_string(), rows: rows.to_vec() },
            "deleted",
        )
    }

    /// Applies one mixed batch of inserts and deletes to `table` as a **single**
    /// generation swap (one delta derivation, one subscription delta). Returns
    /// `(inserted, deleted, generation)`.
    pub fn mutate(
        &mut self,
        table: &str,
        inserts: &[Vec<String>],
        deletes: &[Vec<String>],
    ) -> Result<(usize, usize, u64), ClientError> {
        let response = self.request(&Request::Mutate {
            table: table.to_string(),
            inserts: inserts.to_vec(),
            deletes: deletes.to_vec(),
        })?;
        let head = response.lines().next().unwrap_or("");
        Ok((counted(head, "inserted")?, counted(head, "deleted")?, parse_tagged(head, "gen")?))
    }

    fn mutation_request(
        &mut self,
        request: Request,
        verb: &str,
    ) -> Result<(usize, u64), ClientError> {
        let response = self.request(&request)?;
        let head = response.lines().next().unwrap_or("");
        Ok((counted(head, verb)?, parse_tagged(head, "gen")?))
    }

    /// Registers a continuous query on the prepared query `id` and switches the
    /// connection into push mode: subsequent swaps of the query's table arrive as
    /// [`PushEvent`]s through [`Client::try_event`] / [`Client::wait_event`] /
    /// [`Client::events`].
    pub fn subscribe(
        &mut self,
        id: &str,
        family: FamilyKind,
        semantics: Semantics,
    ) -> Result<SubscribeReply, ClientError> {
        self.subscribe_with(id, family, semantics, ReportSpec::default(), None)
    }

    /// [`Client::subscribe`] with an explicit report strategy and queue bound: `report`
    /// maps to the wire's `EVERY n` / `WINDOW n` / `COALESCE ms` clause and `queue`
    /// to `QUEUE n` (a per-subscription override of the server's push-queue capacity).
    pub fn subscribe_with(
        &mut self,
        id: &str,
        family: FamilyKind,
        semantics: Semantics,
        report: ReportSpec,
        queue: Option<usize>,
    ) -> Result<SubscribeReply, ClientError> {
        let response = self.request(&Request::Subscribe {
            id: id.to_string(),
            family,
            semantics,
            report,
            queue,
        })?;
        let mut lines = response.split('\n');
        let head = lines.next().unwrap_or("");
        let sub = parse_tagged(head, "sub")?;
        let generation = parse_tagged(head, "gen")?;
        let rows_head = head
            .find("rows ")
            .map(|at| &head[at..])
            .ok_or_else(|| ClientError::Malformed(format!("no `rows <n>` in `{head}`")))?;
        match parse_block(rows_head, &mut lines)? {
            ExecOutcome::Rows { columns, rows } => {
                Ok(SubscribeReply { sub, generation, columns, rows })
            }
            other => Err(ClientError::Malformed(format!("unexpected subscribe body {other:?}"))),
        }
    }

    /// Drops a subscription registered on this connection.
    pub fn unsubscribe(&mut self, sub: u64) -> Result<(), ClientError> {
        self.request(&Request::Unsubscribe { sub }).map(|_| ())
    }

    /// Returns one pushed event if one is already buffered or immediately readable;
    /// never blocks longer than one short poll.
    pub fn try_event(&mut self) -> Result<Option<PushEvent>, ClientError> {
        self.wait_event(Duration::from_millis(1))
    }

    /// Waits up to `timeout` for one pushed event. The timeout only gates the wait for
    /// the **first** byte: once a frame starts arriving the read patiently finishes it
    /// (a half-read frame would desynchronise the stream). Returns `Ok(None)` on
    /// timeout; the socket is back in blocking mode either way.
    pub fn wait_event(&mut self, timeout: Duration) -> Result<Option<PushEvent>, ClientError> {
        if let Some(payload) = self.pending.pop_front() {
            return parse_push(&payload).map(Some);
        }
        let deadline = Instant::now() + timeout;
        let result = self.read_frame_deadline(deadline);
        self.reader.get_ref().set_read_timeout(None).ok();
        match result? {
            None => Ok(None),
            Some(payload) if payload.starts_with("DELTA ") || payload.starts_with("LAGGED ") => {
                parse_push(&payload).map(Some)
            }
            Some(payload) => {
                let head = payload.lines().next().unwrap_or("");
                Err(ClientError::Malformed(format!("unexpected non-push frame `{head}`")))
            }
        }
    }

    /// A blocking iterator over pushed events; ends when the server closes the
    /// connection, yields one final `Err` on any other failure.
    pub fn events(&mut self) -> Events<'_> {
        Events { client: self, done: false }
    }

    /// Reads one frame, giving up (→ `None`) only if no byte arrives by `deadline`.
    fn read_frame_deadline(&mut self, deadline: Instant) -> Result<Option<String>, FrameError> {
        let mut len_bytes = [0u8; 4];
        if !self.read_exact_deadline(&mut len_bytes, deadline, false)? {
            return Ok(None);
        }
        let announced = u32::from_be_bytes(len_bytes) as usize;
        if announced > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge { announced });
        }
        let mut payload = vec![0u8; announced];
        self.read_exact_deadline(&mut payload, deadline, true)?;
        String::from_utf8(payload).map(Some).map_err(|_| FrameError::NotUtf8)
    }

    /// Fills `buf` with short timed reads. With `committed` false the deadline may
    /// expire *before the first byte* (→ `Ok(false)`); after any byte — or when the
    /// caller is already mid-frame — the read commits and polls until the frame's
    /// bytes arrive.
    fn read_exact_deadline(
        &mut self,
        buf: &mut [u8],
        deadline: Instant,
        mut committed: bool,
    ) -> Result<bool, FrameError> {
        let mut filled = 0;
        while filled < buf.len() {
            let now = Instant::now();
            if !committed && now >= deadline {
                return Ok(false);
            }
            let wait = if committed {
                PUSH_POLL
            } else {
                deadline.saturating_duration_since(now).min(PUSH_POLL)
            };
            self.reader.get_ref().set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(if filled == 0 && !committed {
                        FrameError::Closed
                    } else {
                        FrameError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    });
                }
                Ok(n) => {
                    filled += n;
                    committed = true;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(true)
    }

    /// Replaces `table`'s priority with explicit `winner ≻ loser` tuple-id pairs and
    /// swaps the revised snapshot in; returns the new generation.
    pub fn set_priority(&mut self, table: &str, pairs: &[(u32, u32)]) -> Result<u64, ClientError> {
        let response = self
            .request(&Request::SetPriority { table: table.to_string(), pairs: pairs.to_vec() })?;
        parse_tagged(response.lines().next().unwrap_or(""), "gen")
    }

    /// Adds one functional dependency (`"lhs attrs -> rhs attrs"`, parsed against the
    /// served schema) to `table` and swaps in the delta-derived snapshot — new
    /// conflict edges are scanned only inside the FD's left-hand-side groups, never by
    /// re-pairing the whole relation. Returns the new generation.
    pub fn alter(&mut self, table: &str, fd: &str) -> Result<u64, ClientError> {
        let response =
            self.request(&Request::Alter { table: table.to_string(), fd: fd.to_string() })?;
        parse_tagged(response.lines().next().unwrap_or(""), "gen")
    }

    /// Fetches the closed-query profile of a prepared query: the repair-product size
    /// and the first true/false positions — what a coordinator merges across shards.
    pub fn profile(
        &mut self,
        id: &str,
        family: FamilyKind,
    ) -> Result<(ExecOutcome, u64), ClientError> {
        self.exec(id, family, ExecMode::Profile)
    }

    /// Describes a served table: row count, generation, column names and types.
    pub fn describe(&mut self, table: &str) -> Result<TableDescription, ClientError> {
        let response = self.request(&Request::Describe { table: table.to_string() })?;
        let mut lines = response.split('\n');
        let head = lines.next().unwrap_or("");
        // `OK describe <table> rows=<n> gen=<g>`: the table is the token after the verb.
        let table = head
            .split_whitespace()
            .skip_while(|token| *token != "describe")
            .nth(1)
            .ok_or_else(|| ClientError::Malformed(format!("no table in `{head}`")))?
            .to_string();
        let rows = usize::try_from(parse_tagged(head, "rows")?).unwrap_or(usize::MAX);
        let generation = parse_tagged(head, "gen")?;
        let mut columns = Vec::new();
        for line in lines {
            let Some((name, ty)) = line.split_once('\t') else {
                return Err(ClientError::Malformed(format!("bad column line `{line}`")));
            };
            let ty = match ty {
                "INT" => ValueType::Int,
                "NAME" => ValueType::Name,
                other => {
                    return Err(ClientError::Malformed(format!("unknown column type `{other}`")))
                }
            };
            columns.push((crate::protocol::unescape_field(name), ty));
        }
        Ok(TableDescription { table, rows, generation, columns })
    }

    /// The server's raw `STATS` response.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        self.request(&Request::Stats)
    }

    /// The server's write-coalescing counters, parsed from the `writes …` line of
    /// `STATS`: accepted frames, committed batches, frames that shared a batch with
    /// at least one other (`coalesced_writes`) and the derivations those shared
    /// batches saved.
    pub fn write_stats(&mut self) -> Result<pdqi_core::WriteStats, ClientError> {
        let stats = self.stats()?;
        let line = stats
            .lines()
            .find(|line| line.starts_with("writes "))
            .ok_or_else(|| ClientError::Malformed("no `writes` line in STATS".to_string()))?;
        Ok(pdqi_core::WriteStats {
            frames: parse_tagged(line, "frames")?,
            batches: parse_tagged(line, "batches")?,
            coalesced_writes: parse_tagged(line, "coalesced_writes")?,
            derivations_saved: parse_tagged(line, "derivations_saved")?,
        })
    }

    /// Asks the server to stop (the server answers, then shuts down).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Blocking push-event iterator returned by [`Client::events`].
pub struct Events<'a> {
    client: &'a mut Client,
    done: bool,
}

impl Iterator for Events<'_> {
    type Item = Result<PushEvent, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            match self.client.wait_event(Duration::from_secs(3600)) {
                Ok(Some(event)) => return Some(Ok(event)),
                Ok(None) => {}
                Err(ClientError::Frame(FrameError::Closed)) => {
                    self.done = true;
                    return None;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Extracts `<verb> <count>` from a mutation response head.
fn counted(head: &str, verb: &str) -> Result<usize, ClientError> {
    head.split_whitespace()
        .skip_while(|token| *token != verb)
        .nth(1)
        .and_then(|token| token.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("no `{verb} <n>` in `{head}`")))
}

/// Parses one pushed `DELTA `/`LAGGED ` frame into a [`PushEvent`].
fn parse_push(payload: &str) -> Result<PushEvent, ClientError> {
    let mut lines = payload.split('\n');
    let head = lines.next().unwrap_or("");
    if head.starts_with("DELTA ") {
        let sub = parse_tagged(head, "sub")?;
        let generation = parse_tagged(head, "gen")?;
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for line in lines {
            // `+\ta\tb` → op `+`, fields `[a, b]`; a bare op line is a zero-column row.
            let (op, fields) = match line.split_once('\t') {
                Some((op, rest)) => {
                    (op, rest.split('\t').map(crate::protocol::unescape_field).collect())
                }
                None => (line, Vec::new()),
            };
            match op {
                "+" => added.push(fields),
                "-" => removed.push(fields),
                _ => return Err(ClientError::Malformed(format!("bad delta row `{line}`"))),
            }
        }
        Ok(PushEvent::Delta { sub, generation, added, removed })
    } else if head.starts_with("LAGGED ") {
        let sub = parse_tagged(head, "sub")?;
        let generation = parse_tagged(head, "gen")?;
        let rows = lines
            .map(|line| {
                if line.is_empty() {
                    Vec::new()
                } else {
                    line.split('\t').map(crate::protocol::unescape_field).collect()
                }
            })
            .collect();
        Ok(PushEvent::Lagged { sub, generation, rows })
    } else {
        Err(ClientError::Malformed(format!("not a push frame `{head}`")))
    }
}

/// Extracts `tag=<u64>` from a response head line.
fn parse_tagged(line: &str, tag: &str) -> Result<u64, ClientError> {
    let prefix = format!("{tag}=");
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&prefix))
        .and_then(|text| text.parse().ok())
        .ok_or_else(|| ClientError::Malformed(format!("no `{tag}=` in `{line}`")))
}

/// Parses one response block: `rows <n>` (consuming a header and `n` row lines from
/// `lines`), `outcome <verdict> examined=<k>`, or `error <message>`.
fn parse_block<'a>(
    head: &str,
    lines: &mut impl Iterator<Item = &'a str>,
) -> Result<ExecOutcome, ClientError> {
    let mut tokens = head.split_whitespace();
    match tokens.next() {
        Some("rows") => {
            let count: usize = tokens
                .next()
                .and_then(|text| text.parse().ok())
                .ok_or_else(|| ClientError::Malformed(format!("bad rows head `{head}`")))?;
            let header = lines
                .next()
                .ok_or_else(|| ClientError::Malformed("missing column header".to_string()))?;
            let columns: Vec<String> = if header.is_empty() {
                Vec::new()
            } else {
                header.split('\t').map(str::to_string).collect()
            };
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                let line = lines
                    .next()
                    .ok_or_else(|| ClientError::Malformed("missing answer row".to_string()))?;
                // A closed query executed under row semantics yields zero-column rows,
                // which render as empty lines — not as one empty value. Non-empty
                // fields are unescaped (the server escapes embedded tabs/newlines).
                let row: Vec<String> = if columns.is_empty() && line.is_empty() {
                    Vec::new()
                } else {
                    line.split('\t').map(crate::protocol::unescape_field).collect()
                };
                rows.push(row);
            }
            Ok(ExecOutcome::Rows { columns, rows })
        }
        Some("outcome") => {
            let verdict = tokens
                .next()
                .ok_or_else(|| ClientError::Malformed(format!("bad outcome head `{head}`")))?
                .to_string();
            let examined = parse_tagged(head, "examined")?;
            Ok(ExecOutcome::Outcome { verdict, examined })
        }
        Some("profile") => {
            let position = |tag: &str| -> Result<Option<u128>, ClientError> {
                let prefix = format!("{tag}=");
                let token = head
                    .split_whitespace()
                    .find_map(|token| token.strip_prefix(&prefix))
                    .ok_or_else(|| {
                    ClientError::Malformed(format!("no `{tag}=` in `{head}`"))
                })?;
                if token == "none" {
                    return Ok(None);
                }
                token
                    .parse::<u128>()
                    .map(Some)
                    .map_err(|_| ClientError::Malformed(format!("bad `{tag}=` in `{head}`")))
            };
            let total = position("total")?
                .ok_or_else(|| ClientError::Malformed(format!("no total in `{head}`")))?;
            Ok(ExecOutcome::Profile {
                total,
                first_true: position("first_true")?,
                first_false: position("first_false")?,
            })
        }
        Some("error") => {
            let message = head.strip_prefix("error ").unwrap_or(head).to_string();
            Ok(ExecOutcome::Error(message))
        }
        _ => Err(ClientError::Malformed(format!("unrecognised response block `{head}`"))),
    }
}
