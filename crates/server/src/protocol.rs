//! The wire protocol: length-prefixed UTF-8 frames carrying one request or response.
//!
//! # Framing
//!
//! Every message — request and response alike — is one **frame**:
//!
//! ```text
//! +----------------+---------------------+
//! | length: u32 BE | payload: UTF-8 text |
//! +----------------+---------------------+
//! ```
//!
//! The length counts payload bytes only and must not exceed [`MAX_FRAME_BYTES`]; a
//! frame that is too large, truncated, or not valid UTF-8 is *malformed* and the peer
//! answers with an `ERR` frame and closes the connection (a malformed length prefix
//! leaves no trustworthy framing to resynchronise on).
//!
//! # Requests
//!
//! The payload's first line is the command; `BATCH` carries one extra line per entry:
//!
//! ```text
//! PING
//! PREPARE <id> <first-order query text>
//! EXEC <id> <family> <CERTAIN|POSSIBLE|CLOSED|PROFILE>
//! EXPLAIN <id> <family> [CERTAIN|POSSIBLE]
//! BATCH
//! <id> <family> <mode>                         (repeated, one line per entry)
//! DESCRIBE <table>
//! INSERT <table>
//! <value>\t<value>\t...                        (repeated, one escaped row per line)
//! DELETE <table>
//! <value>\t<value>\t...                        (repeated, one escaped row per line)
//! SET-PRIORITY <table> [<winner>><loser> ...]
//! ALTER <table> <lhs attrs -> rhs attrs>
//! MUTATE <table>
//! +\t<value>\t<value>\t...                     (one op-prefixed row per line:
//! -\t<value>\t<value>\t...                      `+` inserts, `-` deletes)
//! SUBSCRIBE <id> <family> <CERTAIN|POSSIBLE> [EVERY n|WINDOW n|COALESCE ms] [QUEUE n]
//! UNSUBSCRIBE <subscription-id>
//! STATS
//! SHUTDOWN
//! ```
//!
//! Families use the SQL tokens (`ALL`/`L`/`S`/`G`/`C` or the paper labels). Priorities
//! are explicit tuple-id pairs `3>7` (tuple 3 preferred over tuple 7). `INSERT` and
//! `DELETE` rows use the same tab-separated, [`escape_field`]-escaped encoding as
//! answer rows; values are typed against the served table's schema at dispatch, and
//! the mutation publishes a **delta-derived** snapshot (affected conflict components
//! only — no rebuild), so the response carries the new generation. `ALTER` adds one
//! functional dependency (parsed against the served schema, e.g. `ALTER Mgr Name ->
//! Dept Salary`) and likewise swaps in a delta-derived snapshot — new conflict edges
//! are scanned only inside the added FD's left-hand-side groups.
//!
//! # Responses
//!
//! The first line starts with `OK` or `ERR`. Row-bearing responses append one header
//! line and one tab-separated line per row:
//!
//! ```text
//! OK rows 2 gen=3                      OK outcome undetermined examined=5 gen=3
//! x                                    OK swapped Mgr gen=4
//! Mary                                 OK inserted 2 gen=5
//! John                                 OK deleted 1 gen=6
//!                                      ERR unknown prepared query `q9`
//!
//! OK describe Mgr rows=4 gen=3         OK profile total=6 first_true=0 first_false=2 gen=3
//! Name<TAB>NAME
//! Dept<TAB>NAME
//! Salary<TAB>INT
//! Reports<TAB>INT
//! ```
//!
//! A connection that issued `SUBSCRIBE` additionally receives **pushed frames** —
//! server-initiated, never in response to a request — which always start with `DELTA`
//! or `LAGGED`:
//!
//! ```text
//! DELTA sub=1 gen=5 added=1 removed=1          LAGGED sub=1 gen=9 rows 2
//! +\tMary                                      Mary
//! -\tJohn                                      Eve
//! ```
//!
//! `DELTA` rows are op-prefixed like `MUTATE` rows (`+` added, `-` removed); a
//! `LAGGED` frame replaces lost deltas with the full answer at the stated generation.
//!
//! `SUBSCRIBE`'s optional trailing clauses pick a report strategy and queue bound:
//! `EVERY n` flushes one net delta per n answer-changing swaps, `COALESCE ms` one per
//! time slice, `WINDOW n` reports the union of the last n generations' answers (with
//! expiry deltas as generations slide out), and `QUEUE n` bounds the subscription's
//! undrained-event queue before it collapses into a `LAGGED` resync.

use std::fmt;
use std::io::{self, Read, Write};

use pdqi_core::{FamilyKind, Semantics};

/// Hard ceiling on a frame's payload size. Frames are statements and answer sets, not
/// bulk data transfer; the cap bounds per-connection memory and lets the server reject
/// garbage (e.g. an HTTP request aimed at the wrong port) before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// What a request asks the executor to do with a prepared query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Open-query execution under [`Semantics::Certain`].
    Certain,
    /// Open-query execution under [`Semantics::Possible`].
    Possible,
    /// Closed-query consistent answer (true / false / undetermined).
    Closed,
    /// Closed-query **profile**: instead of the verdict, report the repair-product
    /// size and the first true/false positions within it. A profile is what a
    /// scatter-gather coordinator needs to merge closed outcomes across shards
    /// bit-identically — `examined` depends on *where* in the product the deciding
    /// repairs sit, which the bare verdict no longer carries.
    Profile,
}

impl ExecMode {
    /// Parses the wire token.
    pub fn parse(text: &str) -> Option<ExecMode> {
        match text.to_ascii_uppercase().as_str() {
            "CERTAIN" => Some(ExecMode::Certain),
            "POSSIBLE" => Some(ExecMode::Possible),
            "CLOSED" => Some(ExecMode::Closed),
            "PROFILE" => Some(ExecMode::Profile),
            _ => None,
        }
    }

    /// The open-query semantics, unless this is a closed mode.
    pub fn semantics(self) -> Option<Semantics> {
        match self {
            ExecMode::Certain => Some(Semantics::Certain),
            ExecMode::Possible => Some(Semantics::Possible),
            ExecMode::Closed | ExecMode::Profile => None,
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecMode::Certain => "CERTAIN",
            ExecMode::Possible => "POSSIBLE",
            ExecMode::Closed => "CLOSED",
            ExecMode::Profile => "PROFILE",
        })
    }
}

/// `SUBSCRIBE`'s optional report-strategy clause, in wire form. Parsing (in
/// [`Request::parse`]) and the rendering in [`Request::render`] round-trip;
/// [`ReportSpec::to_strategy`] maps onto [`pdqi_core::ReportStrategy`] for the
/// subscription manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportSpec {
    /// No clause: one delta per answer-changing swap (the default).
    #[default]
    PerGeneration,
    /// `EVERY n` — flush one net delta per `n` answer-changing swaps.
    Every(u64),
    /// `WINDOW n` — report the union of the last `n` generations' answers.
    Window(u64),
    /// `COALESCE ms` — flush one net delta per `ms`-millisecond time slice.
    Coalesce(u64),
}

impl ReportSpec {
    /// The core strategy this wire clause selects.
    pub fn to_strategy(self) -> pdqi_core::ReportStrategy {
        match self {
            ReportSpec::PerGeneration => pdqi_core::ReportStrategy::PerGeneration,
            ReportSpec::Every(n) => pdqi_core::ReportStrategy::every(n),
            ReportSpec::Window(n) => pdqi_core::ReportStrategy::window(n as usize),
            ReportSpec::Coalesce(ms) => {
                pdqi_core::ReportStrategy::coalesce(std::time::Duration::from_millis(ms))
            }
        }
    }
}

/// One `EXEC`-shaped entry: a prepared-query id, a family and a mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecSpec {
    /// The id the query was `PREPARE`d under.
    pub id: String,
    /// The family of preferred repairs to quantify over.
    pub family: FamilyKind,
    /// Open semantics or the closed consistent answer.
    pub mode: ExecMode,
}

impl ExecSpec {
    fn parse(line: &str) -> Result<ExecSpec, String> {
        let mut parts = line.split_whitespace();
        let (Some(id), Some(family), Some(mode), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "expected `<id> <family> <CERTAIN|POSSIBLE|CLOSED>`, got `{line}`"
            ));
        };
        let family = FamilyKind::parse(family)
            .ok_or_else(|| format!("`{family}` is not a repair family (use ALL, L, S, G or C)"))?;
        let mode = ExecMode::parse(mode).ok_or_else(|| {
            format!("`{mode}` is not an execution mode (use CERTAIN, POSSIBLE, CLOSED or PROFILE)")
        })?;
        Ok(ExecSpec { id: id.to_string(), family, mode })
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Parse and store a query under an id.
    Prepare {
        /// The id later `EXEC`s refer to.
        id: String,
        /// The first-order query text.
        query: String,
    },
    /// Execute one prepared query.
    Exec(ExecSpec),
    /// Render the costed physical plan the planner picks for a prepared query, then
    /// execute it and append the post-execution actuals.
    Explain {
        /// The id of a previously `PREPARE`d query.
        id: String,
        /// The family of preferred repairs to quantify over.
        family: FamilyKind,
        /// The open-query semantics the actuals run under (closed queries ignore it).
        semantics: Semantics,
    },
    /// Execute several prepared queries against **one** pinned snapshot.
    Batch(Vec<ExecSpec>),
    /// Insert rows into a table, publishing a delta-derived snapshot (no rebuild).
    Insert {
        /// The table to insert into.
        table: String,
        /// Raw row fields (typed against the table's schema at dispatch).
        rows: Vec<Vec<String>>,
    },
    /// Delete rows (by value) from a table, publishing a delta-derived snapshot.
    Delete {
        /// The table to delete from.
        table: String,
        /// Raw row fields of the tuples to remove.
        rows: Vec<Vec<String>>,
    },
    /// Add one functional dependency to a table, publishing a delta-derived snapshot
    /// (new edges scanned only inside the FD's LHS groups — no rebuild).
    Alter {
        /// The table whose constraint set grows.
        table: String,
        /// The FD text (`lhs attrs -> rhs attrs`), parsed against the served schema.
        fd: String,
    },
    /// Revise a table's priority and swap the registry snapshot.
    SetPriority {
        /// The table whose priority is revised.
        table: String,
        /// Explicit `winner ≻ loser` tuple-id pairs (replacing the current priority).
        pairs: Vec<(u32, u32)>,
    },
    /// Apply mixed inserts and deletes to one table as **one** delta derivation and
    /// one generation swap (and hence at most one subscription delta per subscriber).
    Mutate {
        /// The table to mutate.
        table: String,
        /// Raw row fields to insert (typed against the table's schema at dispatch).
        inserts: Vec<Vec<String>>,
        /// Raw row fields of the tuples to remove.
        deletes: Vec<Vec<String>>,
    },
    /// Register a continuous query: the connection switches into push mode and
    /// receives `DELTA`/`LAGGED` frames for this subscription.
    Subscribe {
        /// The id of a previously `PREPARE`d query.
        id: String,
        /// The family of preferred repairs to quantify over.
        family: FamilyKind,
        /// The open-query semantics (`CLOSED` verdicts have no row delta).
        semantics: Semantics,
        /// The report strategy (`EVERY n` / `WINDOW n` / `COALESCE ms`; default
        /// per-generation).
        report: ReportSpec,
        /// `QUEUE n`: per-subscription bound on undrained events before the queue
        /// collapses into a `LAGGED` resync (default: the server's bound).
        queue: Option<usize>,
    },
    /// Drop a subscription registered on this connection.
    Unsubscribe {
        /// The subscription id `OK subscribed sub=<id> …` reported.
        sub: u64,
    },
    /// Report a table's schema (column names and types), row count and generation.
    Describe {
        /// The table to describe.
        table: String,
    },
    /// Registry and executor statistics.
    Stats,
    /// Stop the server after answering.
    Shutdown,
}

impl Request {
    /// Parses a request payload. Errors are protocol-level (`ERR` text), not I/O.
    pub fn parse(payload: &str) -> Result<Request, String> {
        let mut lines = payload.lines();
        let head = lines.next().unwrap_or("").trim();
        // Commands are case-insensitive; everything after the command keeps its case.
        let (command, rest) = match head.split_once(char::is_whitespace) {
            Some((command, rest)) => (command.to_ascii_uppercase(), rest.trim_start()),
            None => (head.to_ascii_uppercase(), ""),
        };
        match command.as_str() {
            "PING" => Ok(Request::Ping),
            "PREPARE" => {
                let Some((id, query)) = rest.split_once(char::is_whitespace) else {
                    return Err("usage: PREPARE <id> <query>".to_string());
                };
                Ok(Request::Prepare { id: id.to_string(), query: query.trim().to_string() })
            }
            "EXEC" => Ok(Request::Exec(ExecSpec::parse(rest)?)),
            "EXPLAIN" => {
                let mut parts = rest.split_whitespace();
                let (Some(id), Some(family), mode, None) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    return Err("usage: EXPLAIN <id> <family> [CERTAIN|POSSIBLE]".to_string());
                };
                let family = FamilyKind::parse(family).ok_or_else(|| {
                    format!("`{family}` is not a repair family (use ALL, L, S, G or C)")
                })?;
                let semantics = match mode {
                    None => Semantics::Certain,
                    Some(mode) => {
                        ExecMode::parse(mode).and_then(ExecMode::semantics).ok_or_else(|| {
                            format!("`{mode}` is not an EXPLAIN mode (use CERTAIN or POSSIBLE)")
                        })?
                    }
                };
                Ok(Request::Explain { id: id.to_string(), family, semantics })
            }
            "BATCH" => {
                let specs: Vec<ExecSpec> = lines
                    .filter(|line| !line.trim().is_empty())
                    .map(ExecSpec::parse)
                    .collect::<Result<_, _>>()?;
                if specs.is_empty() {
                    return Err("BATCH needs at least one `<id> <family> <mode>` line".to_string());
                }
                Ok(Request::Batch(specs))
            }
            "INSERT" | "DELETE" => {
                let table = rest.trim();
                if table.is_empty() || table.split_whitespace().count() != 1 {
                    return Err(format!(
                        "usage: {command} <table> followed by one tab-separated row per line"
                    ));
                }
                // Rows reuse the response encoding: tab-separated fields, escaped with
                // `escape_field` so embedded tabs/newlines cannot shift the structure.
                // Every line after the head is a row — split('\n'), not lines(), and no
                // blank-line filtering: a single-column row holding the empty string
                // legitimately encodes as an empty line, and silently dropping it would
                // be indistinguishable from a set-semantics no-op (a stray blank line
                // in a multi-column frame surfaces as an arity error instead).
                let Some((_, row_block)) = payload.split_once('\n') else {
                    return Err(format!("{command} needs at least one row line"));
                };
                let rows: Vec<Vec<String>> = row_block
                    .split('\n')
                    .map(|line| line.split('\t').map(unescape_field).collect())
                    .collect();
                let table = table.to_string();
                Ok(if command == "INSERT" {
                    Request::Insert { table, rows }
                } else {
                    Request::Delete { table, rows }
                })
            }
            "ALTER" => {
                let Some((table, fd)) = rest.split_once(char::is_whitespace) else {
                    return Err("usage: ALTER <table> <lhs attrs -> rhs attrs>".to_string());
                };
                let fd = fd.trim();
                if fd.is_empty() {
                    return Err("usage: ALTER <table> <lhs attrs -> rhs attrs>".to_string());
                }
                Ok(Request::Alter { table: table.to_string(), fd: fd.to_string() })
            }
            "SET-PRIORITY" => {
                let (table, pair_text) = match rest.split_once(char::is_whitespace) {
                    Some((table, pair_text)) => (table, pair_text),
                    None => (rest, ""),
                };
                if table.is_empty() {
                    return Err("usage: SET-PRIORITY <table> [<winner>><loser> ...]".to_string());
                }
                let mut pairs = Vec::new();
                for token in pair_text.split_whitespace() {
                    let Some((winner, loser)) = token.split_once('>') else {
                        return Err(format!(
                            "`{token}` is not a priority pair (use `<winner>><loser>`, e.g. `3>7`)"
                        ));
                    };
                    let parse = |text: &str| {
                        text.parse::<u32>().map_err(|_| format!("`{text}` is not a tuple id"))
                    };
                    pairs.push((parse(winner)?, parse(loser)?));
                }
                Ok(Request::SetPriority { table: table.to_string(), pairs })
            }
            "MUTATE" => {
                let table = rest.trim();
                if table.is_empty() || table.split_whitespace().count() != 1 {
                    return Err(
                        "usage: MUTATE <table> followed by one `+`/`-`-prefixed row per line"
                            .to_string(),
                    );
                }
                let Some((_, row_block)) = payload.split_once('\n') else {
                    return Err("MUTATE needs at least one row line".to_string());
                };
                let (mut inserts, mut deletes) = (Vec::new(), Vec::new());
                // Like INSERT/DELETE: split('\n') so a single-column empty-string row
                // (encoded as `+\t`) survives; the op is the first tab-separated cell.
                for line in row_block.split('\n') {
                    let (op, fields) = match line.split_once('\t') {
                        Some((op, fields)) => {
                            (op, fields.split('\t').map(unescape_field).collect())
                        }
                        // A zero-field line can only be a bare op (closed queries have
                        // zero columns, tables never do — but parse stays total).
                        None => (line, Vec::new()),
                    };
                    match op {
                        "+" => inserts.push(fields),
                        "-" => deletes.push(fields),
                        other => {
                            return Err(format!(
                                "MUTATE rows start with `+` or `-` (got `{other}`)"
                            ))
                        }
                    }
                }
                Ok(Request::Mutate { table: table.to_string(), inserts, deletes })
            }
            "SUBSCRIBE" => {
                const USAGE: &str = "usage: SUBSCRIBE <id> <family> <CERTAIN|POSSIBLE> \
                                     [EVERY n|WINDOW n|COALESCE ms] [QUEUE n]";
                let mut parts = rest.split_whitespace();
                let (Some(id), Some(family), Some(mode)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    return Err(USAGE.to_string());
                };
                let family = FamilyKind::parse(family).ok_or_else(|| {
                    format!("`{family}` is not a repair family (use ALL, L, S, G or C)")
                })?;
                let semantics =
                    ExecMode::parse(mode).and_then(ExecMode::semantics).ok_or_else(|| {
                        format!("`{mode}` is not a subscription mode (use CERTAIN or POSSIBLE)")
                    })?;
                let mut report = None;
                let mut queue = None;
                while let Some(keyword) = parts.next() {
                    let argument = parts.next().ok_or_else(|| USAGE.to_string())?;
                    let number = argument
                        .parse::<u64>()
                        .map_err(|_| format!("`{argument}` is not a number ({USAGE})"))?;
                    match keyword.to_ascii_uppercase().as_str() {
                        "EVERY" | "WINDOW" if number == 0 => {
                            return Err(format!("{keyword} takes a count ≥ 1"));
                        }
                        "EVERY" if report.is_none() => report = Some(ReportSpec::Every(number)),
                        "WINDOW" if report.is_none() => report = Some(ReportSpec::Window(number)),
                        "COALESCE" if report.is_none() => {
                            report = Some(ReportSpec::Coalesce(number));
                        }
                        "EVERY" | "WINDOW" | "COALESCE" => {
                            return Err("at most one of EVERY, WINDOW, COALESCE".to_string());
                        }
                        "QUEUE" if number == 0 => return Err("QUEUE takes a bound ≥ 1".to_string()),
                        "QUEUE" if queue.is_none() => queue = Some(number as usize),
                        "QUEUE" => return Err("QUEUE given twice".to_string()),
                        _ => return Err(USAGE.to_string()),
                    }
                }
                Ok(Request::Subscribe {
                    id: id.to_string(),
                    family,
                    semantics,
                    report: report.unwrap_or_default(),
                    queue,
                })
            }
            "UNSUBSCRIBE" => {
                let sub = rest
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| "usage: UNSUBSCRIBE <subscription-id>".to_string())?;
                Ok(Request::Unsubscribe { sub })
            }
            "DESCRIBE" => {
                let table = rest.trim();
                if table.is_empty() || table.split_whitespace().count() != 1 {
                    return Err("usage: DESCRIBE <table>".to_string());
                }
                Ok(Request::Describe { table: table.to_string() })
            }
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            other => Err(format!("unknown command `{other}`")),
        }
    }

    /// Renders the request as a payload [`Request::parse`] round-trips.
    pub fn render(&self) -> String {
        match self {
            Request::Ping => "PING".to_string(),
            Request::Prepare { id, query } => format!("PREPARE {id} {query}"),
            Request::Exec(spec) => {
                format!("EXEC {} {} {}", spec.id, spec.family.label(), spec.mode)
            }
            Request::Explain { id, family, semantics } => {
                let mode = match semantics {
                    Semantics::Certain => ExecMode::Certain,
                    Semantics::Possible => ExecMode::Possible,
                };
                format!("EXPLAIN {id} {} {mode}", family.label())
            }
            Request::Batch(specs) => {
                let mut out = String::from("BATCH");
                for spec in specs {
                    out.push('\n');
                    out.push_str(&format!("{} {} {}", spec.id, spec.family.label(), spec.mode));
                }
                out
            }
            Request::Insert { table, rows } => render_mutation("INSERT", table, rows),
            Request::Delete { table, rows } => render_mutation("DELETE", table, rows),
            Request::Mutate { table, inserts, deletes } => {
                let mut out = format!("MUTATE {table}");
                push_op_rows(&mut out, '+', inserts);
                push_op_rows(&mut out, '-', deletes);
                out
            }
            Request::Subscribe { id, family, semantics, report, queue } => {
                let mode = match semantics {
                    Semantics::Certain => ExecMode::Certain,
                    Semantics::Possible => ExecMode::Possible,
                };
                let mut out = format!("SUBSCRIBE {id} {} {mode}", family.label());
                match report {
                    ReportSpec::PerGeneration => {}
                    ReportSpec::Every(n) => out.push_str(&format!(" EVERY {n}")),
                    ReportSpec::Window(n) => out.push_str(&format!(" WINDOW {n}")),
                    ReportSpec::Coalesce(ms) => out.push_str(&format!(" COALESCE {ms}")),
                }
                if let Some(bound) = queue {
                    out.push_str(&format!(" QUEUE {bound}"));
                }
                out
            }
            Request::Unsubscribe { sub } => format!("UNSUBSCRIBE {sub}"),
            Request::Alter { table, fd } => format!("ALTER {table} {fd}"),
            Request::SetPriority { table, pairs } => {
                let mut out = format!("SET-PRIORITY {table}");
                for (winner, loser) in pairs {
                    out.push_str(&format!(" {winner}>{loser}"));
                }
                out
            }
            Request::Describe { table } => format!("DESCRIBE {table}"),
            Request::Stats => "STATS".to_string(),
            Request::Shutdown => "SHUTDOWN".to_string(),
        }
    }
}

/// Renders an `INSERT`/`DELETE` payload: the command head line, then one escaped
/// tab-separated row per line (the same encoding answer rows use).
fn render_mutation(command: &str, table: &str, rows: &[Vec<String>]) -> String {
    let mut out = format!("{command} {table}");
    for row in rows {
        out.push('\n');
        let rendered: Vec<String> = row.iter().map(|field| escape_field(field)).collect();
        out.push_str(&rendered.join("\t"));
    }
    out
}

/// Appends op-prefixed row lines (`<op>\t<escaped fields…>`) — the encoding `MUTATE`
/// requests and pushed `DELTA` frames share.
pub(crate) fn push_op_rows(out: &mut String, op: char, rows: &[Vec<String>]) {
    for row in rows {
        out.push('\n');
        out.push(op);
        for field in row {
            out.push('\t');
            out.push_str(&escape_field(field));
        }
    }
}

/// Errors surfaced while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (including EOF mid-frame).
    Io(io::Error),
    /// The peer announced a payload larger than [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The announced payload size.
        announced: usize,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::TooLarge { announced } => write!(
                f,
                "frame too large: {announced} bytes announced, limit is {MAX_FRAME_BYTES}"
            ),
            FrameError::NotUtf8 => f.write_str("frame payload is not valid UTF-8"),
            FrameError::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Escapes one row value for the tab/newline-delimited response encoding: `\` → `\\`,
/// tab → `\t`, newline → `\n`. Without this, a stored `TEXT` value containing a tab or
/// newline would shift the positional structure every later row (and batch block) is
/// parsed by.
pub fn escape_field(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape_field`]. Unknown escapes (and a trailing lone `\`) pass through
/// verbatim rather than erroring: the value is still displayable and the framing is
/// already safe.
pub fn unescape_field(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Writes one frame: `u32` big-endian payload length, then the payload bytes.
///
/// A payload over [`MAX_FRAME_BYTES`] is refused with `InvalidInput` **before** any
/// byte hits the wire — the peer would reject the frame as too large anyway, and a
/// half-written oversized frame would desynchronise the stream. The server turns this
/// into a small `ERR response too large` answer; clients surface it as an error.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("payload is {} bytes; the frame limit is {MAX_FRAME_BYTES}", bytes.len()),
        ));
    }
    writer.write_all(&(bytes.len() as u32).to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one frame, enforcing [`MAX_FRAME_BYTES`] **before** allocating the payload.
///
/// EOF at a frame boundary reports [`FrameError::Closed`]; EOF inside a frame is an
/// [`FrameError::Io`] error (the peer vanished mid-message).
pub fn read_frame(reader: &mut impl Read) -> Result<String, FrameError> {
    let mut len_bytes = [0u8; 4];
    match reader.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let announced = u32::from_be_bytes(len_bytes) as usize;
    if announced > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { announced });
    }
    let mut payload = vec![0u8; announced];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload).map_err(|_| FrameError::NotUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "PING").unwrap();
        write_frame(&mut buffer, "STATS").unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(read_frame(&mut cursor).unwrap(), "PING");
        assert_eq!(read_frame(&mut cursor).unwrap(), "STATS");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
        let mut cursor = io::Cursor::new(oversized);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge { .. })));

        let mut truncated = Vec::new();
        truncated.extend_from_slice(&8u32.to_be_bytes());
        truncated.extend_from_slice(b"hi");
        let mut cursor = io::Cursor::new(truncated);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));

        let mut binary = Vec::new();
        binary.extend_from_slice(&2u32.to_be_bytes());
        binary.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = io::Cursor::new(binary);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::NotUtf8)));
    }

    #[test]
    fn field_escaping_round_trips() {
        for value in
            ["plain", "tab\there", "line\nbreak", "back\\slash", "\t\n\\", "", "trailing\\"]
        {
            assert_eq!(unescape_field(&escape_field(value)), value, "{value:?}");
            // Escaped text never contains raw structure characters.
            assert!(!escape_field(value).contains('\t'));
            assert!(!escape_field(value).contains('\n'));
        }
        // Unknown escapes and lone trailing backslashes pass through.
        assert_eq!(unescape_field("a\\xb"), "a\\xb");
        assert_eq!(unescape_field("end\\"), "end\\");
    }

    #[test]
    fn requests_parse_and_render() {
        let cases = [
            Request::Ping,
            Request::Prepare { id: "q1".into(), query: "EXISTS d,s,r . Mgr(x,d,s,r)".into() },
            Request::Exec(ExecSpec {
                id: "q1".into(),
                family: FamilyKind::Global,
                mode: ExecMode::Certain,
            }),
            Request::Batch(vec![
                ExecSpec { id: "q1".into(), family: FamilyKind::Rep, mode: ExecMode::Possible },
                ExecSpec { id: "q2".into(), family: FamilyKind::Common, mode: ExecMode::Closed },
                ExecSpec { id: "q3".into(), family: FamilyKind::Local, mode: ExecMode::Profile },
            ]),
            Request::Exec(ExecSpec {
                id: "q9".into(),
                family: FamilyKind::SemiGlobal,
                mode: ExecMode::Profile,
            }),
            Request::Explain {
                id: "q1".into(),
                family: FamilyKind::Global,
                semantics: Semantics::Certain,
            },
            Request::Explain {
                id: "q2".into(),
                family: FamilyKind::Rep,
                semantics: Semantics::Possible,
            },
            Request::Describe { table: "Mgr".into() },
            Request::Alter { table: "Mgr".into(), fd: "Name -> Dept Salary Reports".into() },
            Request::SetPriority { table: "Mgr".into(), pairs: vec![(0, 2), (1, 3)] },
            Request::SetPriority { table: "Mgr".into(), pairs: vec![] },
            Request::Insert {
                table: "Mgr".into(),
                rows: vec![
                    vec!["Mary".into(), "R&D".into(), "40".into(), "3".into()],
                    vec!["tab\there".into(), "line\nbreak".into(), "1".into(), "2".into()],
                ],
            },
            Request::Delete { table: "Mgr".into(), rows: vec![vec!["John".into(), "PR".into()]] },
            // A single-column row holding the empty string encodes as an empty line
            // and must survive the round trip (not be dropped as a blank line).
            Request::Insert { table: "T".into(), rows: vec![vec![String::new()]] },
            Request::Insert {
                table: "T".into(),
                rows: vec![vec!["a".into()], vec![String::new()], vec!["b".into()]],
            },
            Request::Mutate {
                table: "Mgr".into(),
                inserts: vec![vec!["Eve".into(), "HR".into(), "15".into(), "2".into()]],
                deletes: vec![
                    vec!["Mary".into(), "IT".into(), "20".into(), "1".into()],
                    vec!["tab\there".into(), "line\nbreak".into(), "1".into(), "2".into()],
                ],
            },
            // Op-prefixed single-column empty-string rows survive like INSERT's do.
            Request::Mutate {
                table: "T".into(),
                inserts: vec![vec![String::new()]],
                deletes: vec![vec!["a".into()]],
            },
            Request::Subscribe {
                id: "q1".into(),
                family: FamilyKind::Global,
                semantics: Semantics::Certain,
                report: ReportSpec::PerGeneration,
                queue: None,
            },
            Request::Subscribe {
                id: "q2".into(),
                family: FamilyKind::Rep,
                semantics: Semantics::Possible,
                report: ReportSpec::PerGeneration,
                queue: None,
            },
            Request::Subscribe {
                id: "q3".into(),
                family: FamilyKind::Local,
                semantics: Semantics::Certain,
                report: ReportSpec::Every(4),
                queue: None,
            },
            Request::Subscribe {
                id: "q4".into(),
                family: FamilyKind::Common,
                semantics: Semantics::Possible,
                report: ReportSpec::Window(3),
                queue: Some(16),
            },
            Request::Subscribe {
                id: "q5".into(),
                family: FamilyKind::Global,
                semantics: Semantics::Certain,
                report: ReportSpec::Coalesce(250),
                queue: None,
            },
            Request::Subscribe {
                id: "q6".into(),
                family: FamilyKind::Rep,
                semantics: Semantics::Certain,
                report: ReportSpec::PerGeneration,
                queue: Some(1),
            },
            Request::Unsubscribe { sub: 7 },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in cases {
            assert_eq!(Request::parse(&request.render()).unwrap(), request);
        }
    }

    #[test]
    fn malformed_requests_report_usage() {
        for bad in [
            "",
            "NOPE",
            "PREPARE onlyid",
            "EXEC q1",
            "EXEC q1 ALL MAYBE",
            "EXEC q1 NOPE CERTAIN",
            "EXEC q1 ALL CERTAIN extra",
            "BATCH",
            "BATCH\nq1 ALL",
            "EXPLAIN",
            "EXPLAIN q1",
            "EXPLAIN q1 NOPE",
            "EXPLAIN q1 ALL CLOSED",
            "EXPLAIN q1 ALL CERTAIN extra",
            "ALTER",
            "ALTER Mgr",
            "ALTER Mgr   ",
            "SET-PRIORITY",
            "SET-PRIORITY Mgr 1-2",
            "SET-PRIORITY Mgr x>y",
            "INSERT",
            "INSERT Mgr",
            "INSERT two tables\nrow",
            "DELETE",
            "DELETE Mgr",
            "MUTATE",
            "MUTATE Mgr",
            "MUTATE two tables\n+\trow",
            "MUTATE Mgr\nrow without op",
            "MUTATE Mgr\n*\trow",
            "SUBSCRIBE",
            "SUBSCRIBE q1",
            "SUBSCRIBE q1 ALL",
            "SUBSCRIBE q1 ALL CLOSED",
            "SUBSCRIBE q1 ALL PROFILE",
            "SUBSCRIBE q1 NOPE CERTAIN",
            "SUBSCRIBE q1 ALL CERTAIN extra",
            "SUBSCRIBE q1 ALL CERTAIN WINDOW",
            "SUBSCRIBE q1 ALL CERTAIN WINDOW x",
            "SUBSCRIBE q1 ALL CERTAIN WINDOW 0",
            "SUBSCRIBE q1 ALL CERTAIN EVERY 0",
            "SUBSCRIBE q1 ALL CERTAIN QUEUE 0",
            "SUBSCRIBE q1 ALL CERTAIN QUEUE",
            "SUBSCRIBE q1 ALL CERTAIN QUEUE 4 QUEUE 5",
            "SUBSCRIBE q1 ALL CERTAIN WINDOW 2 COALESCE 10",
            "SUBSCRIBE q1 ALL CERTAIN WINDOW 2 extra",
            "UNSUBSCRIBE",
            "UNSUBSCRIBE x",
            "DESCRIBE",
            "DESCRIBE two tables",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} should be malformed");
        }
        // Commands are case-insensitive; ids and queries keep their case.
        let lower = Request::parse("prepare Q1 EXISTS b . R(x,b)").unwrap();
        assert_eq!(lower, Request::Prepare { id: "Q1".into(), query: "EXISTS b . R(x,b)".into() });
        assert!(Request::parse("exec Q1 all certain").is_ok());
    }
}
