//! Network front end for `pdqi`: serve preferred consistent answers over TCP.
//!
//! The crate puts a wire protocol on the serving core that `pdqi-core` exposes:
//!
//! ```text
//!            clients                      pdqi-server                   pdqi-core
//!  ┌──────────┐  frames   ┌──────────────────────────────┐   ┌───────────────────────┐
//!  │ Client / │ ────────► │ accept loops → per-connection │   │   SnapshotRegistry    │
//!  │ pdqi     │ ◄──────── │ handlers → Request dispatch   │──►│ table → Arc<Snapshot> │
//!  │ connect  │           │   EXEC/BATCH: BatchExecutor   │   │ (generation counters) │
//!  └──────────┘           │   SET-PRIORITY: revise+swap   │   └───────────────────────┘
//! ```
//!
//! * [`protocol`] — the length-prefixed line protocol: framing, request parsing,
//!   response shapes, malformed-frame rules;
//! * [`server`] — the std-only serving loop: accept threads, per-connection handlers,
//!   snapshot-pinned dispatch through [`pdqi_core::BatchExecutor`], revisions through
//!   [`pdqi_core::SnapshotRegistry::revise`];
//! * [`client`] — a blocking [`Client`] with typed helpers, used by the CLI's
//!   `connect` subcommand, the serving tests and the `e16_serving` bench;
//! * [`coordinator`] — the scatter-gather front end: one serve-compatible endpoint
//!   fanning requests out over N key-range shards and merging per-shard answer folds
//!   bit-identically to single-snapshot execution.
//!
//! Connections double as **push channels**: `SUBSCRIBE` registers a continuous query
//! with the server's [`pdqi_core::SubscriptionManager`], after which `DELTA` (and, for
//! slow readers, `LAGGED` resync) frames are interleaved onto the same socket between
//! responses; [`Client`] buffers them and hands them out as typed [`PushEvent`]s.
//!
//! Everything is plain [`std`]: no async runtime exists in this build environment, so
//! concurrency is accept-loop threads plus a handler thread per connection, and all
//! sharing goes through the same `Arc`/atomic structures the in-process serving path
//! uses. The protocol guarantees of the in-process API carry over: every request is
//! answered against **one** pinned snapshot generation, and priority swaps never block
//! in-flight readers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod coordinator;
pub mod protocol;
pub mod server;

pub use client::{
    Client, ClientError, Events, ExecOutcome, PushEvent, SubscribeReply, TableDescription,
};
pub use coordinator::{coordinate, CoordinatorConfig, CoordinatorHandle};
pub use protocol::{
    escape_field, unescape_field, ExecMode, ExecSpec, FrameError, ReportSpec, Request,
    MAX_FRAME_BYTES,
};
pub use server::{serve, ServerConfig, ServerHandle};
