//! The serving loop: accept threads, per-connection handlers, request dispatch.
//!
//! The server is **std-only** (this build environment has no async runtime): a
//! configurable number of accept-loop threads share one `TcpListener` (the kernel wakes
//! exactly one blocked acceptor per incoming connection — the thread-per-core accept
//! pattern), and every accepted connection gets a handler thread that reads frames,
//! dispatches them, and writes response frames back.
//!
//! Dispatch is where the serving-core architecture shows:
//!
//! * `EXEC`/`BATCH` **pin one snapshot** per request — a [`SnapshotRegistry::read`]
//!   lease taken once, before any work — and run every query of the request through a
//!   [`BatchExecutor`] over that snapshot. Answers are bit-identical to calling
//!   [`pdqi_core::PreparedQuery::execute`] on the leased snapshot directly, and the
//!   response reports the pinned generation;
//! * `SET-PRIORITY` and `ALTER` revise **off the serving path** through
//!   [`SnapshotRegistry::revise`]: the replacement snapshot derives (and eagerly
//!   revalidates) while in-flight readers keep their leases, then one atomic swap
//!   publishes it. `ALTER` derives through
//!   [`pdqi_core::EngineSnapshot::with_fd_added`] — new conflict edges are scanned
//!   only inside the added FD's LHS groups, never by re-pairing the whole relation;
//! * prepared queries are parsed once (`PREPARE`) into a shared plan cache keyed by
//!   client-chosen ids, so repeated `EXEC`s skip parsing and classification exactly
//!   like prepared statements in the SQL session.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use pdqi_constraints::FunctionalDependency;
use pdqi_core::{
    BatchExecutor, BatchRequest, BatchResponse, ChangeScope, ChunkTuner, Parallelism,
    PreparedQuery, SnapshotLease, SnapshotRegistry, SubscribeOptions, SubscriptionEvent,
    SubscriptionManager, WriteCoalescer, WriteFrame,
};
use pdqi_priority::Priority;
use pdqi_relation::{TupleId, Value, ValueType};

use crate::protocol::{
    escape_field, push_op_rows, write_frame, ExecMode, ExecSpec, FrameError, Request,
};

/// How often blocked connection reads wake up to check the shutdown flag. Connections
/// use a read timeout instead of a blocking read so a `shutdown` call (or a remote
/// `SHUTDOWN` command) drains handler threads promptly without poking every socket.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// Cap on the shared `PREPARE` plan cache (cleared wholesale when exceeded): the ids
/// are client-chosen, so an unbounded map would let one misbehaving client grow a
/// long-lived server without limit.
const PREPARED_CACHE_LIMIT: usize = 4096;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads used by query execution and revision revalidation.
    pub parallelism: Parallelism,
    /// Accept-loop threads sharing the listener (thread-per-core accept; clamped to at
    /// least 1).
    pub acceptors: usize,
    /// Group-commit delay for the write coalescer: the batch leader waits this long
    /// after taking a table's revision lock so concurrent writes join the batch
    /// (zero — the default — coalesces only writes already queued behind the lock).
    pub write_hold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            parallelism: Parallelism::sequential(),
            acceptors: 1,
            write_hold: Duration::ZERO,
        }
    }
}

/// A prepared query stored under a client-chosen id.
struct PreparedEntry {
    query: Arc<PreparedQuery>,
    /// The single table the query reads (the registry serves snapshots per table).
    table: String,
}

/// State shared by every connection handler.
struct ServerState {
    registry: Arc<SnapshotRegistry>,
    prepared: RwLock<HashMap<String, Arc<PreparedEntry>>>,
    parallelism: Parallelism,
    /// One chunk-cost feedback loop per server: measured per-chunk wall-clock from
    /// single-query requests converges the chunk split for the whole process.
    tuner: Arc<ChunkTuner>,
    /// Accept-loop thread count: a remote `SHUTDOWN` must wake every one of them.
    acceptors: usize,
    /// The continuous-query manager, attached to `registry` as a swap observer:
    /// `SUBSCRIBE`d connections drain their bounded per-subscriber queues on idle
    /// polls and after every response.
    subscriptions: Arc<SubscriptionManager>,
    /// The write-pipelining front: every `MUTATE`/`INSERT`/`DELETE` goes through this
    /// bounded per-table coalescing queue, so frames arriving while the revision lock
    /// is busy fold into one `Mutation`, one derivation and one swap.
    writes: Arc<WriteCoalescer>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    /// `ALTER` requests that swapped in an FD-delta-derived snapshot (the server has
    /// no rebuild fallback — a failed delta is an `ERR`, counted nowhere).
    alters_applied: AtomicU64,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }
}

/// A handle on a running server: its address, a shutdown trigger, and a join point.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptors: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server serves from.
    pub fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.state.registry
    }

    /// Asks the server to stop and joins every thread: in-flight requests finish,
    /// acceptors wake and exit, handler threads drain.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        // Wake every blocked acceptor: each connect is accepted by exactly one of them,
        // which then observes the flag and exits.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.addr);
        }
        self.join_threads();
    }

    /// Blocks until the server stops (via [`ServerHandle::shutdown`] from another
    /// thread's clone of the trigger, or a remote `SHUTDOWN` command).
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        for acceptor in self.acceptors.drain(..) {
            let _ = acceptor.join();
        }
        let connections = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for connection in connections {
            let _ = connection.join();
        }
    }
}

/// Binds `addr` and starts serving `registry` — see the [module docs](self).
///
/// Returns once the listener is bound and the accept loops are running; the returned
/// handle reports the bound address (pass port 0 for an ephemeral port) and shuts the
/// server down cleanly when asked.
pub fn serve(
    addr: impl ToSocketAddrs,
    registry: Arc<SnapshotRegistry>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let acceptor_count = config.acceptors.max(1);
    let subscriptions = SubscriptionManager::new(config.parallelism);
    subscriptions.attach(&registry);
    let writes =
        WriteCoalescer::with_hold(Arc::clone(&registry), config.parallelism, config.write_hold);
    let state = Arc::new(ServerState {
        registry,
        prepared: RwLock::new(HashMap::new()),
        parallelism: config.parallelism,
        tuner: ChunkTuner::shared(),
        acceptors: acceptor_count,
        subscriptions,
        writes,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
        alters_applied: AtomicU64::new(0),
    });
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut acceptors = Vec::new();
    for _ in 0..acceptor_count {
        let listener = listener.try_clone()?;
        let state = Arc::clone(&state);
        let connections = Arc::clone(&connections);
        let wake_addr = addr;
        acceptors.push(std::thread::spawn(move || {
            accept_loop(&listener, wake_addr, &state, &connections);
        }));
    }
    Ok(ServerHandle { addr, state, acceptors, connections })
}

fn accept_loop(
    listener: &TcpListener,
    wake_addr: SocketAddr,
    state: &Arc<ServerState>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if state.shutting_down() {
                return;
            }
            // Persistent accept failures (e.g. EMFILE when handler threads exhaust
            // file descriptors) must not hot-spin a core; back off briefly so the
            // handlers that would free descriptors get to run.
            std::thread::sleep(SHUTDOWN_POLL);
            continue;
        };
        if state.shutting_down() {
            // The connection that woke us (or a late client): nothing more to serve.
            return;
        }
        let state = Arc::clone(state);
        let handle = std::thread::spawn(move || {
            // A remote SHUTDOWN must wake this server's own acceptors; connecting needs
            // the bound address, so the handler closes over it.
            handle_connection(stream, &state, wake_addr);
        });
        connections.lock().expect("connection list").push(handle);
        // Reap finished handlers so long-lived servers do not accumulate handles.
        let mut list = connections.lock().expect("connection list");
        let mut index = 0;
        while index < list.len() {
            if list[index].is_finished() {
                let _ = list.swap_remove(index).join();
            } else {
                index += 1;
            }
        }
    }
}

/// Reads one frame from a stream whose read timeout is [`SHUTDOWN_POLL`], resuming
/// across timeouts. A timeout **before** the first byte of a frame is an idle poll and
/// returns `Ok(None)`; a timeout **mid-frame** keeps waiting for the remaining bytes —
/// partially-read frames must never be abandoned and re-parsed from the middle, which
/// would desynchronise the stream (a client sending prefix and payload in separate
/// segments more than one poll apart would otherwise be cut off).
pub(crate) fn read_frame_patient(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<String>, FrameError> {
    let mut len_bytes = [0u8; 4];
    if !fill_buffer(stream, shutdown, &mut len_bytes, true)? {
        return Ok(None);
    }
    let announced = u32::from_be_bytes(len_bytes) as usize;
    if announced > crate::protocol::MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { announced });
    }
    let mut payload = vec![0u8; announced];
    fill_buffer(stream, shutdown, &mut payload, false)?;
    String::from_utf8(payload).map(Some).map_err(|_| FrameError::NotUtf8)
}

/// Fills `buf` completely, retrying read timeouts. With `at_boundary`, a timeout before
/// the first byte returns `Ok(false)` (nothing started) and EOF reports
/// [`FrameError::Closed`]; once any byte of the frame has been consumed — or when
/// filling the payload — timeouts retry until the server shuts down, and EOF is a
/// transport error (the peer vanished mid-message).
fn fill_buffer(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<bool, FrameError> {
    use std::io::Read as _;
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Closed
                } else {
                    FrameError::Io(io::ErrorKind::UnexpectedEof.into())
                });
            }
            Ok(read) => filled += read,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                if shutdown.load(Ordering::Relaxed) {
                    return Err(FrameError::Closed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// The subscriptions registered on one connection. Dropping the tracker (connection
/// close, error paths included) unregisters every one of them — a vanished subscriber
/// must not keep accumulating queued deltas in the manager.
struct ConnectionSubs {
    manager: Arc<SubscriptionManager>,
    ids: Vec<u64>,
}

impl ConnectionSubs {
    /// Renders every queued event of this connection's subscriptions as pushed
    /// frames, oldest first, in subscription order.
    fn pending_frames(&self) -> Vec<String> {
        let mut frames = Vec::new();
        for &sub in &self.ids {
            for event in self.manager.drain(sub) {
                frames.push(render_push(sub, &event));
            }
        }
        frames
    }
}

impl Drop for ConnectionSubs {
    fn drop(&mut self) {
        for &sub in &self.ids {
            self.manager.unsubscribe(sub);
        }
    }
}

/// Renders one pushed frame: `DELTA` with op-prefixed rows, or `LAGGED` with the
/// resync answer (header-less — the subscriber learned its columns at SUBSCRIBE time).
fn render_push(sub: u64, event: &SubscriptionEvent) -> String {
    let render_rows = |rows: &[Vec<Value>]| -> Vec<Vec<String>> {
        rows.iter().map(|row| row.iter().map(|v| v.to_string()).collect()).collect()
    };
    match event {
        SubscriptionEvent::Delta(delta) => {
            let mut out = format!(
                "DELTA sub={sub} gen={} added={} removed={}",
                delta.generation,
                delta.added.len(),
                delta.removed.len()
            );
            push_op_rows(&mut out, '+', &render_rows(&delta.added));
            push_op_rows(&mut out, '-', &render_rows(&delta.removed));
            out
        }
        SubscriptionEvent::Lagged { generation, rows } => {
            let mut out = format!("LAGGED sub={sub} gen={generation} rows {}", rows.len());
            for row in rows {
                let rendered: Vec<String> =
                    row.iter().map(|v| escape_field(&v.to_string())).collect();
                out.push('\n');
                out.push_str(&rendered.join("\t"));
            }
            out
        }
    }
}

/// Writes every pending pushed frame of this connection's subscriptions. Returns
/// `false` when the peer is gone.
fn flush_pushes(writer: &mut impl io::Write, subs: &ConnectionSubs) -> bool {
    for frame in subs.pending_frames() {
        if write_frame(writer, &frame).is_err() {
            return false;
        }
    }
    true
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>, wake_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let mut writer = io::BufWriter::new(stream);
    let mut subs = ConnectionSubs { manager: Arc::clone(&state.subscriptions), ids: Vec::new() };
    loop {
        if state.shutting_down() {
            return;
        }
        let payload = match read_frame_patient(&mut reader, &state.shutdown) {
            Ok(Some(payload)) => payload,
            // Idle poll: no frame started; push queued subscription events, check the
            // shutdown flag and keep waiting.
            Ok(None) => {
                if !flush_pushes(&mut writer, &subs) {
                    return;
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(malformed) => {
                // Oversized, truncated or non-UTF-8 frame: the framing itself is gone,
                // so answer once and drop the connection instead of guessing where the
                // next frame starts.
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut writer, &format!("ERR {malformed}"));
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (mut response, shutdown) = match Request::parse(&payload) {
            Err(message) => {
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                (format!("ERR {message}"), false)
            }
            Ok(Request::Shutdown) => ("OK bye".to_string(), true),
            Ok(request) => (dispatch(state, &request, &mut subs), false),
        };
        if response.len() > crate::protocol::MAX_FRAME_BYTES {
            // A legitimately huge answer set cannot be framed; answer with a small
            // ERR instead of killing the connection (the query itself succeeded —
            // the client can narrow the projection or filter).
            response = format!(
                "ERR response too large ({} bytes exceeds the {}-byte frame limit); \
                 narrow the query",
                response.len(),
                crate::protocol::MAX_FRAME_BYTES
            );
        }
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        // A request that swapped a generation (MUTATE/INSERT/DELETE/SET-PRIORITY on
        // this very connection) has its subscription events queued by now — the swap
        // notification runs before the dispatch returns. Push them immediately rather
        // than waiting for the next idle poll.
        if !flush_pushes(&mut writer, &subs) {
            return;
        }
        if shutdown {
            let _ = writer.flush();
            state.shutdown.store(true, Ordering::Relaxed);
            // Wake every blocked acceptor, exactly like ServerHandle::shutdown: one
            // connect per acceptor thread, each accepted (or queued) once.
            for _ in 0..state.acceptors {
                let _ = TcpStream::connect(wake_addr);
            }
            return;
        }
    }
}

/// Answers one well-formed request. Every error is a protocol-level `ERR` response;
/// the connection stays usable. `subs` tracks the subscriptions registered on this
/// connection (pushed frames go to the connection that subscribed, and close
/// unregisters them).
fn dispatch(state: &ServerState, request: &Request, subs: &mut ConnectionSubs) -> String {
    match request {
        Request::Ping => "OK pong".to_string(),
        Request::Prepare { id, query } => match PreparedQuery::parse(query) {
            Err(e) => format!("ERR query error: {e}"),
            Ok(prepared) => {
                let tables = prepared.relations();
                let [table] = tables else {
                    return format!(
                        "ERR queries must read exactly one table (this one reads {})",
                        tables.len()
                    );
                };
                let entry =
                    Arc::new(PreparedEntry { table: table.clone(), query: Arc::new(prepared) });
                let columns = entry.query.free_vars().join(",");
                let mut prepared = state.prepared.write().expect("prepared lock");
                // Bound the network-facing plan cache: a client minting fresh ids per
                // request must not grow a long-lived server without bound. Like the
                // SQL session's statement cache, overflow clears wholesale — clients
                // re-PREPARE on `unknown prepared query`, so this only costs a
                // re-parse.
                if prepared.len() >= PREPARED_CACHE_LIMIT && !prepared.contains_key(id) {
                    prepared.clear();
                }
                prepared.insert(id.clone(), Arc::clone(&entry));
                format!("OK prepared {id} table={} columns={columns}", entry.table)
            }
        },
        Request::Exec(spec) => match execute_specs(state, std::slice::from_ref(spec)) {
            Err(message) => format!("ERR {message}"),
            Ok((lease, mut blocks)) => {
                let block = blocks.pop().expect("one response per spec");
                match block.strip_prefix("error ") {
                    // A single failed execution reports as a plain ERR response.
                    Some(message) => format!("ERR {message}"),
                    None => {
                        // The generation tag belongs on the head line; the block may
                        // carry header and row lines after it.
                        let (head, rest) = match block.split_once('\n') {
                            Some((head, rest)) => (head, Some(rest)),
                            None => (block.as_str(), None),
                        };
                        let mut out = format!("OK {head} gen={}", lease.generation());
                        if let Some(rest) = rest {
                            out.push('\n');
                            out.push_str(rest);
                        }
                        out
                    }
                }
            }
        },
        Request::Explain { id, family, semantics } => {
            let entry = state.prepared.read().expect("prepared lock").get(id).cloned();
            let Some(entry) = entry else {
                return format!("ERR unknown prepared query `{id}` (PREPARE it first)");
            };
            let Some(lease) = state.registry.read(&entry.table) else {
                return format!("ERR no snapshot published for table `{}`", entry.table);
            };
            // The plan renders against the pinned lease; the appended actuals execute
            // through the ordinary memoising pipeline on that same snapshot.
            match entry.query.explain(lease.snapshot(), *family, *semantics, state.parallelism) {
                Ok(report) => format!(
                    "OK explain {id} {} gen={}\n{}",
                    family.label(),
                    lease.generation(),
                    report.trim_end()
                ),
                Err(e) => format!("ERR query error: {e}"),
            }
        }
        Request::Batch(specs) => match execute_specs(state, specs) {
            Err(message) => format!("ERR {message}"),
            Ok((lease, blocks)) => {
                let mut out = format!("OK batch {} gen={}", blocks.len(), lease.generation());
                for block in blocks {
                    out.push('\n');
                    out.push_str(&block);
                }
                out
            }
        },
        Request::Insert { table, rows } => apply_mutation(state, table, rows, true),
        Request::Delete { table, rows } => apply_mutation(state, table, rows, false),
        Request::Mutate { table, inserts, deletes } => {
            let inserts = match type_rows(state, table, inserts) {
                Ok(rows) => rows,
                Err(message) => return message,
            };
            let deletes = match type_rows(state, table, deletes) {
                Ok(rows) => rows,
                Err(message) => return message,
            };
            // One frame → one Mutation batch → one delta derivation → one generation
            // swap; the coalescing queue additionally folds frames from *other*
            // connections that arrive while this table's revision lock is busy into
            // the same derivation.
            match state.writes.apply(table, WriteFrame::new(inserts, deletes)) {
                Ok(outcome) => format!(
                    "OK mutated inserted {} deleted {} gen={}",
                    outcome.inserted, outcome.deleted, outcome.generation
                ),
                Err(e) => format!("ERR {e}"),
            }
        }
        Request::Subscribe { id, family, semantics, report, queue } => {
            let entry = state.prepared.read().expect("prepared lock").get(id).cloned();
            let Some(entry) = entry else {
                return format!("ERR unknown prepared query `{id}` (PREPARE it first)");
            };
            let options =
                SubscribeOptions { strategy: report.to_strategy(), queue_capacity: *queue };
            match state.subscriptions.subscribe_with(
                &state.registry,
                Arc::clone(&entry.query),
                *family,
                *semantics,
                options,
            ) {
                Ok(subscribed) => {
                    subs.ids.push(subscribed.id);
                    let mut out = format!(
                        "OK subscribed sub={} gen={} rows {}\n{}",
                        subscribed.id,
                        subscribed.generation,
                        subscribed.rows.len(),
                        subscribed.columns.join("\t")
                    );
                    for row in &subscribed.rows {
                        let rendered: Vec<String> =
                            row.iter().map(|v| escape_field(&v.to_string())).collect();
                        out.push('\n');
                        out.push_str(&rendered.join("\t"));
                    }
                    out
                }
                Err(e) => format!("ERR {e}"),
            }
        }
        Request::Unsubscribe { sub } => {
            let Some(position) = subs.ids.iter().position(|id| id == sub) else {
                // Subscriptions are per-connection: a foreign id must not be
                // detachable from another session.
                return format!("ERR no subscription `{sub}` on this connection");
            };
            subs.ids.remove(position);
            state.subscriptions.unsubscribe(*sub);
            format!("OK unsubscribed sub={sub}")
        }
        Request::Alter { table, fd } => {
            let parallelism = state.parallelism;
            let revised = state.registry.revise_scoped(table, |current| {
                let ctx = current.context_of(table).ok_or_else(|| {
                    format!("registry snapshot for `{table}` does not contain that relation")
                })?;
                let parsed = FunctionalDependency::parse(ctx.instance().schema(), fd)
                    .map_err(|e| e.to_string())?;
                // The derivation scans for new conflict edges only inside the added
                // FD's LHS groups and re-partitions only the components those edges
                // touch; the reported scope lets subscription observers skip queries
                // the schema change provably cannot affect.
                current
                    .with_fd_added_reported(table, parsed, parallelism)
                    .map(|(snapshot, report)| {
                        let scope = ChangeScope::Schema {
                            relation: table.clone(),
                            affected: report.affected,
                        };
                        (snapshot, scope)
                    })
                    .map_err(|e| e.to_string())
            });
            match revised {
                Ok(generation) => {
                    state.alters_applied.fetch_add(1, Ordering::Relaxed);
                    format!("OK altered {table} gen={generation}")
                }
                Err(e) => format!("ERR {e}"),
            }
        }
        Request::SetPriority { table, pairs } => {
            let pairs: Vec<(TupleId, TupleId)> =
                pairs.iter().map(|&(w, l)| (TupleId(w), TupleId(l))).collect();
            let parallelism = state.parallelism;
            let revised =
                state.registry.revise_scoped(table, |current| {
                    let graph = Arc::clone(current.context_of(table).ok_or_else(|| {
                    format!("registry snapshot for `{table}` does not contain that relation")
                })?.graph());
                    let priority = Priority::from_pairs(graph, &pairs)
                        .map_err(|e| format!("priority cannot be installed: {e}"))?;
                    // The reported component set scopes the swap: observers skip every
                    // query whose footprint the revision provably did not touch.
                    current
                        .with_priority_revalidated_reported_for(table, priority, parallelism)
                        .map(|(snapshot, affected)| {
                            let scope = ChangeScope::Priority { relation: table.clone(), affected };
                            (snapshot, scope)
                        })
                        .map_err(|e| e.to_string())
                });
            match revised {
                Ok(generation) => format!("OK swapped {table} gen={generation}"),
                Err(e) => format!("ERR {e}"),
            }
        }
        Request::Describe { table } => {
            let Some(lease) = state.registry.read(table) else {
                return format!("ERR no snapshot published for table `{table}`");
            };
            let Some(ctx) = lease.snapshot().context_of(table) else {
                return format!(
                    "ERR registry snapshot for `{table}` does not contain that relation"
                );
            };
            let instance = ctx.instance();
            let mut out =
                format!("OK describe {table} rows={} gen={}", instance.len(), lease.generation());
            for attribute in instance.schema().attributes() {
                let ty = match attribute.ty {
                    ValueType::Int => "INT",
                    ValueType::Name => "NAME",
                };
                out.push('\n');
                out.push_str(&escape_field(&attribute.name));
                out.push('\t');
                out.push_str(ty);
            }
            out
        }
        Request::Stats => {
            let registry = state.registry.stats();
            let mut out = format!(
                "OK stats tables={} reads={} swaps={} prepared={} requests={} protocol_errors={}",
                registry.tables,
                registry.reads,
                registry.swaps,
                state.prepared.read().expect("prepared lock").len(),
                state.requests.load(Ordering::Relaxed),
                state.protocol_errors.load(Ordering::Relaxed),
            );
            let subscribe = state.subscriptions.stats();
            out.push_str(&format!(
                "\nsubscriptions subscribers={} pushed={} skipped={} executions={} lagged={}",
                subscribe.subscribers,
                subscribe.deltas_pushed,
                subscribe.skipped_unchanged,
                subscribe.executions,
                subscribe.lagged_resyncs,
            ));
            // Report-strategy accounting: coalesced/windowed subscriber counts and
            // how much churn the strategies absorbed.
            let window = state.subscriptions.window_stats();
            out.push_str(&format!(
                "\nwindows coalesced={} windowed={} folded_swaps={} flushes={} \
                 expiry_deltas={} pending_dropped={}",
                window.coalesced_subscribers,
                window.windowed_subscribers,
                window.folded_swaps,
                window.coalesced_flushes,
                window.expiry_deltas,
                window.pending_dropped,
            ));
            // Write-pipelining accounting: frames through the coalescing queue,
            // derivations actually run, and the folding win.
            let writes = state.writes.stats();
            out.push_str(&format!(
                "\nwrites frames={} batches={} coalesced_writes={} derivations_saved={}",
                writes.frames, writes.batches, writes.coalesced_writes, writes.derivations_saved,
            ));
            // Schema-delta and evaluation-path accounting. Every server-side ALTER is
            // a delta (there is no rebuild fallback over the wire); the eval counters
            // are process-wide — vectorized and scalar executions of the columnar hot
            // path, bit-identical by construction.
            out.push_str(&format!(
                "\nschema alters={}",
                state.alters_applied.load(Ordering::Relaxed)
            ));
            let eval = pdqi_query::eval_path_stats();
            out.push_str(&format!("\neval vectorized={} scalar={}", eval.vectorized, eval.scalar));
            // Cost-based planner accounting (process-wide, like the eval counters):
            // how many executions were planned fresh, served from the per-snapshot
            // plan cache, or ran naive (PDQI_FORCE_NAIVE_PLAN), and which non-default
            // physical choices the planner made.
            let plans = pdqi_core::plan_stats();
            out.push_str(&format!(
                "\nplanner planned={} cache_hits={} naive={} join_reorders={} \
                 scalar_picks={} derived_components={}",
                plans.planned,
                plans.cache_hits,
                plans.naive,
                plans.join_reorders,
                plans.scalar_picks,
                plans.derived_components,
            ));
            for table in state.registry.table_names() {
                if let Some(stats) = state.registry.table_stats(&table) {
                    out.push_str(&format!(
                        "\ntable {table} gen={} reads={} swaps={} subs={}",
                        stats.generation,
                        stats.reads,
                        stats.swaps,
                        state.subscriptions.subscriber_count_for(&table),
                    ));
                }
            }
            out
        }
        Request::Shutdown => unreachable!("SHUTDOWN is handled by the connection loop"),
    }
}

/// Answers an `INSERT`/`DELETE` request: types the raw row fields against the served
/// table's schema, then publishes a **delta-derived** snapshot through the server's
/// [`WriteCoalescer`] — the replacement re-partitions only the conflict components
/// the mutation touches and carries every untouched memo entry, building off the
/// serving path under the same per-table writer lock `SET-PRIORITY` uses; frames
/// queued while that lock is busy fold into one derivation. The response reports what
/// the mutation actually did (set semantics: duplicate inserts and absent deletes are
/// no-ops) and the generation its batch published.
fn apply_mutation(state: &ServerState, table: &str, rows: &[Vec<String>], insert: bool) -> String {
    let typed = match type_rows(state, table, rows) {
        Ok(typed) => typed,
        Err(message) => return message,
    };
    let frame = if insert {
        WriteFrame::new(typed, Vec::new())
    } else {
        WriteFrame::new(Vec::new(), typed)
    };
    match state.writes.apply(table, frame) {
        Ok(outcome) => {
            if insert {
                format!("OK inserted {} gen={}", outcome.inserted, outcome.generation)
            } else {
                format!("OK deleted {} gen={}", outcome.deleted, outcome.generation)
            }
        }
        Err(e) => format!("ERR {e}"),
    }
}

/// Types raw wire fields against `table`'s served schema, producing the value rows a
/// [`Mutation`] takes. Errors are rendered `ERR` responses.
fn type_rows(
    state: &ServerState,
    table: &str,
    rows: &[Vec<String>],
) -> Result<Vec<Vec<Value>>, String> {
    let Some(lease) = state.registry.read(table) else {
        return Err(format!("ERR no snapshot published for table `{table}`"));
    };
    let Some(ctx) = lease.snapshot().context_of(table) else {
        return Err(format!("ERR registry snapshot for `{table}` does not contain that relation"));
    };
    let attributes = ctx.instance().schema().attributes();
    let mut typed: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != attributes.len() {
            return Err(format!(
                "ERR row has {} value(s) but `{table}` has {} column(s)",
                row.len(),
                attributes.len()
            ));
        }
        let mut values = Vec::with_capacity(row.len());
        for (field, attribute) in row.iter().zip(attributes) {
            match attribute.ty {
                ValueType::Int => match field.parse::<i64>() {
                    Ok(n) => values.push(Value::int(n)),
                    Err(_) => {
                        return Err(format!(
                            "ERR `{field}` is not an integer (column `{}`)",
                            attribute.name
                        ))
                    }
                },
                ValueType::Name => values.push(Value::name(field)),
            }
        }
        typed.push(values);
    }
    Ok(typed)
}

/// Resolves `specs` against the plan cache, pins **one** snapshot lease for all of
/// them, and runs them through a [`BatchExecutor`] over that lease. Returns the lease
/// (for the generation tag) and one rendered response block per spec.
fn execute_specs(
    state: &ServerState,
    specs: &[ExecSpec],
) -> Result<(SnapshotLease, Vec<String>), String> {
    let prepared = state.prepared.read().expect("prepared lock");
    let entries: Vec<Arc<PreparedEntry>> = specs
        .iter()
        .map(|spec| {
            prepared
                .get(&spec.id)
                .cloned()
                .ok_or_else(|| format!("unknown prepared query `{}` (PREPARE it first)", spec.id))
        })
        .collect::<Result<_, _>>()?;
    drop(prepared);
    let table = &entries[0].table;
    if let Some(mixed) = entries.iter().find(|entry| entry.table != *table) {
        return Err(format!(
            "a batch pins one snapshot: all queries must read one table (got `{table}` and `{}`)",
            mixed.table
        ));
    }
    let lease = state
        .registry
        .read(table)
        .ok_or_else(|| format!("no snapshot published for table `{table}`"))?;
    // One pinned snapshot for the whole request: every answer below is bit-identical
    // to PreparedQuery::execute / consistent_answer on this exact snapshot. The
    // server-wide tuner feeds measured chunk costs across requests, so single-EXEC
    // traffic converges its chunk split over the connection's lifetime.
    let executor = BatchExecutor::with_tuner(
        pdqi_core::EngineSnapshot::clone(lease.snapshot()),
        state.parallelism,
        Arc::clone(&state.tuner),
    );
    // PROFILE specs bypass the executor: a profile walks the repair product in
    // deterministic order on the leased snapshot itself. Executor blocks are
    // re-interleaved in spec order below, so mixed batches keep their shape.
    let requests: Vec<BatchRequest> = specs
        .iter()
        .zip(&entries)
        .filter(|(spec, _)| spec.mode != ExecMode::Profile)
        .map(|(spec, entry)| {
            let query = Arc::clone(&entry.query);
            match spec.mode.semantics() {
                Some(semantics) => BatchRequest::execute(query, spec.family, semantics),
                None => BatchRequest::consistent_answer(query, spec.family),
            }
        })
        .collect();
    let mut executor_blocks = executor
        .run(&requests)
        .into_iter()
        .map(|result| match result {
            Err(e) => format!("error query error: {e}"),
            Ok(BatchResponse::Rows(answers)) => {
                let mut block =
                    format!("rows {}\n{}", answers.rows().len(), answers.columns().join("\t"));
                for row in answers.rows() {
                    // Values are escaped so embedded tabs/newlines cannot shift the
                    // positional row structure (the client unescapes per field).
                    let rendered: Vec<String> =
                        row.iter().map(|v| escape_field(&v.to_string())).collect();
                    block.push('\n');
                    block.push_str(&rendered.join("\t"));
                }
                block
            }
            Ok(BatchResponse::Outcome(outcome)) => {
                let verdict = if outcome.certainly_true {
                    "true"
                } else if outcome.certainly_false {
                    "false"
                } else {
                    "undetermined"
                };
                format!("outcome {verdict} examined={}", outcome.examined)
            }
        })
        .collect::<Vec<String>>()
        .into_iter();
    let position = |at: Option<u128>| at.map_or("none".to_string(), |v| v.to_string());
    let blocks = specs
        .iter()
        .zip(&entries)
        .map(|(spec, entry)| {
            if spec.mode != ExecMode::Profile {
                return executor_blocks.next().expect("one executor block per non-profile spec");
            }
            match entry.query.closed_profile(lease.snapshot(), spec.family) {
                Ok(profile) => format!(
                    "profile total={} first_true={} first_false={}",
                    profile.total,
                    position(profile.first_true),
                    position(profile.first_false)
                ),
                Err(e) => format!("error query error: {e}"),
            }
        })
        .collect();
    Ok((lease, blocks))
}
