//! The scatter-gather coordinator: one protocol front end over N key-range shards.
//!
//! A coordinator is a *serve-compatible* process: it listens on the same
//! length-prefixed frame protocol `pdqi serve` speaks, so `pdqi connect` (and
//! [`Client`]) work against it unmodified — but behind the front end every request
//! fans out to the shard endpoints of a [`ShardPlan`] and the per-shard answers merge
//! back into one response:
//!
//! ```text
//!                        ┌────────────┐      ┌──────────────────┐
//!  pdqi connect ───────► │ pdqi coord │ ───► │ pdqi serve shard0 │  keys < split
//!     (frames)           │  scatter/  │ ───► │ pdqi serve shard1 │  keys ≥ split
//!                        │   gather   │      └──────────────────┘
//!                        └────────────┘   one Client per shard, PREPARE on all,
//!                                         EXEC/BATCH fan-out, mutations routed
//! ```
//!
//! # Merge rules
//!
//! Soundness rests on the routing invariant of [`pdqi_core::shard_plan`]: no conflict
//! edge crosses a shard boundary, so the mirror instance's repair product factorises
//! as the shard-ordered cartesian product of per-shard repair products. For queries
//! with a **single positive relation atom** (what the coordinator's `PREPARE`
//! admits), the folds then merge per shard:
//!
//! | request            | merge                                                      |
//! |--------------------|------------------------------------------------------------|
//! | `EXEC … CERTAIN`   | union of per-shard certain rows                            |
//! | `EXEC … POSSIBLE`  | union of per-shard possible rows                           |
//! | `EXEC … CLOSED`    | certainly-true = **or**, certainly-false = **and**; the    |
//! |                    | `examined` counter replays from per-shard `PROFILE`s       |
//! | `INSERT`/`DELETE`  | routed to the owning shard by key range, counts summed     |
//! | `SET-PRIORITY`     | global tuple ids translated by per-shard row offsets       |
//!
//! *Certain is a union, not an intersection*: a row certain on one shard appears in
//! every combination of the repair product (the other shards' repairs cannot remove
//! it), and a row certain on no shard has a refuting combination assembled from one
//! refuting repair per shard. The closed `examined` counter is exact, not just the
//! verdict: shard `s`'s positions scale by the suffix weight `W_s = Π_{s'>s}
//! total_{s'}` of the row-major product order, the global first-true is the minimum
//! of `ft_s·W_s`, the global first-false the sum of `ff_s·W_s` (the lexicographically
//! least all-false combination), and [`ClosedProfile::outcome`] replays the verdict
//! and stop position from those — bit-identical to single-snapshot execution.
//!
//! Responses carry both `gen=<sum>` (so [`Client`]'s tag parser keeps working) and a
//! per-shard generation vector `gens=<g0>,<g1>,…` a client can pin a consistent cut
//! with. Subscriptions are not proxied (`SUBSCRIBE` answers `ERR`): push channels
//! belong to the shard that owns the data — connect to it directly. `SHUTDOWN` stops
//! the coordinator only; shards are independent processes with their own lifecycle.

use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pdqi_core::shard_plan::type_value;
use pdqi_core::{ClosedProfile, CqaOutcome, RouteSpec, ShardPlan};
use pdqi_query::ast::{Formula, Term};
use pdqi_query::classify::{classify, QueryClass};
use pdqi_query::parse_formula;
use pdqi_relation::{Value, ValueType};

use crate::client::{Client, ClientError, ExecOutcome, TableDescription};
use crate::protocol::{escape_field, write_frame, ExecMode, ExecSpec, FrameError, Request};
use crate::server::read_frame_patient;

/// Cap on the coordinator's prepared-query map, mirroring the server's plan cache:
/// ids are client-chosen, so overflow clears wholesale.
const PREPARED_CACHE_LIMIT: usize = 4096;

/// How often blocked accept loops back off after persistent failures.
const ACCEPT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(50);

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Accept-loop threads sharing the listener (clamped to at least 1).
    pub acceptors: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig { acceptors: 1 }
    }
}

/// One shard endpoint: its address and a lazily-(re)connected [`Client`].
struct ShardSlot {
    index: usize,
    addr: String,
    client: Mutex<Option<Client>>,
}

impl ShardSlot {
    /// Runs `f` on this shard's connection, reconnecting once on a transport error
    /// (the protocol's requests are idempotent: set-semantics mutations, replacing
    /// priorities, re-`PREPARE`s). Errors name the shard so a one-shard-down failure
    /// is diagnosable from the merged `ERR` alone.
    fn call<T>(&self, f: impl Fn(&mut Client) -> Result<T, ClientError>) -> Result<T, String> {
        let mut guard = self.client.lock().expect("shard client lock");
        for attempt in 0..2 {
            if guard.is_none() {
                match Client::connect(&*self.addr) {
                    Ok(client) => *guard = Some(client),
                    Err(e) => return Err(self.unreachable(&e.to_string())),
                }
            }
            let client = guard.as_mut().expect("shard connection");
            match f(client) {
                Ok(value) => return Ok(value),
                Err(ClientError::Frame(e)) => {
                    // The connection is gone or desynchronised: drop it and retry
                    // once on a fresh one before reporting the shard unreachable.
                    *guard = None;
                    if attempt == 1 {
                        return Err(self.unreachable(&e.to_string()));
                    }
                }
                Err(ClientError::Server(message)) => {
                    return Err(format!("shard {} ({}): {message}", self.index, self.addr))
                }
                Err(e) => return Err(format!("shard {} ({}): {e}", self.index, self.addr)),
            }
        }
        unreachable!("the retry loop returns on every path")
    }

    fn unreachable(&self, detail: &str) -> String {
        format!("shard {} ({}) unreachable: {detail}", self.index, self.addr)
    }
}

/// One routed table: its typed key-range plan and the schema every shard agreed on.
struct TableRoute {
    plan: ShardPlan,
    columns: Vec<(String, ValueType)>,
}

/// What the coordinator remembers about a `PREPARE`d query.
struct CoordPrepared {
    table: String,
    /// The free variables in answer-column order (lexicographic, like the engine's).
    free: Vec<String>,
    /// The value type of each answer column, resolved through the relation atom —
    /// merged rows re-type wire fields so numeric columns sort numerically.
    free_types: Vec<ValueType>,
    /// Ground class: closed answers under the plain-repair family take the
    /// polynomial fast path (`examined == 0`) on shards and mirror alike, so the
    /// coordinator merges `CLOSED` verdicts directly instead of profiling.
    ground: bool,
}

/// State shared by every coordinator connection handler.
struct CoordinatorState {
    shards: Vec<ShardSlot>,
    routes: HashMap<String, TableRoute>,
    prepared: RwLock<HashMap<String, Arc<CoordPrepared>>>,
    /// Last generation observed per shard (monotone via `fetch_max`): the `gens=`
    /// vector of every response.
    gens: Vec<AtomicU64>,
    acceptors: usize,
    shutdown: AtomicBool,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
}

impl CoordinatorState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn note_gen(&self, shard: usize, generation: u64) {
        self.gens[shard].fetch_max(generation, Ordering::Relaxed);
    }

    /// Renders `gen=<sum> gens=<g0>,<g1>,…` from the observed generation vector.
    fn gen_tags(&self) -> String {
        let gens: Vec<u64> = self.gens.iter().map(|g| g.load(Ordering::Relaxed)).collect();
        let sum: u64 = gens.iter().sum();
        let list: Vec<String> = gens.iter().map(u64::to_string).collect();
        format!("gen={sum} gens={}", list.join(","))
    }

    /// Fans `f` out to every shard concurrently and gathers per-shard results.
    fn scatter<T: Send>(
        &self,
        f: impl Fn(usize, &mut Client) -> Result<T, ClientError> + Sync,
    ) -> Vec<Result<T, String>> {
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|slot| scope.spawn(move || slot.call(|client| f(slot.index, client))))
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| Err("shard worker panicked".to_string()))
                })
                .collect()
        })
    }
}

/// A handle on a running coordinator: its address, a shutdown trigger, a join point.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    state: Arc<CoordinatorState>,
    acceptors: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl CoordinatorHandle {
    /// The address the coordinator is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the coordinator to stop and joins every thread. Shards keep running —
    /// they are independent processes with their own lifecycle.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.addr);
        }
        self.join_threads();
    }

    /// Blocks until the coordinator stops (via a remote `SHUTDOWN` command).
    pub fn wait(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        for acceptor in self.acceptors.drain(..) {
            let _ = acceptor.join();
        }
        let connections = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for connection in connections {
            let _ = connection.join();
        }
    }
}

/// Binds `addr` and starts coordinating over `shard_addrs` — see the
/// [module docs](self).
///
/// Startup is fail-fast: every shard is contacted, every routed table `DESCRIBE`d on
/// every shard, schemas checked for agreement, key columns resolved and split values
/// typed into [`ShardPlan`]s. Each route must carve the key domain into exactly
/// `shard_addrs.len()` ranges.
pub fn coordinate(
    addr: impl ToSocketAddrs,
    shard_addrs: &[String],
    routes: &[RouteSpec],
    config: CoordinatorConfig,
) -> io::Result<CoordinatorHandle> {
    if shard_addrs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a coordinator needs at least one shard endpoint",
        ));
    }
    let shards: Vec<ShardSlot> = shard_addrs
        .iter()
        .enumerate()
        .map(|(index, addr)| ShardSlot { index, addr: addr.clone(), client: Mutex::new(None) })
        .collect();
    let gens: Vec<AtomicU64> = shard_addrs.iter().map(|_| AtomicU64::new(0)).collect();
    let mut table_routes = HashMap::new();
    for route in routes {
        if route.splits.len() + 1 != shards.len() {
            return Err(io::Error::other(format!(
                "route `{route}` carves {} shard range(s) but {} shard endpoint(s) were given",
                route.splits.len() + 1,
                shards.len()
            )));
        }
        let mut agreed: Option<Vec<(String, ValueType)>> = None;
        for slot in &shards {
            let description =
                slot.call(|client| client.describe(&route.table)).map_err(io::Error::other)?;
            gens[slot.index].fetch_max(description.generation, Ordering::Relaxed);
            match &agreed {
                None => agreed = Some(description.columns),
                Some(columns) if *columns == description.columns => {}
                Some(_) => {
                    return Err(io::Error::other(format!(
                        "shard {} ({}) disagrees on `{}`'s schema",
                        slot.index, slot.addr, route.table
                    )))
                }
            }
        }
        let columns = agreed.expect("at least one shard");
        let Some(key_column) = columns.iter().position(|(name, _)| *name == route.key_column)
        else {
            return Err(io::Error::other(format!(
                "`{}` is not a column of `{}`",
                route.key_column, route.table
            )));
        };
        let plan = route
            .typed(key_column, columns[key_column].1)
            .map_err(|e| io::Error::other(format!("route `{route}`: {e}")))?;
        table_routes.insert(route.table.clone(), TableRoute { plan, columns });
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let acceptor_count = config.acceptors.max(1);
    let state = Arc::new(CoordinatorState {
        shards,
        routes: table_routes,
        prepared: RwLock::new(HashMap::new()),
        gens,
        acceptors: acceptor_count,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
    });
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut acceptors = Vec::new();
    for _ in 0..acceptor_count {
        let listener = listener.try_clone()?;
        let state = Arc::clone(&state);
        let connections = Arc::clone(&connections);
        let wake_addr = addr;
        acceptors.push(std::thread::spawn(move || {
            accept_loop(&listener, wake_addr, &state, &connections);
        }));
    }
    Ok(CoordinatorHandle { addr, state, acceptors, connections })
}

fn accept_loop(
    listener: &TcpListener,
    wake_addr: SocketAddr,
    state: &Arc<CoordinatorState>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if state.shutting_down() {
                return;
            }
            std::thread::sleep(ACCEPT_BACKOFF);
            continue;
        };
        if state.shutting_down() {
            return;
        }
        let state = Arc::clone(state);
        let handle = std::thread::spawn(move || {
            handle_connection(stream, &state, wake_addr);
        });
        connections.lock().expect("connection list").push(handle);
        let mut list = connections.lock().expect("connection list");
        let mut index = 0;
        while index < list.len() {
            if list[index].is_finished() {
                let _ = list.swap_remove(index).join();
            } else {
                index += 1;
            }
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<CoordinatorState>, wake_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(50)));
    let mut reader = match stream.try_clone() {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let mut writer = io::BufWriter::new(stream);
    loop {
        if state.shutting_down() {
            return;
        }
        let payload = match read_frame_patient(&mut reader, &state.shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) => continue,
            Err(FrameError::Closed) => return,
            Err(malformed) => {
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(&mut writer, &format!("ERR {malformed}"));
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (mut response, shutdown) = match Request::parse(&payload) {
            Err(message) => {
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                (format!("ERR {message}"), false)
            }
            Ok(Request::Shutdown) => ("OK bye".to_string(), true),
            Ok(request) => (dispatch(state, &request), false),
        };
        if response.len() > crate::protocol::MAX_FRAME_BYTES {
            response = format!(
                "ERR response too large ({} bytes exceeds the {}-byte frame limit); \
                 narrow the query",
                response.len(),
                crate::protocol::MAX_FRAME_BYTES
            );
        }
        if write_frame(&mut writer, &response).is_err() {
            return;
        }
        if shutdown {
            let _ = writer.flush();
            state.shutdown.store(true, Ordering::Relaxed);
            for _ in 0..state.acceptors {
                let _ = TcpStream::connect(wake_addr);
            }
            return;
        }
    }
}

/// Answers one well-formed request by scattering it over the shards and merging.
fn dispatch(state: &CoordinatorState, request: &Request) -> String {
    match request {
        Request::Ping => "OK pong".to_string(),
        Request::Prepare { id, query } => prepare(state, id, query),
        Request::Exec(spec) => match run_specs(state, std::slice::from_ref(spec)) {
            Err(message) => format!("ERR {message}"),
            Ok(mut blocks) => {
                let block = blocks.pop().expect("one merged block per spec");
                match block.strip_prefix("error ") {
                    Some(message) => format!("ERR {message}"),
                    None => {
                        let (head, rest) = match block.split_once('\n') {
                            Some((head, rest)) => (head, Some(rest)),
                            None => (block.as_str(), None),
                        };
                        let mut out = format!("OK {head} {}", state.gen_tags());
                        if let Some(rest) = rest {
                            out.push('\n');
                            out.push_str(rest);
                        }
                        out
                    }
                }
            }
        },
        Request::Batch(specs) => match run_specs(state, specs) {
            Err(message) => format!("ERR {message}"),
            Ok(blocks) => {
                let mut out = format!("OK batch {} {}", blocks.len(), state.gen_tags());
                for block in blocks {
                    out.push('\n');
                    out.push_str(&block);
                }
                out
            }
        },
        Request::Insert { table, rows } => {
            route_mutation(state, table, rows, &[], MutationOp::Insert)
        }
        Request::Delete { table, rows } => {
            route_mutation(state, table, rows, &[], MutationOp::Delete)
        }
        Request::Mutate { table, inserts, deletes } => {
            route_mutation(state, table, inserts, deletes, MutationOp::Mixed)
        }
        Request::SetPriority { table, pairs } => set_priority(state, table, pairs),
        Request::Describe { table } => {
            let results = state.scatter(|_, client| client.describe(table));
            let mut descriptions = Vec::with_capacity(results.len());
            for (shard, result) in results.into_iter().enumerate() {
                match result {
                    Err(message) => return format!("ERR {message}"),
                    Ok(description) => {
                        state.note_gen(shard, description.generation);
                        descriptions.push(description);
                    }
                }
            }
            let rows: usize = descriptions.iter().map(|d| d.rows).sum();
            let mut out = format!("OK describe {table} rows={rows} {}", state.gen_tags());
            for (name, ty) in &descriptions[0].columns {
                let ty = match ty {
                    ValueType::Int => "INT",
                    ValueType::Name => "NAME",
                };
                out.push('\n');
                out.push_str(&escape_field(name));
                out.push('\t');
                out.push_str(ty);
            }
            out
        }
        Request::Stats => {
            let mut out = format!(
                "OK stats shards={} routes={} prepared={} requests={} protocol_errors={}",
                state.shards.len(),
                state.routes.len(),
                state.prepared.read().expect("prepared lock").len(),
                state.requests.load(Ordering::Relaxed),
                state.protocol_errors.load(Ordering::Relaxed),
            );
            for slot in &state.shards {
                out.push_str(&format!(
                    "\nshard {} addr={} gen={}",
                    slot.index,
                    slot.addr,
                    state.gens[slot.index].load(Ordering::Relaxed),
                ));
            }
            out
        }
        Request::Alter { .. } => {
            // A new FD can create conflict edges between tuples in *different* key
            // ranges, breaking the no-cross-shard-edge invariant every merge rule
            // above rests on. Refusing is the only sound answer: constraint changes
            // belong in the shard plan, re-sharded so the invariant is re-established.
            "ERR ALTER is not supported through the coordinator (a new FD can create \
             conflict edges across shard boundaries; rebuild the shard plan instead)"
                .to_string()
        }
        Request::Subscribe { .. } | Request::Unsubscribe { .. } => {
            "ERR subscriptions are not supported through the coordinator \
             (connect to a shard directly)"
                .to_string()
        }
        Request::Explain { .. } => {
            // Each shard plans against its own snapshot and cardinalities; there is
            // no single merged physical plan to report for the scattered execution.
            "ERR EXPLAIN is not supported through the coordinator (each shard plans \
             independently; connect to a shard directly)"
                .to_string()
        }
        Request::Shutdown => unreachable!("SHUTDOWN is handled by the connection loop"),
    }
}

/// Validates a query for shard distribution, fans `PREPARE` out to every shard, and
/// remembers the answer-column types the merge needs.
///
/// Distributable queries have exactly one **positive** relation atom (no `NOT`,
/// `->`, `FORALL`): a single atom keeps every witness tuple on one shard, so
/// per-repair evaluation is the union of per-shard evaluations and the merge rules
/// of the [module docs](self) are exact. Joins and negation would need cross-shard
/// evaluation the coordinator deliberately does not do.
fn prepare(state: &CoordinatorState, id: &str, query: &str) -> String {
    let formula = match parse_formula(query) {
        Ok(formula) => formula,
        Err(e) => return format!("ERR query error: {e}"),
    };
    let relations = formula.relations();
    if relations.len() != 1 {
        return format!(
            "ERR queries must read exactly one table (this one reads {})",
            relations.len()
        );
    }
    let table = relations.into_iter().next().expect("one relation");
    let Some(route) = state.routes.get(&table) else {
        return format!("ERR no route for table `{table}` (pass --route {table}:<key>:…)");
    };
    let mut atoms = Vec::new();
    if !collect_atoms(&formula, &mut atoms) {
        return "ERR query is not distributable: the coordinator serves positive queries \
                only (no NOT, ->, FORALL)"
            .to_string();
    }
    let [atom] = atoms.as_slice() else {
        return format!(
            "ERR query is not distributable: exactly one relation atom is required \
             (this query has {})",
            atoms.len()
        );
    };
    if atom.args.len() != route.columns.len() {
        return format!(
            "ERR `{table}` has {} column(s) but the atom has {} argument(s)",
            route.columns.len(),
            atom.args.len()
        );
    }
    let free = formula.free_vars();
    let mut free_types = Vec::with_capacity(free.len());
    for var in &free {
        let Some(position) =
            atom.args.iter().position(|term| matches!(term, Term::Var(name) if name == var))
        else {
            return format!(
                "ERR query is not distributable: free variable `{var}` does not appear \
                 in the relation atom"
            );
        };
        free_types.push(route.columns[position].1);
    }
    let ground = classify(&formula) == QueryClass::Ground;
    let results = state.scatter(|_, client| client.prepare(id, query));
    for result in results {
        if let Err(message) = result {
            return format!("ERR {message}");
        }
    }
    let entry =
        Arc::new(CoordPrepared { table: table.clone(), free: free.clone(), free_types, ground });
    let mut prepared = state.prepared.write().expect("prepared lock");
    if prepared.len() >= PREPARED_CACHE_LIMIT && !prepared.contains_key(id) {
        prepared.clear();
    }
    prepared.insert(id.to_string(), entry);
    format!("OK prepared {id} table={table} columns={}", free.join(","))
}

/// Collects the relation atoms of `formula`; returns `false` if the formula uses a
/// non-monotone connective (`NOT`, `->`, `FORALL`) the merge rules do not cover.
fn collect_atoms<'a>(formula: &'a Formula, out: &mut Vec<&'a pdqi_query::ast::Atom>) -> bool {
    match formula {
        Formula::True | Formula::False | Formula::Comparison(..) => true,
        Formula::Atom(atom) => {
            out.push(atom);
            true
        }
        Formula::And(lhs, rhs) | Formula::Or(lhs, rhs) => {
            collect_atoms(lhs, out) && collect_atoms(rhs, out)
        }
        Formula::Exists(_, body) => collect_atoms(body, out),
        Formula::Not(..) | Formula::Implies(..) | Formula::Forall(..) => false,
    }
}

/// Resolves `specs` against the prepared map, fans one `BATCH` per shard out (closed
/// entries rewritten to `PROFILE` so `examined` merges exactly), and merges each
/// entry back into a rendered response block.
fn run_specs(state: &CoordinatorState, specs: &[ExecSpec]) -> Result<Vec<String>, String> {
    let prepared = state.prepared.read().expect("prepared lock");
    let infos: Vec<Arc<CoordPrepared>> = specs
        .iter()
        .map(|spec| {
            prepared
                .get(&spec.id)
                .cloned()
                .ok_or_else(|| format!("unknown prepared query `{}` (PREPARE it first)", spec.id))
        })
        .collect::<Result<_, _>>()?;
    drop(prepared);
    let table = &infos[0].table;
    if let Some(mixed) = infos.iter().find(|info| info.table != *table) {
        return Err(format!(
            "a batch pins one snapshot: all queries must read one table (got `{table}` and `{}`)",
            mixed.table
        ));
    }
    // Closed entries go out as PROFILE (except the ground/plain-repair fast path,
    // which answers examined == 0 on shards and mirror alike): the verdict alone
    // cannot reproduce the mirror's `examined`, the profile can.
    let shard_specs: Vec<ExecSpec> = specs
        .iter()
        .zip(&infos)
        .map(|(spec, info)| {
            let mode = match spec.mode {
                ExecMode::Closed if !(spec.family == pdqi_core::FamilyKind::Rep && info.ground) => {
                    ExecMode::Profile
                }
                mode => mode,
            };
            ExecSpec { id: spec.id.clone(), family: spec.family, mode }
        })
        .collect();
    let results = state.scatter(|_, client| client.batch(shard_specs.clone()));
    let mut per_shard: Vec<Vec<ExecOutcome>> = Vec::with_capacity(results.len());
    for (shard, result) in results.into_iter().enumerate() {
        let (outcomes, generation) = result?;
        state.note_gen(shard, generation);
        per_shard.push(outcomes);
    }
    let blocks = specs
        .iter()
        .zip(&infos)
        .enumerate()
        .map(|(entry, (spec, info))| {
            let shard_outcomes: Vec<&ExecOutcome> =
                per_shard.iter().map(|outcomes| &outcomes[entry]).collect();
            merge_entry(spec, info, &shard_outcomes)
        })
        .collect();
    Ok(blocks)
}

/// Merges one batch entry's per-shard outcomes into a rendered response block.
fn merge_entry(spec: &ExecSpec, info: &CoordPrepared, shards: &[&ExecOutcome]) -> String {
    if let Some(ExecOutcome::Error(message)) =
        shards.iter().find(|outcome| matches!(outcome, ExecOutcome::Error(_)))
    {
        return format!("error {message}");
    }
    match spec.mode {
        ExecMode::Certain | ExecMode::Possible => merge_rows(info, shards),
        ExecMode::Profile => match merge_profiles(shards) {
            Err(message) => format!("error {message}"),
            Ok(profile) => {
                let position = |at: Option<u128>| at.map_or("none".to_string(), |v| v.to_string());
                format!(
                    "profile total={} first_true={} first_false={}",
                    profile.total,
                    position(profile.first_true),
                    position(profile.first_false)
                )
            }
        },
        ExecMode::Closed if spec.family == pdqi_core::FamilyKind::Rep && info.ground => {
            // Per-shard ground fast-path verdicts: certainly-true is an OR (a shard's
            // certain truth survives every combination), certainly-false an AND.
            let mut certainly_true = false;
            let mut certainly_false = true;
            for outcome in shards {
                let ExecOutcome::Outcome { verdict, .. } = outcome else {
                    return "error shard answered a CLOSED request with a non-outcome block"
                        .to_string();
                };
                certainly_true |= verdict == "true";
                certainly_false &= verdict == "false";
            }
            let outcome = CqaOutcome { certainly_true, certainly_false, examined: 0 };
            render_outcome(&outcome)
        }
        ExecMode::Closed => match merge_profiles(shards) {
            Err(message) => format!("error {message}"),
            Ok(profile) => render_outcome(&profile.outcome()),
        },
    }
}

fn render_outcome(outcome: &CqaOutcome) -> String {
    let verdict = if outcome.certainly_true {
        "true"
    } else if outcome.certainly_false {
        "false"
    } else {
        "undetermined"
    };
    format!("outcome {verdict} examined={}", outcome.examined)
}

/// Merges per-shard open-query answers: the union of per-shard rows, re-typed so the
/// merged [`BTreeSet`] sorts exactly like the engine's (numeric columns numerically,
/// names lexicographically) and re-rendered in that order.
fn merge_rows(info: &CoordPrepared, shards: &[&ExecOutcome]) -> String {
    let mut merged: BTreeSet<Vec<Value>> = BTreeSet::new();
    for outcome in shards {
        let ExecOutcome::Rows { rows, .. } = outcome else {
            return "error shard answered a row request with a non-row block".to_string();
        };
        for row in rows {
            if row.len() != info.free_types.len() {
                return format!(
                    "error shard row has {} field(s), expected {}",
                    row.len(),
                    info.free_types.len()
                );
            }
            let typed: Result<Vec<Value>, _> = row
                .iter()
                .zip(&info.free_types)
                .map(|(field, ty)| type_value(field, *ty))
                .collect();
            match typed {
                Ok(values) => {
                    merged.insert(values);
                }
                Err(e) => return format!("error shard row does not type: {e}"),
            }
        }
    }
    let mut block = format!("rows {}\n{}", merged.len(), info.free.join("\t"));
    for row in &merged {
        let rendered: Vec<String> = row.iter().map(|v| escape_field(&v.to_string())).collect();
        block.push('\n');
        block.push_str(&rendered.join("\t"));
    }
    block
}

/// Merges per-shard closed profiles over the row-major product order: shard `s`'s
/// positions scale by the suffix weight `W_s = Π_{s'>s} total_{s'}`; the global
/// first-true is the least single-shard witness, the global first-false the
/// lexicographically least all-false combination.
fn merge_profiles(shards: &[&ExecOutcome]) -> Result<ClosedProfile, String> {
    let mut parts = Vec::with_capacity(shards.len());
    for outcome in shards {
        let ExecOutcome::Profile { total, first_true, first_false } = outcome else {
            return Err("shard answered a PROFILE request with a non-profile block".to_string());
        };
        parts.push((*total, *first_true, *first_false));
    }
    let mut total: u128 = 1;
    for &(t, _, _) in &parts {
        total = total.saturating_mul(t);
    }
    if total == 0 {
        return Ok(ClosedProfile { total: 0, first_true: None, first_false: None });
    }
    let mut weights = vec![1u128; parts.len()];
    for s in (0..parts.len().saturating_sub(1)).rev() {
        weights[s] = weights[s + 1].saturating_mul(parts[s + 1].0);
    }
    let first_true = parts
        .iter()
        .zip(&weights)
        .filter_map(|((_, ft, _), weight)| ft.map(|at| at.saturating_mul(*weight)))
        .min();
    let mut first_false = Some(0u128);
    for ((_, _, ff), weight) in parts.iter().zip(&weights) {
        first_false = match (first_false, ff) {
            (Some(sum), Some(at)) => Some(sum.saturating_add(at.saturating_mul(*weight))),
            _ => None,
        };
    }
    Ok(ClosedProfile { total, first_true, first_false })
}

/// Which mutation request [`route_mutation`] is routing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MutationOp {
    Insert,
    Delete,
    /// A `MUTATE` request: `primary` holds the inserts, `deletes` the deletes.
    Mixed,
}

/// Routes `INSERT`/`DELETE`/`MUTATE` rows to their owning shards by key range and
/// applies them there; untouched shards are skipped entirely (no generation bump —
/// exactly the rows' owners swap).
fn route_mutation(
    state: &CoordinatorState,
    table: &str,
    primary: &[Vec<String>],
    deletes: &[Vec<String>],
    op: MutationOp,
) -> String {
    let Some(route) = state.routes.get(table) else {
        return format!("ERR no route for table `{table}` (pass --route {table}:<key>:…)");
    };
    let bucket = |rows: &[Vec<String>]| -> Result<Vec<Vec<Vec<String>>>, String> {
        let mut buckets = vec![Vec::new(); state.shards.len()];
        for row in rows {
            if row.len() != route.columns.len() {
                return Err(format!(
                    "row has {} value(s) but `{table}` has {} column(s)",
                    row.len(),
                    route.columns.len()
                ));
            }
            let key_text = &row[route.plan.key_column()];
            let key =
                type_value(key_text, route.columns[route.plan.key_column()].1).map_err(|_| {
                    format!(
                        "`{key_text}` is not a valid key for column `{}`",
                        route.columns[route.plan.key_column()].0
                    )
                })?;
            buckets[route.plan.shard_of(&key)].push(row.clone());
        }
        Ok(buckets)
    };
    let primary_buckets = match bucket(primary) {
        Ok(buckets) => buckets,
        Err(message) => return format!("ERR {message}"),
    };
    let delete_buckets = match bucket(deletes) {
        Ok(buckets) => buckets,
        Err(message) => return format!("ERR {message}"),
    };
    let mut inserted = 0usize;
    let mut deleted = 0usize;
    // (inserted, deleted, generation) from the shards that received rows.
    type ShardWrite = Result<(usize, usize, u64), String>;
    let results: Vec<Option<ShardWrite>> = std::thread::scope(|scope| {
        let handles: Vec<_> = state
            .shards
            .iter()
            .map(|slot| {
                let rows = &primary_buckets[slot.index];
                let dels = &delete_buckets[slot.index];
                if rows.is_empty() && dels.is_empty() {
                    return None;
                }
                Some(scope.spawn(move || {
                    slot.call(|client| match op {
                        MutationOp::Mixed => client.mutate(table, rows, dels),
                        MutationOp::Insert => {
                            client.insert(table, rows).map(|(i, gen)| (i, 0, gen))
                        }
                        MutationOp::Delete => {
                            client.delete(table, rows).map(|(d, gen)| (0, d, gen))
                        }
                    })
                }))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .map(|h| h.join().unwrap_or_else(|_| Err("shard worker panicked".to_string())))
            })
            .collect()
    });
    for (shard, result) in results.into_iter().enumerate() {
        match result {
            None => {}
            Some(Err(message)) => return format!("ERR {message}"),
            Some(Ok((i, d, generation))) => {
                inserted += i;
                deleted += d;
                state.note_gen(shard, generation);
            }
        }
    }
    match op {
        MutationOp::Mixed => {
            format!("OK mutated inserted {inserted} deleted {deleted} {}", state.gen_tags())
        }
        MutationOp::Insert => format!("OK inserted {inserted} {}", state.gen_tags()),
        MutationOp::Delete => format!("OK deleted {deleted} {}", state.gen_tags()),
    }
}

/// Translates global tuple-id pairs into per-shard local ids and replaces every
/// shard's priority in one scatter.
///
/// The coordinator's global tuple-id space is the concatenation of the shard row
/// blocks in shard order, so the translation needs the shards' **current** row
/// counts — a fresh `DESCRIBE` fan-out, not a startup-cached one, because mutations
/// shift the offsets. A pair whose endpoints live on different shards is rejected:
/// cross-shard tuples share no conflict component, so no preference between them can
/// affect any repair (the mirror would simply reject the non-edge pair too).
fn set_priority(state: &CoordinatorState, table: &str, pairs: &[(u32, u32)]) -> String {
    if !state.routes.contains_key(table) {
        return format!("ERR no route for table `{table}` (pass --route {table}:<key>:…)");
    }
    let descriptions = state.scatter(|_, client| client.describe(table));
    let mut counts = Vec::with_capacity(descriptions.len());
    for (shard, result) in descriptions.into_iter().enumerate() {
        match result {
            Err(message) => return format!("ERR {message}"),
            Ok(TableDescription { rows, generation, .. }) => {
                state.note_gen(shard, generation);
                counts.push(rows as u64);
            }
        }
    }
    let mut offsets = Vec::with_capacity(counts.len());
    let mut at = 0u64;
    for &count in &counts {
        offsets.push(at);
        at += count;
    }
    let total = at;
    let shard_of = |id: u32| -> Result<usize, String> {
        if u64::from(id) >= total {
            return Err(format!("tuple id {id} is out of range (the table has {total} row(s))"));
        }
        Ok(offsets.partition_point(|&offset| offset <= u64::from(id)) - 1)
    };
    let mut shard_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); state.shards.len()];
    for &(winner, loser) in pairs {
        let (ws, ls) = match (shard_of(winner), shard_of(loser)) {
            (Ok(ws), Ok(ls)) => (ws, ls),
            (Err(message), _) | (_, Err(message)) => return format!("ERR {message}"),
        };
        if ws != ls {
            return format!(
                "ERR priority pair {winner}>{loser} crosses shards (tuples on shard {ws} \
                 and shard {ls} never conflict)"
            );
        }
        shard_pairs[ws].push((
            winner - u32::try_from(offsets[ws]).unwrap_or(0),
            loser - u32::try_from(offsets[ls]).unwrap_or(0),
        ));
    }
    // SET-PRIORITY replaces the table's whole priority, so every shard swaps — a
    // shard with no pair of its own installs the empty priority, exactly as the
    // mirror replaces preferences for tuples the pair list no longer mentions.
    let results = state.scatter(|shard, client| client.set_priority(table, &shard_pairs[shard]));
    for (shard, result) in results.into_iter().enumerate() {
        match result {
            Err(message) => return format!("ERR {message}"),
            Ok(generation) => state.note_gen(shard, generation),
        }
    }
    format!("OK swapped {table} {}", state.gen_tags())
}
