//! Loopback smoke tests for the server crate: one server, scripted client sessions.
//! The full protocol matrix (families × modes, swap-under-load, malformed frames) lives
//! in the workspace-level `tests/serving.rs` suite.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pdqi_constraints::FdSet;
use pdqi_core::{EngineBuilder, FamilyKind, SnapshotRegistry};
use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
use pdqi_server::{serve, Client, ExecMode, ExecOutcome, ServerConfig};

fn example1_registry() -> Arc<SnapshotRegistry> {
    let schema = Arc::new(
        RelationSchema::from_pairs(
            "Mgr",
            &[
                ("Name", ValueType::Name),
                ("Dept", ValueType::Name),
                ("Salary", ValueType::Int),
                ("Reports", ValueType::Int),
            ],
        )
        .unwrap(),
    );
    let instance = RelationInstance::from_rows(
        Arc::clone(&schema),
        vec![
            vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
            vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
            vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
            vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
        ],
    )
    .unwrap();
    let fds = FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
        .unwrap();
    let snapshot = EngineBuilder::new().relation(instance, fds).build().unwrap();
    let registry = SnapshotRegistry::shared();
    registry.publish("Mgr", snapshot);
    registry
}

#[test]
fn a_scripted_session_prepares_executes_revises_and_shuts_down() {
    let handle = serve("127.0.0.1:0", example1_registry(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.ping().unwrap();
    client.prepare("managers", "EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
    client.prepare("depts", "EXISTS n,s,r . Mgr(n,x,s,r)").unwrap();

    let (outcome, generation) =
        client.exec("managers", FamilyKind::Rep, ExecMode::Certain).unwrap();
    assert_eq!(generation, 1);
    assert_eq!(
        outcome,
        ExecOutcome::Rows {
            columns: vec!["x".to_string()],
            rows: vec![vec!["John".to_string()], vec!["Mary".to_string()]],
        }
    );

    // No department is certain without preferences; after the Example 3 revision, R&D is.
    let (before, _) = client.exec("depts", FamilyKind::Global, ExecMode::Certain).unwrap();
    assert_eq!(before, ExecOutcome::Rows { columns: vec!["x".to_string()], rows: vec![] });
    let generation = client.set_priority("Mgr", &[(0, 2), (1, 3)]).unwrap();
    assert_eq!(generation, 2);
    let (after, generation) = client.exec("depts", FamilyKind::Global, ExecMode::Certain).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(
        after,
        ExecOutcome::Rows { columns: vec!["x".to_string()], rows: vec![vec!["R&D".to_string()]] }
    );

    let stats = client.stats().unwrap();
    assert!(stats.contains("tables=1"), "{stats}");
    assert!(stats.contains("table Mgr gen=2"), "{stats}");

    // A second connection sees the same registry state.
    let mut second = Client::connect(addr).unwrap();
    second.prepare("q", "EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();
    let (_, generation) = second.exec("q", FamilyKind::Rep, ExecMode::Possible).unwrap();
    assert_eq!(generation, 2);

    // Remote shutdown: the server answers, then every thread drains.
    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn wire_mutations_publish_delta_snapshots_with_generations() {
    let handle = serve("127.0.0.1:0", example1_registry(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.prepare("managers", "EXISTS d,s,r . Mgr(x,d,s,r)").unwrap();

    // Insert a conflict-free manager: she becomes a certain answer at generation 2.
    let row = |fields: &[&str]| fields.iter().map(|f| f.to_string()).collect::<Vec<_>>();
    let (inserted, generation) = client.insert("Mgr", &[row(&["Eve", "HR", "15", "2"])]).unwrap();
    assert_eq!((inserted, generation), (1, 2));
    let (outcome, generation) =
        client.exec("managers", FamilyKind::Rep, ExecMode::Certain).unwrap();
    assert_eq!(generation, 2);
    assert_eq!(
        outcome,
        ExecOutcome::Rows {
            columns: vec!["x".to_string()],
            rows: vec![vec!["Eve".to_string()], vec!["John".to_string()], vec!["Mary".to_string()]],
        }
    );

    // Duplicate inserts collapse under set semantics; absent deletes are no-ops.
    let (inserted, generation) = client.insert("Mgr", &[row(&["Eve", "HR", "15", "2"])]).unwrap();
    assert_eq!((inserted, generation), (0, 3));
    let (deleted, generation) = client.delete("Mgr", &[row(&["Ghost", "X", "1", "1"])]).unwrap();
    assert_eq!((deleted, generation), (0, 4));

    // Deleting both of Mary's conflicting tuples leaves John's conflict only.
    let (deleted, generation) = client
        .delete("Mgr", &[row(&["Eve", "HR", "15", "2"]), row(&["Mary", "IT", "20", "1"])])
        .unwrap();
    assert_eq!((deleted, generation), (2, 5));
    let (outcome, _) = client.exec("managers", FamilyKind::Rep, ExecMode::Certain).unwrap();
    assert_eq!(
        outcome,
        ExecOutcome::Rows { columns: vec!["x".to_string()], rows: vec![vec!["John".to_string()]] }
    );

    // Typing errors and unknown tables are protocol-level ERRs.
    assert!(client
        .request_raw("INSERT Mgr\nEve\tHR\tfifteen\t2")
        .unwrap()
        .starts_with("ERR `fifteen` is not an integer"));
    assert!(client
        .request_raw("INSERT Mgr\nEve\tHR\t15")
        .unwrap()
        .starts_with("ERR row has 3 value(s)"));
    assert!(client
        .request_raw("INSERT Nope\n1\t2")
        .unwrap()
        .starts_with("ERR no snapshot published"));

    client.shutdown().unwrap();
    handle.wait();
}

#[test]
fn protocol_errors_keep_the_connection_alive_but_malformed_frames_close_it() {
    let handle = serve("127.0.0.1:0", example1_registry(), ServerConfig::default()).unwrap();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();

    // Unknown commands, unknown ids and bad queries are ERR responses, not hangups.
    assert!(client.request_raw("FLY TO THE MOON").unwrap().starts_with("ERR unknown command"));
    assert!(client
        .request_raw("EXEC nope ALL CERTAIN")
        .unwrap()
        .starts_with("ERR unknown prepared query"));
    assert!(client.request_raw("PREPARE q )(").unwrap().starts_with("ERR query error"));
    assert!(client
        .request_raw("SET-PRIORITY Nope 0>1")
        .unwrap()
        .starts_with("ERR registry serves no table"));
    client.ping().unwrap();

    // An oversized frame announcement poisons the framing: ERR, then EOF.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    assert!(text.contains("frame too large"), "{text}");

    handle.shutdown();
}
