//! The `pdqi` command-line front end.
//!
//! The binary reads a script (from files given on the command line, or from standard
//! input) consisting of two kinds of lines:
//!
//! * **SQL statements** — everything the `pdqi-sql` session understands: `CREATE TABLE`,
//!   `ALTER TABLE … ADD FD`, `INSERT`, `PREFER … OVER … IN …`, and
//!   `SELECT … WITH REPAIRS <family>`;
//! * **meta commands** starting with a dot — inspection helpers that expose the repair
//!   machinery directly (`.conflicts`, `.repairs`, `.preferred`, `.clean`, `.answer`,
//!   `.aggregate`, `.properties`, …).
//!
//! All of the interpretation lives in [`Interpreter`] so it can be unit-tested without a
//! terminal; `main.rs` is a thin line-feeding wrapper around it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Arc;

use pdqi_aggregate::{range_by_enumeration, AggregateFunction, AggregateQuery};
use pdqi_core::{
    properties, EngineSnapshot, FamilyKind, Parallelism, PreparedQuery, ReportStrategy, Semantics,
    SubscribeOptions, SubscriptionEvent, MAX_THREADS,
};
use pdqi_relation::{RelationInstance, TupleSet};
use pdqi_sql::{Session, SqlError, StatementOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything that can go wrong while interpreting a line.
#[derive(Debug)]
pub enum CliError {
    /// The underlying SQL session rejected the statement.
    Sql(SqlError),
    /// A meta command was malformed or referenced something unknown.
    Command(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Sql(e) => write!(f, "sql error: {e}"),
            CliError::Command(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<SqlError> for CliError {
    fn from(e: SqlError) -> Self {
        CliError::Sql(e)
    }
}

/// The stateful interpreter: a SQL session plus the meta-command layer.
#[derive(Debug, Default)]
pub struct Interpreter {
    session: Session,
}

impl Interpreter {
    /// A fresh interpreter with no tables, running sequentially.
    pub fn new() -> Self {
        Interpreter { session: Session::new() }
    }

    /// A fresh interpreter answering repair-quantified queries with up to `threads`
    /// workers (`0` means one worker per hardware thread).
    pub fn with_threads(threads: usize) -> Self {
        let mut interpreter = Interpreter::new();
        interpreter.set_threads(threads);
        interpreter
    }

    /// Reconfigures the worker count (`0` means one worker per hardware thread).
    /// Parallelism never changes answers — only how fast they arrive.
    pub fn set_threads(&mut self, threads: usize) {
        let parallelism =
            if threads == 0 { Parallelism::auto() } else { Parallelism::threads(threads) };
        self.session.set_parallelism(parallelism);
    }

    fn parallelism(&self) -> Parallelism {
        self.session.parallelism()
    }

    /// Access to the underlying SQL session (used by tests and by embedding callers).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying SQL session — the `serve` subcommand uses this
    /// to publish the loaded tables into the session's registry before binding.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Interprets one line (an SQL statement or a meta command) and returns the text to
    /// print. Blank lines and `--` comments produce no output.
    pub fn run_line(&mut self, line: &str) -> Result<String, CliError> {
        let trimmed = line.trim().trim_end_matches(';');
        if trimmed.is_empty() || trimmed.starts_with("--") {
            return Ok(String::new());
        }
        let mut output = if let Some(command) = trimmed.strip_prefix('.') {
            self.run_meta(command)?
        } else {
            let outcome = self.session.execute(trimmed)?;
            render_outcome(&outcome)
        };
        // Continuous queries piggyback on the interactive loop: any swap the line
        // caused (INSERT, DELETE, PREFER, …) queued events — print them right away.
        for (id, event) in self.session.drain_subscription_events() {
            if !output.is_empty() && !output.ends_with('\n') {
                output.push('\n');
            }
            output.push_str(&render_subscription_event(id, &event));
        }
        Ok(output)
    }

    /// Interprets a whole script, accumulating the output of every line. Errors are
    /// reported inline (prefixed with `error:`) and do not abort the rest of the script,
    /// matching the behaviour of interactive use.
    pub fn run_script(&mut self, script: &str) -> String {
        let mut out = String::new();
        for line in script.lines() {
            match self.run_line(line) {
                Ok(text) if text.is_empty() => {}
                Ok(text) => {
                    out.push_str(&text);
                    if !text.ends_with('\n') {
                        out.push('\n');
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "error: {e}");
                }
            }
        }
        out
    }

    fn run_meta(&mut self, command: &str) -> Result<String, CliError> {
        let mut parts = command.split_whitespace();
        let name = parts.next().unwrap_or_default().to_ascii_lowercase();
        let args: Vec<&str> = parts.collect();
        match name.as_str() {
            "help" => Ok(HELP.to_string()),
            "threads" => self.threads(&args),
            "tables" => Ok(self.tables()),
            "schema" => self.schema(&args),
            "conflicts" => self.conflicts(&args),
            "shards" => self.shards(&args),
            "count" => self.count(&args),
            "repairs" => self.repairs(&args),
            "preferred" => self.preferred(&args),
            "clean" => self.clean(&args),
            "answer" => self.answer(&args),
            "aggregate" => self.aggregate(&args),
            "properties" => self.properties(&args),
            "explain" => self.explain(command),
            "subscribe" => self.subscribe(&args),
            "unsubscribe" => self.unsubscribe(&args),
            "subscriptions" => Ok(self.subscriptions()),
            "stats" => Ok(self.stats()),
            other => Err(CliError::Command(format!("unknown command `.{other}` (try `.help`)"))),
        }
    }

    fn threads(&mut self, args: &[&str]) -> Result<String, CliError> {
        match args.first() {
            None => Ok(format!("{} worker thread(s)", self.parallelism().thread_count())),
            Some(&"auto") => {
                self.set_threads(0);
                Ok(format!("using {} worker thread(s) (auto)", self.parallelism().thread_count()))
            }
            Some(text) => {
                let threads: usize = text.parse().map_err(|_| {
                    CliError::Command(format!(
                        "`{text}` is not a thread count (use a number or `auto`)"
                    ))
                })?;
                if threads == 0 {
                    return Err(CliError::Command(
                        "thread count must be at least 1 (or `auto`)".to_string(),
                    ));
                }
                self.set_threads(threads);
                // Report the effective count. The clamp is `pdqi_core::MAX_THREADS` —
                // the engine's single source of truth — so the message can never drift
                // from what the pool actually does.
                let effective = self.parallelism().thread_count();
                if effective < threads {
                    Ok(format!(
                        "using {effective} worker thread(s) (clamped from {threads}; max {MAX_THREADS})"
                    ))
                } else {
                    Ok(format!("using {effective} worker thread(s)"))
                }
            }
        }
    }

    fn tables(&self) -> String {
        let names = self.session.table_names();
        if names.is_empty() {
            "no tables defined".to_string()
        } else {
            names.join("\n")
        }
    }

    fn snapshot_for(
        &mut self,
        args: &[&str],
        usage: &str,
    ) -> Result<(Arc<EngineSnapshot>, String), CliError> {
        let table =
            args.first().ok_or_else(|| CliError::Command(format!("usage: {usage}")))?.to_string();
        let snapshot = self.session.snapshot(&table)?;
        Ok((snapshot, table))
    }

    fn schema(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, _) = self.snapshot_for(args, ".schema <table>")?;
        let mut out = format!("{}\n", snapshot.context().instance().schema());
        let fds = snapshot.context().fds().render();
        if fds.is_empty() {
            out.push_str("  (no functional dependencies)\n");
        }
        for fd in fds {
            let _ = writeln!(out, "  FD {fd}");
        }
        Ok(out)
    }

    fn conflicts(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, table) = self.snapshot_for(args, ".conflicts <table>")?;
        let instance = snapshot.context().instance();
        let graph = snapshot.graph();
        if graph.edge_count() == 0 {
            return Ok(format!("`{table}` is consistent"));
        }
        let mut out = format!(
            "{} conflicts among {} tuples ({} oriented by preferences)\n",
            graph.edge_count(),
            instance.len(),
            snapshot.priority().edge_count()
        );
        for &(a, b) in graph.edges() {
            let orientation = if snapshot.priority().dominates(a, b) {
                " (first preferred)"
            } else if snapshot.priority().dominates(b, a) {
                " (second preferred)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {} <-> {}{orientation}",
                instance.tuple_unchecked(a),
                instance.tuple_unchecked(b)
            );
        }
        Ok(out)
    }

    fn shards(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, table) = self.snapshot_for(args, ".shards <table>")?;
        let shards = snapshot.shards_of(&table).unwrap_or_default();
        if shards.is_empty() {
            return Ok(format!("`{table}` is conflict-free (no shards)"));
        }
        let mut out = format!(
            "{} shard(s) over {} conflict component(s)\n",
            shards.len(),
            snapshot.component_count()
        );
        for (index, shard) in shards.iter().enumerate() {
            let range = shard.component_range();
            let _ = writeln!(
                out,
                "  shard #{}: components {}..{} ({} component(s), {} tuple(s))",
                index + 1,
                range.start,
                range.end,
                shard.component_count(),
                shard.tuple_count()
            );
        }
        Ok(out)
    }

    fn count(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, table) = self.snapshot_for(args, ".count <table>")?;
        snapshot.warm_components(FamilyKind::Rep, self.parallelism());
        Ok(format!("`{table}` has {} repair(s)", snapshot.count_repairs()))
    }

    fn repairs(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, _) = self.snapshot_for(args, ".repairs <table> [limit]")?;
        let limit = parse_limit(args.get(1))?;
        Ok(render_repairs(snapshot.context().instance(), &snapshot.repairs(limit)))
    }

    fn preferred(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, _) = self.snapshot_for(args, ".preferred <table> <family> [limit]")?;
        let family = parse_family(args.get(1))?;
        let limit = parse_limit(args.get(2))?;
        // Enumerate the per-component repairs across workers; assembly stays streamed.
        snapshot.warm_components(family, self.parallelism());
        let repairs = snapshot.preferred_repairs(family, limit);
        Ok(format!(
            "{} preferred repair(s) under {}\n{}",
            repairs.len(),
            family.label(),
            render_repairs(snapshot.context().instance(), &repairs)
        ))
    }

    fn clean(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, _) = self.snapshot_for(args, ".clean <table>")?;
        match snapshot.clean() {
            Ok(repair) => Ok(format!(
                "Algorithm 1 produces the unique repair:\n{}",
                render_repairs(snapshot.context().instance(), &[repair])
            )),
            Err(e) => Err(CliError::Command(format!("cannot clean: {e}"))),
        }
    }

    fn answer(&mut self, args: &[&str]) -> Result<String, CliError> {
        if args.len() < 3 {
            return Err(CliError::Command(
                "usage: .answer <table> <family> <closed first-order query>".to_string(),
            ));
        }
        let snapshot = self.session.snapshot(args[0])?;
        let family = parse_family(args.get(1))?;
        let query = args[2..].join(" ");
        let parallelism = self.parallelism();
        let outcome = PreparedQuery::parse(&query)
            .and_then(|prepared| prepared.consistent_answer_with(&snapshot, family, parallelism))
            .map_err(|e| CliError::Command(format!("query error: {e}")))?;
        let verdict = if outcome.certainly_true {
            "certainly true"
        } else if outcome.certainly_false {
            "certainly false"
        } else {
            "undetermined"
        };
        Ok(format!(
            "{verdict} under {} ({} preferred repair(s) examined)",
            family.label(),
            outcome.examined
        ))
    }

    fn aggregate(&mut self, args: &[&str]) -> Result<String, CliError> {
        if args.len() < 3 {
            return Err(CliError::Command(
                "usage: .aggregate <table> <COUNT|SUM|MIN|MAX|AVG> <attribute|*> [family]"
                    .to_string(),
            ));
        }
        let snapshot = self.session.snapshot(args[0])?;
        let function = parse_function(args[1])?;
        let family = parse_family(args.get(3).or(Some(&"ALL")))?;
        let schema = snapshot.context().instance().schema();
        let query = if function == AggregateFunction::Count && args[2] == "*" {
            AggregateQuery::count()
        } else {
            AggregateQuery::over(schema, function, args[2])
                .map_err(|e| CliError::Command(format!("bad aggregate: {e}")))?
        };
        query.validate(schema).map_err(|e| CliError::Command(format!("bad aggregate: {e}")))?;
        let range = range_by_enumeration(
            snapshot.context(),
            snapshot.priority(),
            family.family().as_ref(),
            &query,
        );
        Ok(format!(
            "{}({}) ∈ {} under {}{}",
            function.label(),
            args[2],
            range,
            family.label(),
            if range.is_exact() { " (exact)" } else { "" }
        ))
    }

    fn subscribe(&mut self, args: &[&str]) -> Result<String, CliError> {
        const USAGE: &str = "usage: .subscribe [CERTAIN|POSSIBLE] \
                             [EVERY n|WINDOW n|COALESCE ms] [QUEUE n] \
                             <SELECT … WITH REPAIRS <family>>";
        // Optional leading semantics token; the repair family comes from the
        // statement's own WITH REPAIRS clause.
        let (semantics, mut rest) = match args.first().map(|t| t.to_ascii_uppercase()) {
            Some(token) if token == "POSSIBLE" => (Semantics::Possible, &args[1..]),
            Some(token) if token == "CERTAIN" => (Semantics::Certain, &args[1..]),
            _ => (Semantics::Certain, args),
        };
        // Report-strategy and queue options sit between the semantics token and the
        // statement; the statement itself starts at the first non-option token.
        let mut options = SubscribeOptions::default();
        let mut strategy_given = false;
        while let Some(keyword) = rest.first().map(|t| t.to_ascii_uppercase()) {
            if !matches!(keyword.as_str(), "EVERY" | "WINDOW" | "COALESCE" | "QUEUE") {
                break;
            }
            let number: u64 = rest
                .get(1)
                .and_then(|text| text.parse().ok())
                .ok_or_else(|| CliError::Command(format!("{keyword} takes a number ({USAGE})")))?;
            if keyword != "COALESCE" && number == 0 {
                return Err(CliError::Command(format!("{keyword} takes a count ≥ 1")));
            }
            if keyword == "QUEUE" {
                options.queue_capacity = Some(usize::try_from(number).unwrap_or(usize::MAX));
            } else {
                if strategy_given {
                    return Err(CliError::Command(
                        "at most one of EVERY, WINDOW, COALESCE".to_string(),
                    ));
                }
                strategy_given = true;
                options.strategy = match keyword.as_str() {
                    "EVERY" => ReportStrategy::every(number),
                    "WINDOW" => ReportStrategy::window(usize::try_from(number).unwrap_or(1)),
                    _ => ReportStrategy::coalesce(std::time::Duration::from_millis(number)),
                };
            }
            rest = &rest[2..];
        }
        if rest.is_empty() {
            return Err(CliError::Command(USAGE.to_string()));
        }
        let sql = rest.join(" ");
        let subscribed = self.session.subscribe_with(&sql, semantics, options)?;
        let mut out = format!(
            "subscription #{} at gen {} ({} initial row(s))\n{}\n",
            subscribed.id,
            subscribed.generation,
            subscribed.rows.len(),
            subscribed.columns.join(" | ")
        );
        for row in &subscribed.rows {
            let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "{}", rendered.join(" | "));
        }
        Ok(out)
    }

    fn unsubscribe(&mut self, args: &[&str]) -> Result<String, CliError> {
        let id: u64 = args
            .first()
            .and_then(|text| text.parse().ok())
            .ok_or_else(|| CliError::Command("usage: .unsubscribe <id>".to_string()))?;
        if self.session.unsubscribe(id) {
            Ok(format!("subscription #{id} dropped"))
        } else {
            Err(CliError::Command(format!("no subscription #{id}")))
        }
    }

    fn subscriptions(&self) -> String {
        let infos = self.session.subscriptions();
        if infos.is_empty() {
            return "no subscriptions".to_string();
        }
        let mut out = String::new();
        for info in infos {
            let semantics = match info.semantics {
                Semantics::Certain => "CERTAIN",
                Semantics::Possible => "POSSIBLE",
            };
            let _ = writeln!(
                out,
                "#{} {} {} gen={} pending={}{} {}",
                info.id,
                info.family.label(),
                semantics,
                info.generation,
                info.pending,
                if info.lagged { " lagged" } else { "" },
                info.query
            );
        }
        out
    }

    /// `.explain <SELECT … WITH REPAIRS <family>>` — the SQL `EXPLAIN` statement as a
    /// meta command, so interactive sessions can inspect a plan without retyping the
    /// keyword.
    fn explain(&mut self, command: &str) -> Result<String, CliError> {
        let statement = command.trim()["explain".len()..].trim();
        if statement.is_empty() {
            return Err(CliError::Command(
                "usage: .explain <SELECT … WITH REPAIRS <family>>".to_string(),
            ));
        }
        let outcome = self.session.execute(&format!("EXPLAIN {statement}"))?;
        Ok(render_outcome(&outcome))
    }

    fn stats(&self) -> String {
        let schema = self.session.schema_delta_stats();
        let eval = pdqi_query::eval_path_stats();
        let plans = pdqi_core::plan_stats();
        let windows = self.session.window_stats();
        format!(
            "schema deltas: fd delta={} rebuild={}\n\
             preference deltas: swaps={} coalesced={} rebuild={}\n\
             eval paths: vectorized={} scalar={}\n\
             planner: planned={} cache hits={} naive={}\n\
             planner choices: join reorders={} scalar picks={} derived components={}\n\
             report strategies: coalesced={} windowed={} folded swaps={} flushes={} \
             expiry deltas={} pending dropped={}",
            schema.fds_delta,
            schema.fds_rebuild,
            schema.prefers_delta,
            schema.prefers_coalesced,
            schema.prefers_rebuild,
            eval.vectorized,
            eval.scalar,
            plans.planned,
            plans.cache_hits,
            plans.naive,
            plans.join_reorders,
            plans.scalar_picks,
            plans.derived_components,
            windows.coalesced_subscribers,
            windows.windowed_subscribers,
            windows.folded_swaps,
            windows.coalesced_flushes,
            windows.expiry_deltas,
            windows.pending_dropped
        )
    }

    fn properties(&mut self, args: &[&str]) -> Result<String, CliError> {
        let (snapshot, _) = self.snapshot_for(args, ".properties <table>")?;
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = String::from("family  P1     P2     P3     P4\n");
        for kind in FamilyKind::ALL {
            let profile = properties::check_profile(
                kind.family().as_ref(),
                snapshot.context(),
                snapshot.priority(),
                3,
                &mut rng,
            );
            let _ = writeln!(
                out,
                "{:<7} {:<6} {:<6} {:<6} {:<6}",
                kind.label(),
                profile.p1,
                profile.p2,
                profile.p3,
                profile.p4
            );
        }
        Ok(out)
    }
}

const HELP: &str = "\
SQL statements: CREATE TABLE, ALTER TABLE <t> ADD FD <fd>, INSERT INTO <t> VALUES …,
                DELETE FROM <t> VALUES …, PREFER (<row>) OVER (<row>) IN <t>,
                SELECT … [WITH REPAIRS <family>], EXPLAIN SELECT … WITH REPAIRS <family>
meta commands:
  .help                                     this message
  .threads [n|auto]                         show or set the worker-thread count
  .tables                                   list tables
  .schema <table>                           schema and functional dependencies
  .conflicts <table>                        list conflicting tuple pairs
  .shards <table>                           shard layout (component groups and sizes)
  .count <table>                            number of repairs
  .repairs <table> [limit]                  list repairs
  .preferred <table> <family> [limit]       list preferred repairs (ALL/L/S/G/C)
  .clean <table>                            run Algorithm 1 (needs a total priority)
  .answer <table> <family> <FO query>       preferred consistent answer to a closed query
  .aggregate <table> <func> <attr> [family] range-consistent aggregate answer
  .properties <table>                       evaluate P1-P4 for every family
  .explain <SELECT … WITH REPAIRS <f>>      costed physical plan plus actuals
  .subscribe [CERTAIN|POSSIBLE] [EVERY n|WINDOW n|COALESCE ms] [QUEUE n] <SELECT …>
                                            register a continuous query (needs
                                            WITH REPAIRS); deltas print after the
                                            statements that cause them. EVERY folds
                                            n swaps per delta, WINDOW answers over
                                            the last n generations, COALESCE folds
                                            bursts within ms, QUEUE bounds the
                                            push queue
  .subscriptions                            list continuous queries
  .unsubscribe <id>                         drop a continuous query
  .stats                                    schema-delta, eval-path and planner accounting";

/// Renders one queued continuous-query event for the interactive surface.
fn render_subscription_event(id: u64, event: &SubscriptionEvent) -> String {
    let mut out = String::new();
    match event {
        SubscriptionEvent::Delta(delta) => {
            let _ = writeln!(
                out,
                "subscription #{id} delta at gen {}: +{} -{}",
                delta.generation,
                delta.added.len(),
                delta.removed.len()
            );
            for (sign, rows) in [('+', &delta.added), ('-', &delta.removed)] {
                for row in rows {
                    let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    let _ = writeln!(out, "  {sign} {}", rendered.join(" | "));
                }
            }
        }
        SubscriptionEvent::Lagged { generation, rows } => {
            let _ = writeln!(
                out,
                "subscription #{id} lagged; resynced at gen {generation} ({} row(s))",
                rows.len()
            );
            for row in rows {
                let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(out, "  {}", rendered.join(" | "));
            }
        }
    }
    out
}

/// Turns one `pdqi connect` input line into a protocol frame payload, or `None` for
/// blank and `--` comment lines. `BATCH`, `INSERT` and `DELETE` requests are
/// multi-line frames; on the single-line `connect` surface their entries are separated
/// with `;`:
///
/// ```text
/// BATCH q1 ALL CERTAIN; q2 G CLOSED
/// INSERT Mgr 'Eve','HR',15,2; 'Bob','HR',16,1
/// DELETE Mgr 'Eve','HR',15,2
/// ```
///
/// Mutation rows split on `;` and fields on `,` **before** quote handling; each field
/// is then trimmed and may be wrapped in single quotes. Quoting therefore cannot
/// protect the separators themselves — values containing semicolons, commas or tabs
/// need the frame protocol (or the SQL surface) directly.
pub fn frame_payload_of_line(line: &str) -> Option<String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with("--") {
        return None;
    }
    let command = trimmed.split_whitespace().next().unwrap_or("").to_ascii_uppercase();
    if command == "BATCH" {
        let rest = trimmed[5.min(trimmed.len())..].trim();
        let mut payload = String::from("BATCH");
        for entry in rest.split(';') {
            let entry = entry.trim();
            if !entry.is_empty() {
                payload.push('\n');
                payload.push_str(entry);
            }
        }
        return Some(payload);
    }
    if command == "INSERT" || command == "DELETE" {
        let rest = trimmed[6.min(trimmed.len())..].trim_start();
        let (table, rows_text) = match rest.split_once(char::is_whitespace) {
            Some((table, rows_text)) => (table, rows_text),
            // No rows on the line: pass through so the server reports usage.
            None => return Some(trimmed.to_string()),
        };
        let mut payload = format!("{command} {table}");
        for row in rows_text.split(';') {
            let row = row.trim();
            if row.is_empty() {
                continue;
            }
            payload.push('\n');
            payload.push_str(&escape_row(row));
        }
        return Some(payload);
    }
    if command == "MUTATE" {
        let rest = trimmed[6.min(trimmed.len())..].trim_start();
        let (table, rows_text) = match rest.split_once(char::is_whitespace) {
            Some((table, rows_text)) => (table, rows_text),
            None => return Some(trimmed.to_string()),
        };
        // Mixed batch: each `;`-separated row leads with its op, `+` insert or
        // `-` delete, e.g. `MUTATE Mgr +'Eve','HR',15,2; -'Mary','IT',20,1`.
        let mut payload = format!("MUTATE {table}");
        for row in rows_text.split(';') {
            let row = row.trim();
            if row.is_empty() {
                continue;
            }
            let (op, fields) = if let Some(rest) = row.strip_prefix('+') {
                ("+", rest.trim_start())
            } else if let Some(rest) = row.strip_prefix('-') {
                ("-", rest.trim_start())
            } else {
                // No op prefix: forward the raw row so the server reports the error.
                ("", row)
            };
            payload.push('\n');
            payload.push_str(op);
            if !op.is_empty() {
                payload.push('\t');
            }
            payload.push_str(&escape_row(fields));
        }
        return Some(payload);
    }
    Some(trimmed.to_string())
}

/// Splits one `connect`-surface mutation row on `,`, strips optional single quotes and
/// escapes each field for the wire (see [`frame_payload_of_line`] for the caveats).
fn escape_row(row: &str) -> String {
    let fields: Vec<String> = row
        .split(',')
        .map(|field| {
            let field = field.trim();
            let unquoted =
                field.strip_prefix('\'').and_then(|f| f.strip_suffix('\'')).unwrap_or(field);
            pdqi_server::escape_field(unquoted)
        })
        .collect();
    fields.join("\t")
}

/// Drives a scripted client session against a running server: one request per
/// non-empty input line, each response echoed back, stopping after a `SHUTDOWN`
/// request is answered. This is the whole of `pdqi connect` — kept here so tests can
/// run it in-process against a loopback server.
///
/// Two extras support subscriptions. `WAIT <n> [timeout_ms]` is handled client-side:
/// it blocks until `n` pushed `DELTA`/`LAGGED` frames arrived (default timeout
/// 5000 ms) and prints each one. And after every response, pushed frames that arrived
/// interleaved with it are printed immediately.
pub fn run_connect_script(addr: &str, input: &str) -> Result<String, pdqi_server::ClientError> {
    let mut client = pdqi_server::Client::connect(addr)
        .map_err(|e| pdqi_server::ClientError::Frame(pdqi_server::FrameError::Io(e)))?;
    let mut out = String::new();
    // Pushed frames already printed by the after-response drain below; a later WAIT
    // counts them as received so `MUTATE` + `WAIT 1` is deterministic no matter how
    // the push raced the response.
    let mut drained = 0usize;
    for line in input.lines() {
        let Some(payload) = frame_payload_of_line(line) else {
            continue;
        };
        let mut words = payload.split_whitespace();
        if words.next().is_some_and(|w| w.eq_ignore_ascii_case("WAIT")) {
            let expected: usize = words.next().and_then(|w| w.parse().ok()).unwrap_or(1);
            let timeout_ms: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(5000);
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(timeout_ms);
            let mut received = drained.min(expected);
            drained -= received;
            while received < expected {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    let _ =
                        writeln!(out, "ERR wait timed out after {received} of {expected} event(s)");
                    break;
                }
                if let Some(event) = client.wait_event(left)? {
                    out.push_str(&render_push_event(&event));
                    received += 1;
                }
            }
            continue;
        }
        let response = client.request_raw(&payload)?;
        out.push_str(&response);
        if !response.ends_with('\n') {
            out.push('\n');
        }
        if payload.trim().eq_ignore_ascii_case("SHUTDOWN") {
            // The server closes the socket right after `OK bye` — don't poll it.
            break;
        }
        // Pushed frames the server interleaved with (or queued before) the response.
        while let Some(event) = client.try_event()? {
            out.push_str(&render_push_event(&event));
            drained += 1;
        }
    }
    Ok(out)
}

/// Renders one pushed frame for the `connect` surface: the wire head line, then one
/// tab-joined row per line (`+`/`-`-prefixed for deltas).
fn render_push_event(event: &pdqi_server::PushEvent) -> String {
    let mut out = String::new();
    match event {
        pdqi_server::PushEvent::Delta { sub, generation, added, removed } => {
            let _ = writeln!(
                out,
                "DELTA sub={sub} gen={generation} added={} removed={}",
                added.len(),
                removed.len()
            );
            for (sign, rows) in [('+', added), ('-', removed)] {
                for row in rows {
                    let _ = writeln!(out, "{sign} {}", row.join("\t"));
                }
            }
        }
        pdqi_server::PushEvent::Lagged { sub, generation, rows } => {
            let _ = writeln!(out, "LAGGED sub={sub} gen={generation} rows {}", rows.len());
            for row in rows {
                let _ = writeln!(out, "{}", row.join("\t"));
            }
        }
    }
    out
}

fn render_outcome(outcome: &StatementOutcome) -> String {
    match outcome {
        StatementOutcome::Created => "table created".to_string(),
        StatementOutcome::FdAdded => "functional dependency added".to_string(),
        StatementOutcome::Inserted(n) => format!("{n} row(s) inserted"),
        StatementOutcome::Deleted(n) => format!("{n} row(s) deleted"),
        StatementOutcome::PreferenceAdded => "preference recorded".to_string(),
        StatementOutcome::Rows(result) => {
            let mut out = result.columns.join(" | ");
            out.push('\n');
            for row in &result.rows {
                let rendered: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                out.push_str(&rendered.join(" | "));
                out.push('\n');
            }
            if result.rows.is_empty() {
                out.push_str("(no rows)\n");
            }
            out
        }
        StatementOutcome::Plan(report) => report.clone(),
    }
}

fn render_repairs(instance: &RelationInstance, repairs: &[TupleSet]) -> String {
    let mut out = String::new();
    for (index, repair) in repairs.iter().enumerate() {
        let _ = writeln!(out, "repair #{}:", index + 1);
        for id in repair.iter() {
            let _ = writeln!(out, "  {}", instance.tuple_unchecked(id));
        }
    }
    out
}

fn parse_limit(arg: Option<&&str>) -> Result<usize, CliError> {
    match arg {
        None => Ok(20),
        Some(text) => {
            text.parse().map_err(|_| CliError::Command(format!("`{text}` is not a valid limit")))
        }
    }
}

fn parse_family(arg: Option<&&str>) -> Result<FamilyKind, CliError> {
    let text = arg.copied().unwrap_or("ALL");
    FamilyKind::parse(text).ok_or_else(|| {
        CliError::Command(format!("`{text}` is not a repair family (use ALL, L, S, G or C)"))
    })
}

fn parse_function(text: &str) -> Result<AggregateFunction, CliError> {
    match text.to_ascii_uppercase().as_str() {
        "COUNT" => Ok(AggregateFunction::Count),
        "SUM" => Ok(AggregateFunction::Sum),
        "MIN" => Ok(AggregateFunction::Min),
        "MAX" => Ok(AggregateFunction::Max),
        "AVG" => Ok(AggregateFunction::Avg),
        other => Err(CliError::Command(format!("`{other}` is not an aggregate function"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 1 as a CLI script.
    fn example1_script() -> &'static str {
        "CREATE TABLE Mgr (Name TEXT, Dept TEXT, Salary INT, Reports INT);\n\
         ALTER TABLE Mgr ADD FD Dept -> Name Salary Reports;\n\
         ALTER TABLE Mgr ADD FD Name -> Dept Salary Reports;\n\
         INSERT INTO Mgr VALUES ('Mary','R&D',40,3), ('John','R&D',10,2);\n\
         INSERT INTO Mgr VALUES ('Mary','IT',20,1), ('John','PR',30,4);"
    }

    fn loaded() -> Interpreter {
        let mut interpreter = Interpreter::new();
        let output = interpreter.run_script(example1_script());
        assert!(!output.contains("error"), "setup failed: {output}");
        interpreter
    }

    #[test]
    fn sql_statements_flow_through_the_session() {
        let mut interpreter = loaded();
        let out = interpreter.run_line(".tables").unwrap();
        assert_eq!(out.trim(), "Mgr");
        let out = interpreter.run_line(".count Mgr").unwrap();
        assert!(out.contains("3 repair(s)"));
        let out = interpreter.run_line("SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap();
        assert!(out.contains("Name"));
    }

    #[test]
    fn conflicts_and_repairs_are_rendered() {
        let mut interpreter = loaded();
        let conflicts = interpreter.run_line(".conflicts Mgr").unwrap();
        assert!(conflicts.contains("3 conflicts"));
        let repairs = interpreter.run_line(".repairs Mgr").unwrap();
        assert_eq!(repairs.matches("repair #").count(), 3);
        let schema = interpreter.run_line(".schema Mgr").unwrap();
        assert!(schema.contains("FD"));
    }

    #[test]
    fn preferences_drive_preferred_repairs_and_answers() {
        let mut interpreter = loaded();
        interpreter.run_line("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        interpreter.run_line("PREFER ('John','R&D',10,2) OVER ('John','PR',30,4) IN Mgr").unwrap();
        let preferred = interpreter.run_line(".preferred Mgr G").unwrap();
        assert!(preferred.starts_with("2 preferred repair(s)"));
        let answer = interpreter
            .run_line(
                ".answer Mgr G EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND \
                 Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2",
            )
            .unwrap();
        assert!(answer.contains("certainly true"));
        let undetermined = interpreter
            .run_line(
                ".answer Mgr ALL EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND \
                 Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2",
            )
            .unwrap();
        assert!(undetermined.contains("undetermined"));
    }

    #[test]
    fn aggregates_and_properties_work() {
        let mut interpreter = loaded();
        let sum = interpreter.run_line(".aggregate Mgr SUM Salary").unwrap();
        assert!(sum.contains("SUM(Salary)"));
        assert!(sum.contains("[30, 70]"));
        let count = interpreter.run_line(".aggregate Mgr COUNT *").unwrap();
        assert!(count.contains("(exact)"));
        let properties = interpreter.run_line(".properties Mgr").unwrap();
        assert!(properties.contains("G-Rep"));
    }

    #[test]
    fn cleaning_requires_a_total_priority() {
        let mut interpreter = loaded();
        let error = interpreter.run_line(".clean Mgr");
        assert!(error.is_err());
        interpreter.run_line("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        interpreter.run_line("PREFER ('Mary','R&D',40,3) OVER ('John','R&D',10,2) IN Mgr").unwrap();
        interpreter.run_line("PREFER ('John','PR',30,4) OVER ('John','R&D',10,2) IN Mgr").unwrap();
        let cleaned = interpreter.run_line(".clean Mgr").unwrap();
        assert!(cleaned.contains("unique repair"));
        assert!(cleaned.contains("Mary"));
    }

    #[test]
    fn stats_reports_schema_delta_accounting() {
        let mut interpreter = loaded();
        // Publish, then ALTER: the new FD lands as a snapshot derivation.
        interpreter.run_line(".count Mgr").unwrap();
        interpreter.run_line("ALTER TABLE Mgr ADD FD Salary -> Reports").unwrap();
        let stats = interpreter.run_line(".stats").unwrap();
        assert!(stats.contains("fd delta=1"), "{stats}");
        // Two PREFERs stay queued until the next read, then coalesce into one swap.
        interpreter.run_line("PREFER ('Mary','R&D',40,3) OVER ('Mary','IT',20,1) IN Mgr").unwrap();
        interpreter.run_line("PREFER ('John','R&D',10,2) OVER ('John','PR',30,4) IN Mgr").unwrap();
        interpreter.run_line(".count Mgr").unwrap();
        let stats = interpreter.run_line(".stats").unwrap();
        assert!(stats.contains("preference deltas: swaps=1 coalesced=2 rebuild=0"), "{stats}");
        assert!(stats.contains("eval paths:"), "{stats}");
    }

    #[test]
    fn explain_meta_command_renders_the_plan() {
        let mut interpreter = loaded();
        let report =
            interpreter.run_line(".explain SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap();
        assert!(report.contains("plan family=Rep"), "{report}");
        assert!(report.contains("actual product="), "{report}");
        // The bare SQL statement works too, and planner counters surface in .stats.
        let report = interpreter.run_line("EXPLAIN SELECT Name FROM Mgr WITH REPAIRS ALL").unwrap();
        assert!(report.contains("plan family=Rep") || report.contains("naive"), "{report}");
        let stats = interpreter.run_line(".stats").unwrap();
        assert!(stats.contains("planner:"), "{stats}");
        assert!(stats.contains("planner choices:"), "{stats}");
        assert!(interpreter.run_line(".explain").is_err());
    }

    #[test]
    fn threads_command_configures_parallelism_without_changing_answers() {
        let mut sequential = loaded();
        let mut parallel = Interpreter::with_threads(4);
        parallel.run_script(example1_script());
        assert_eq!(parallel.run_line(".threads").unwrap(), "4 worker thread(s)");
        for command in [".count Mgr", ".preferred Mgr G", ".answer Mgr ALL Mgr('Mary','R&D',40,3)"]
        {
            assert_eq!(
                sequential.run_line(command).unwrap(),
                parallel.run_line(command).unwrap(),
                "{command}"
            );
        }
        // Reconfiguration mid-session.
        assert_eq!(parallel.run_line(".threads 2").unwrap(), "using 2 worker thread(s)");
        assert!(parallel.run_line(".threads auto").unwrap().contains("auto"));
        assert!(parallel.run_line(".threads nope").is_err());
        assert!(parallel.run_line(".threads 0").is_err());
    }

    #[test]
    fn pathological_thread_counts_report_the_engine_clamp() {
        let mut interpreter = loaded();
        // The clamp and the message share one source of truth: pdqi_core::MAX_THREADS.
        let clamped = interpreter.run_line(".threads 100000").unwrap();
        assert_eq!(
            clamped,
            format!(
                "using {max} worker thread(s) (clamped from 100000; max {max})",
                max = pdqi_core::MAX_THREADS
            )
        );
        assert_eq!(
            interpreter.run_line(".threads").unwrap(),
            format!("{} worker thread(s)", pdqi_core::MAX_THREADS)
        );
        // In-range requests report without the clamp note.
        assert_eq!(interpreter.run_line(".threads 3").unwrap(), "using 3 worker thread(s)");
    }

    #[test]
    fn shards_are_rendered_per_table() {
        let mut interpreter = loaded();
        let shards = interpreter.run_line(".shards Mgr").unwrap();
        // Example 1's four tuples form one conflict component, hence one shard.
        assert!(shards.starts_with("1 shard(s) over 1 conflict component(s)"), "{shards}");
        assert!(shards.contains("4 tuple(s)"), "{shards}");
        interpreter
            .run_line("CREATE TABLE Clean (A INT, B INT)")
            .and_then(|_| interpreter.run_line("INSERT INTO Clean VALUES (1, 2)"))
            .unwrap();
        let clean = interpreter.run_line(".shards Clean").unwrap();
        assert!(clean.contains("conflict-free"), "{clean}");
        assert!(interpreter.run_line(".shards").is_err());
    }

    #[test]
    fn connect_lines_convert_batch_and_mutation_surfaces() {
        // BATCH entries split on `;` into one line each.
        assert_eq!(
            frame_payload_of_line("BATCH q1 ALL CERTAIN; q2 G CLOSED").unwrap(),
            "BATCH\nq1 ALL CERTAIN\nq2 G CLOSED"
        );
        // Mutation rows split on `;`, fields on `,`; quotes strip, fields escape.
        assert_eq!(
            frame_payload_of_line("INSERT Mgr 'Eve','HR',15,2; 'Bob','HR',16,1").unwrap(),
            "INSERT Mgr\nEve\tHR\t15\t2\nBob\tHR\t16\t1"
        );
        assert_eq!(
            frame_payload_of_line("delete Mgr 'Eve','HR',15,2").unwrap(),
            "DELETE Mgr\nEve\tHR\t15\t2"
        );
        // A mutation without rows passes through for the server's usage error.
        assert_eq!(frame_payload_of_line("INSERT Mgr").unwrap(), "INSERT Mgr");
        // Comments and blanks produce no frame.
        assert!(frame_payload_of_line("  -- nope").is_none());
        assert!(frame_payload_of_line("   ").is_none());
    }

    #[test]
    fn sql_deletes_flow_through_the_interpreter() {
        let mut interpreter = loaded();
        let out = interpreter.run_line("DELETE FROM Mgr VALUES ('Mary','IT',20,1)").unwrap();
        assert_eq!(out, "1 row(s) deleted");
        let out = interpreter.run_line(".count Mgr").unwrap();
        assert!(out.contains("2 repair(s)"), "{out}");
    }

    #[test]
    fn errors_are_reported_without_aborting_the_script() {
        let mut interpreter = Interpreter::new();
        let output = interpreter.run_script(
            "CREATE TABLE T (A INT, B INT);\n.unknowncommand\nINSERT INTO T VALUES (1, 2);\n.count Nope",
        );
        assert!(output.contains("error: unknown command"));
        assert!(output.contains("1 row(s) inserted"));
        assert!(output.contains("error: sql error"));
    }

    #[test]
    fn malformed_meta_commands_produce_usage_messages() {
        let mut interpreter = loaded();
        assert!(interpreter.run_line(".repairs").is_err());
        assert!(interpreter.run_line(".preferred Mgr NOPE").is_err());
        assert!(interpreter.run_line(".aggregate Mgr MEDIAN Salary").is_err());
        assert!(interpreter.run_line(".repairs Mgr notanumber").is_err());
        assert!(interpreter.run_line(".answer Mgr").is_err());
    }
}
