//! The `pdqi` binary: feed SQL + meta-command scripts to the [`pdqi_cli::Interpreter`].
//!
//! Usage:
//!
//! ```text
//! pdqi script1.sql script2.sql   # run the given scripts in order
//! pdqi                           # read a script from standard input
//! ```

use std::io::Read;

fn main() {
    let mut interpreter = pdqi_cli::Interpreter::new();
    let paths: Vec<String> = std::env::args().skip(1).collect();

    if paths.is_empty() {
        let mut script = String::new();
        if std::io::stdin().read_to_string(&mut script).is_err() {
            eprintln!("error: could not read a script from standard input");
            std::process::exit(1);
        }
        print!("{}", interpreter.run_script(&script));
        return;
    }

    for path in paths {
        match std::fs::read_to_string(&path) {
            Ok(script) => print!("{}", interpreter.run_script(&script)),
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
}
