//! The `pdqi` binary: scripts, a serving front end, and a protocol client.
//!
//! Usage:
//!
//! ```text
//! pdqi [--threads N] script1.sql script2.sql   # run the given scripts in order
//! pdqi [--threads N]                           # read a script from standard input
//! pdqi serve [--addr HOST:PORT] [--threads N] [--acceptors N] script.sql ...
//! pdqi coord --shard HOST:PORT [--shard HOST:PORT ...] --route TABLE:KEY:SPLITS
//! pdqi connect HOST:PORT                       # protocol lines on stdin → responses
//! ```
//!
//! `serve` loads the scripts into a SQL session, publishes every table into a snapshot
//! registry, and serves the wire protocol (PREPARE / EXEC / BATCH / INSERT / DELETE /
//! MUTATE / SET-PRIORITY / SUBSCRIBE / UNSUBSCRIBE / DESCRIBE / STATS / SHUTDOWN)
//! until a client sends `SHUTDOWN`. `coord` serves the same protocol as a
//! scatter-gather front end over running shard servers: `--shard` names each shard
//! endpoint in key-range order, `--route` gives a table's key column and the
//! `shards-1` ascending split values that carve its key domain (e.g.
//! `--route Emp:Id:10` for two shards splitting at `Id = 10`). `connect` sends one
//! request per input line (`BATCH` entries and mutation rows separated by `;`) and
//! prints each response; after a `SUBSCRIBE`, pushed `DELTA`/`LAGGED` frames print as
//! they arrive, and a client-side `WAIT <n> [timeout_ms]` line blocks until `n` of
//! them arrived.
//!
//! `--threads N` runs repair-quantified work with up to `N` worker threads
//! (`--threads 0` or `--threads auto` uses one worker per hardware thread). Parallelism
//! never changes answers — it only trades threads for latency.

use std::io::Read;

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: pdqi [--threads N|auto] [script.sql ...]");
    eprintln!(
        "       pdqi serve [--addr HOST:PORT] [--threads N|auto] [--acceptors N] \
         [--write-hold-ms N] [script.sql ...]"
    );
    eprintln!(
        "       pdqi coord [--addr HOST:PORT] [--acceptors N] --shard HOST:PORT ... \
         --route TABLE:KEY:SPLITS ..."
    );
    eprintln!("       pdqi connect HOST:PORT");
    std::process::exit(2);
}

fn parse_threads(text: &str) -> usize {
    if text == "auto" {
        return 0;
    }
    match text.parse() {
        Ok(threads) => threads,
        Err(_) => usage_error(&format!("`{text}` is not a thread count")),
    }
}

/// Flags shared by the script runner and `serve`: `--threads`, plus `serve`'s
/// `--addr`/`--acceptors`/`--write-hold-ms`; everything else is a script path.
struct Options {
    threads: usize,
    addr: String,
    acceptors: usize,
    write_hold_ms: u64,
    paths: Vec<String>,
}

fn parse_options(args: &[String], serve: bool) -> Options {
    let mut options = Options {
        threads: 1,
        addr: "127.0.0.1:4999".to_string(),
        acceptors: 1,
        write_hold_ms: 0,
        paths: Vec::new(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        // `--flag value` and `--flag=value` both work; None means `arg` is not this flag.
        let mut flag_value = |name: &str| -> Option<String> {
            if let Some(value) = arg.strip_prefix(name).and_then(|rest| rest.strip_prefix('=')) {
                return Some(value.to_string());
            }
            if arg == name {
                return Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error(&format!("{name} needs a value"))),
                );
            }
            None
        };
        if let Some(value) = flag_value("--threads") {
            options.threads = parse_threads(&value);
        } else if let Some(value) = serve.then(|| flag_value("--addr")).flatten() {
            options.addr = value;
        } else if let Some(value) = serve.then(|| flag_value("--acceptors")).flatten() {
            options.acceptors = value
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("`{value}` is not an acceptor count")));
        } else if let Some(value) = serve.then(|| flag_value("--write-hold-ms")).flatten() {
            options.write_hold_ms = value
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("`{value}` is not a hold in ms")));
        } else if arg.starts_with("--") {
            usage_error(&format!("unknown flag `{arg}`"));
        } else {
            options.paths.push(arg.clone());
        }
    }
    options
}

fn read_script(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(script) => script,
        Err(e) => {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(1);
        }
    }
}

fn script_main(args: &[String]) {
    let options = parse_options(args, false);
    let mut interpreter = pdqi_cli::Interpreter::with_threads(options.threads);
    if options.paths.is_empty() {
        let mut script = String::new();
        if std::io::stdin().read_to_string(&mut script).is_err() {
            eprintln!("error: could not read a script from standard input");
            std::process::exit(1);
        }
        print!("{}", interpreter.run_script(&script));
        return;
    }
    for path in &options.paths {
        print!("{}", interpreter.run_script(&read_script(path)));
    }
}

fn serve_main(args: &[String]) {
    use std::io::Write as _;

    let options = parse_options(args, true);
    let mut interpreter = pdqi_cli::Interpreter::with_threads(options.threads);
    for path in &options.paths {
        // Unlike the interactive runner, a serve-time load aborts on the first failing
        // statement — serving a partially-loaded catalog silently would be worse. The
        // per-line Result is the error signal (printed output can legitimately contain
        // the text "error:", e.g. in stored rows).
        for line in read_script(path).lines() {
            match interpreter.run_line(line) {
                Ok(output) => {
                    if !output.is_empty() {
                        print!("{output}");
                        if !output.ends_with('\n') {
                            println!();
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    eprintln!("error: `{path}` did not load cleanly; refusing to serve");
                    std::process::exit(1);
                }
            }
        }
    }
    let session = interpreter.session_mut();
    if let Err(e) = session.publish_tables() {
        eprintln!("error: cannot publish tables: {e}");
        std::process::exit(1);
    }
    let registry = std::sync::Arc::clone(session.registry());
    let tables = registry.table_names();
    let config = pdqi_server::ServerConfig {
        parallelism: session.parallelism(),
        acceptors: options.acceptors,
        write_hold: std::time::Duration::from_millis(options.write_hold_ms),
    };
    let handle = match pdqi_server::serve(options.addr.as_str(), registry, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot bind `{}`: {e}", options.addr);
            std::process::exit(1);
        }
    };
    // One parseable readiness line, flushed before blocking: scripted drivers (the CI
    // smoke job) wait for it before connecting.
    println!(
        "serving {} table(s) [{}] at {}",
        tables.len(),
        tables.join(", "),
        handle.local_addr()
    );
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("server stopped");
}

fn coord_main(args: &[String]) {
    use std::io::Write as _;

    let mut addr = "127.0.0.1:4998".to_string();
    let mut acceptors = 1usize;
    let mut shards: Vec<String> = Vec::new();
    let mut routes: Vec<pdqi_core::RouteSpec> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut flag_value = |name: &str| -> Option<String> {
            if let Some(value) = arg.strip_prefix(name).and_then(|rest| rest.strip_prefix('=')) {
                return Some(value.to_string());
            }
            if arg == name {
                return Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage_error(&format!("{name} needs a value"))),
                );
            }
            None
        };
        if let Some(value) = flag_value("--addr") {
            addr = value;
        } else if let Some(value) = flag_value("--acceptors") {
            acceptors = value
                .parse()
                .unwrap_or_else(|_| usage_error(&format!("`{value}` is not an acceptor count")));
        } else if let Some(value) = flag_value("--shard") {
            shards.push(value);
        } else if let Some(value) = flag_value("--route") {
            match pdqi_core::RouteSpec::parse(&value) {
                Ok(route) => routes.push(route),
                Err(e) => usage_error(&format!("bad --route: {e}")),
            }
        } else {
            usage_error(&format!("unknown argument `{arg}`"));
        }
    }
    if shards.is_empty() {
        usage_error("coord needs at least one --shard HOST:PORT");
    }
    let config = pdqi_server::CoordinatorConfig { acceptors };
    let handle = match pdqi_server::coordinate(addr.as_str(), &shards, &routes, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot start the coordinator: {e}");
            std::process::exit(1);
        }
    };
    // One parseable readiness line, flushed before blocking, mirroring `serve`'s.
    println!(
        "coordinating {} shard(s) [{}] at {}",
        shards.len(),
        shards.join(", "),
        handle.local_addr()
    );
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("coordinator stopped");
}

fn connect_main(args: &[String]) {
    let [addr] = args else {
        usage_error("connect takes exactly one HOST:PORT argument");
    };
    let mut input = String::new();
    if std::io::stdin().read_to_string(&mut input).is_err() {
        eprintln!("error: could not read requests from standard input");
        std::process::exit(1);
    }
    match pdqi_cli::run_connect_script(addr, &input) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("coord") => coord_main(&args[1..]),
        Some("connect") => connect_main(&args[1..]),
        _ => script_main(&args),
    }
}
