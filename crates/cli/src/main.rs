//! The `pdqi` binary: feed SQL + meta-command scripts to the [`pdqi_cli::Interpreter`].
//!
//! Usage:
//!
//! ```text
//! pdqi [--threads N] script1.sql script2.sql   # run the given scripts in order
//! pdqi [--threads N]                           # read a script from standard input
//! ```
//!
//! `--threads N` answers repair-quantified queries with up to `N` worker threads
//! (`--threads 0` or `--threads auto` uses one worker per hardware thread). Parallelism
//! never changes answers — it only trades threads for latency.

use std::io::Read;

fn usage_error(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: pdqi [--threads N|auto] [script.sql ...]");
    std::process::exit(2);
}

fn parse_threads(text: &str) -> usize {
    if text == "auto" {
        return 0;
    }
    match text.parse() {
        Ok(threads) => threads,
        Err(_) => usage_error(&format!("`{text}` is not a thread count")),
    }
}

fn main() {
    let mut threads = 1usize;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            match args.next() {
                Some(value) => threads = parse_threads(&value),
                None => usage_error("--threads needs a value"),
            }
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            threads = parse_threads(value);
        } else if arg.starts_with("--") {
            usage_error(&format!("unknown flag `{arg}`"));
        } else {
            paths.push(arg);
        }
    }

    let mut interpreter = pdqi_cli::Interpreter::with_threads(threads);

    if paths.is_empty() {
        let mut script = String::new();
        if std::io::stdin().read_to_string(&mut script).is_err() {
            eprintln!("error: could not read a script from standard input");
            std::process::exit(1);
        }
        print!("{}", interpreter.run_script(&script));
        return;
    }

    for path in paths {
        match std::fs::read_to_string(&path) {
            Ok(script) => print!("{}", interpreter.run_script(&script)),
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
}
