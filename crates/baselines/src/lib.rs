//! Related-work baselines for preference-driven consistent query answering.
//!
//! Section 5 of the paper positions its four families of preferred repairs against a line
//! of earlier proposals for using priorities to maintain consistency or to resolve
//! conflicts. Each of those proposals makes different trade-offs between the desirable
//! properties P1–P4 (non-emptiness, monotonicity, non-discrimination, categoricity), and
//! the paper's critique of them is *behavioural*: it states which properties each one
//! satisfies and where its representation of preferences is too restrictive.
//!
//! This crate implements those competing semantics so the critique can be reproduced and
//! measured rather than taken on faith:
//!
//! * [`numeric`] — numeric priority levels attached to facts, in the style of Fagin,
//!   Ullman and Vardi's prioritised database updates \[9\]: the induced priority is
//!   forced to be *transitive on conflicting facts*, which cannot express the paper's
//!   per-constraint preferences.
//! * [`subtheories`] — Brewka's preferred subtheories \[4\]: the facts are stratified and
//!   maximal consistent subsets are built stratum by stratum, analogously to the paper's
//!   C-repairs but again restricted to level-based (hence transitive) preferences.
//! * [`grosof`] — prioritised conflict handling in the style of Grosof \[14\]: every
//!   conflict whose resolution the priority does not determine is resolved by removing
//!   *both* participants. The output is unique but in general not a repair (not maximal),
//!   and the construction violates P2 and P3.
//! * [`ranking`] — utility-based resolution in the style of Motro, Anokhin and Acar
//!   \[17\]: a ranking function keeps the best tuple of every conflict group and *fuses*
//!   numeric values on ties, producing an instance that may contain invented tuples and
//!   is therefore not a repair in the sense of Definition 1.
//! * [`repair_ranking`] — repair ranking functions in the style of Greco, Sirangelo,
//!   Trubitsyna and Zumpano \[13\]: repairs are scored by a (weight-based) function and
//!   only the top-ranked repairs are kept. The preference is not tied to how individual
//!   conflicts are resolved, so extension/monotonicity (P2) is not even expressible.
//! * [`repair_constraints`] — repair constraints in the style of Greco and Lembo \[12\]:
//!   declarative restrictions on which tuples may be deleted together. The family
//!   satisfies P2 but not P1; the weakening that restores P1 loses P2 — exactly the
//!   trade-off the paper points out.
//! * [`comparison`] — a harness that runs every baseline and every family of the paper on
//!   the same scenario and reports the selected repairs, property profile and answer
//!   behaviour side by side (used by the `baselines_tour` example and the `e11` bench).
//!
//! Where a baseline genuinely selects a *subset of the repairs* it also implements the
//! [`RepairFamily`](pdqi_core::RepairFamily) trait, so the paper's property checkers and
//! the preferred-CQA machinery apply to it unchanged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comparison;
pub mod grosof;
pub mod numeric;
pub mod ranking;
pub mod repair_constraints;
pub mod repair_ranking;
pub mod subtheories;

pub use comparison::{compare_semantics, SemanticsReport, SemanticsRow};
pub use grosof::{grosof_resolution, GrosofOutcome};
pub use numeric::{LevelAssignment, NumericLevelFamily};
pub use ranking::{RankedFusion, RankingOutcome};
pub use repair_constraints::{RepairConstraint, RepairConstraintFamily};
pub use repair_ranking::RepairRankingFamily;
pub use subtheories::{PreferredSubtheories, Stratification};
