//! Utility-based conflict resolution in the style of Motro, Anokhin and Acar \[17\].
//!
//! Conflicting tuples are grouped, a ranking function scores every tuple, and only the
//! highest-ranked tuple of each group is kept. When the top rank is tied and the
//! conflicting attributes are numeric, a *fusion* value is computed from the tied tuples
//! (here: the arithmetic mean, the variant \[17\] describes for numeric attributes).
//!
//! The paper's Section 5 makes two observations that the implementation lets us verify:
//!
//! * under the assumption that no two conflicting tuples tie, the construction yields a
//!   unique consistent instance (the analogue of P4 holds), and that instance is a repair
//!   whenever every conflict group is a clique;
//! * when fusion kicks in, the constructed instance contains tuples that were never part
//!   of the original database, so it is **not a repair** in the sense of Definition 1 —
//!   a possible loss (and invention) of information.

use std::sync::Arc;

use pdqi_core::RepairContext;
use pdqi_relation::{RelationInstance, TupleId, TupleSet, Value, ValueType};

/// The result of a ranking-based resolution.
#[derive(Debug, Clone)]
pub struct RankingOutcome {
    /// The resolved instance (winners of every conflict group plus all conflict-free
    /// tuples; fused tuples are freshly constructed rows).
    pub resolved: RelationInstance,
    /// The original tuples kept unchanged.
    pub kept: TupleSet,
    /// Number of groups whose tie was broken by fusing values into an invented tuple.
    pub fused_groups: usize,
    /// Whether the resolved instance is exactly a repair of the original instance (a
    /// maximal consistent subset containing no invented tuples).
    pub is_repair: bool,
}

/// A ranking function over the tuples plus the fusion-based resolution procedure.
#[derive(Debug, Clone)]
pub struct RankedFusion {
    scores: Vec<i64>,
}

impl RankedFusion {
    /// One score per tuple, indexed by [`TupleId`]; higher scores win.
    pub fn new(scores: Vec<i64>) -> Self {
        RankedFusion { scores }
    }

    /// The score of a tuple (missing entries rank lowest).
    pub fn score(&self, tuple: TupleId) -> i64 {
        self.scores.get(tuple.index()).copied().unwrap_or(i64::MIN)
    }

    /// Resolves every conflict group of `ctx` (a connected component of the conflict
    /// graph with at least two tuples) by keeping its highest-ranked tuple, fusing the
    /// numeric attributes of the tied top-ranked tuples when the maximum is not unique.
    pub fn resolve(&self, ctx: &RepairContext) -> RankingOutcome {
        let instance = ctx.instance();
        let schema = Arc::clone(instance.schema());
        let graph = ctx.graph();
        let mut resolved = RelationInstance::new(Arc::clone(&schema));
        let mut kept = TupleSet::with_capacity(instance.len());
        let mut fused_groups = 0usize;

        for component in graph.connected_components() {
            if component.len() == 1 {
                let id = component.first().expect("non-empty component");
                resolved.insert_tuple(instance.tuple_unchecked(id).clone());
                kept.insert(id);
                continue;
            }
            let best = component.iter().map(|t| self.score(t)).max().expect("non-empty");
            let winners: Vec<TupleId> =
                component.iter().filter(|&t| self.score(t) == best).collect();
            if let [single] = winners[..] {
                resolved.insert_tuple(instance.tuple_unchecked(single).clone());
                kept.insert(single);
            } else {
                resolved.insert_tuple(fuse(instance, &winners));
                fused_groups += 1;
            }
        }

        let is_repair = fused_groups == 0 && ctx.is_repair(&kept);
        RankingOutcome { resolved, kept, fused_groups, is_repair }
    }
}

/// Fuses the tied tuples into one row: numeric attributes become the arithmetic mean of
/// the tied values, name attributes take the value of the first tied tuple (an arbitrary
/// but deterministic representative).
fn fuse(instance: &RelationInstance, tied: &[TupleId]) -> pdqi_relation::Tuple {
    let schema = instance.schema();
    let representative = instance.tuple_unchecked(tied[0]);
    let mut values = Vec::with_capacity(schema.arity());
    for (position, attribute) in schema.attributes().iter().enumerate() {
        let attr = pdqi_relation::AttrId(position);
        match attribute.ty {
            ValueType::Int => {
                let sum: i64 = tied
                    .iter()
                    .filter_map(|&t| instance.tuple_unchecked(t).get(attr).as_int())
                    .sum();
                values.push(Value::int(sum / tied.len() as i64));
            }
            ValueType::Name => values.push(representative.get(attr).clone()),
        }
    }
    schema.tuple(values).expect("fused row follows the schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::FdSet;
    use pdqi_relation::{RelationSchema, Value};

    fn salary_context(rows: &[(&str, i64)]) -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            rows.iter().map(|&(n, s)| vec![Value::name(n), Value::int(s)]).collect(),
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["Name -> Salary"]).unwrap();
        RepairContext::new(instance, fds)
    }

    #[test]
    fn unique_top_rank_selects_a_repair() {
        let ctx = salary_context(&[("Mary", 40), ("Mary", 20), ("John", 10)]);
        let outcome = RankedFusion::new(vec![5, 1, 0]).resolve(&ctx);
        assert!(outcome.is_repair);
        assert_eq!(outcome.fused_groups, 0);
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(0), TupleId(2)]));
        assert_eq!(outcome.resolved.len(), 2);
    }

    #[test]
    fn ties_trigger_fusion_and_the_result_is_not_a_repair() {
        let ctx = salary_context(&[("Mary", 40), ("Mary", 20), ("John", 10)]);
        let outcome = RankedFusion::new(vec![3, 3, 0]).resolve(&ctx);
        assert_eq!(outcome.fused_groups, 1);
        assert!(!outcome.is_repair);
        // The fused salary 30 never appeared in the original database.
        let fused =
            ctx.instance().schema().tuple(vec![Value::name("Mary"), Value::int(30)]).unwrap();
        assert!(outcome.resolved.contains_tuple(&fused));
        assert!(!ctx.instance().contains_tuple(&fused));
    }

    #[test]
    fn conflict_free_tuples_always_survive() {
        let ctx = salary_context(&[("Mary", 40), ("John", 10), ("Eve", 55)]);
        let outcome = RankedFusion::new(vec![0, 0, 0]).resolve(&ctx);
        assert!(outcome.is_repair);
        assert_eq!(outcome.resolved.len(), 3);
        assert_eq!(outcome.kept.len(), 3);
    }

    #[test]
    fn groups_larger_than_two_keep_only_the_best_tuple() {
        let ctx = salary_context(&[("Mary", 40), ("Mary", 20), ("Mary", 35), ("John", 10)]);
        let outcome = RankedFusion::new(vec![1, 9, 4, 0]).resolve(&ctx);
        assert!(outcome.kept.contains(TupleId(1)));
        assert!(!outcome.kept.contains(TupleId(0)));
        assert!(!outcome.kept.contains(TupleId(2)));
        assert_eq!(outcome.resolved.len(), 2);
        assert!(outcome.is_repair);
    }
}
