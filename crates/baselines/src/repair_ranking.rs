//! Repair ranking functions in the style of Greco, Sirangelo, Trubitsyna and Zumpano \[13\].
//!
//! Instead of orienting individual conflicts, the user supplies a function that scores
//! whole repairs (here: the sum of per-tuple weights, the polynomial form of \[13\]) and
//! only the top-ranked repairs are used for consistent query answering.
//!
//! The paper's discussion points out the structural differences from its own framework,
//! which the tests of this module make executable:
//!
//! * the preference is **not based on how individual conflicts are resolved**: two
//!   repairs that resolve every conflict identically except on tuples of equal weight are
//!   indistinguishable, and conversely a single weight perturbation reorders repairs that
//!   share no conflict;
//! * the notion of *extension* of the preference (and hence P2/P4) has no natural
//!   counterpart — the closest analogue, adding weight information, can both narrow and
//!   widen the selected set;
//! * P1 and the letter of P3 hold: there is always a top-ranked repair, and the constant
//!   weight function selects every repair.

use std::ops::ControlFlow;

use pdqi_core::{RepairContext, RepairFamily};
use pdqi_priority::Priority;
use pdqi_relation::{TupleId, TupleSet};

/// The family of weight-maximal repairs.
///
/// The weights are the baseline's only preference input, so the `priority` argument of
/// the [`RepairFamily`] methods is ignored.
#[derive(Debug, Clone)]
pub struct RepairRankingFamily {
    weights: Vec<i64>,
}

impl RepairRankingFamily {
    /// One weight per tuple, indexed by [`TupleId`]; the rank of a repair is the sum of
    /// the weights of its tuples and higher ranks are preferred.
    pub fn new(weights: Vec<i64>) -> Self {
        RepairRankingFamily { weights }
    }

    /// The constant ranking (every repair ties for the top rank).
    pub fn uniform(tuples: usize) -> Self {
        RepairRankingFamily { weights: vec![0; tuples] }
    }

    /// The weight of one tuple (missing entries weigh nothing).
    pub fn weight(&self, tuple: TupleId) -> i64 {
        self.weights.get(tuple.index()).copied().unwrap_or(0)
    }

    /// The rank of a set of tuples.
    pub fn rank(&self, set: &TupleSet) -> i64 {
        set.iter().map(|t| self.weight(t)).sum()
    }

    /// The maximum rank over all repairs of `ctx` (by exhaustive enumeration — the
    /// problem is NP-hard in general, and the exhaustive search doubles as the reference
    /// the benches compare against).
    pub fn max_rank(&self, ctx: &RepairContext) -> i64 {
        let mut best = i64::MIN;
        ctx.for_each_repair(|repair| {
            best = best.max(self.rank(repair));
            ControlFlow::Continue(())
        });
        best
    }
}

impl RepairFamily for RepairRankingFamily {
    fn name(&self) -> &'static str {
        "repair-ranking"
    }

    fn is_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        candidate: &TupleSet,
    ) -> bool {
        ctx.is_repair(candidate) && self.rank(candidate) == self.max_rank(ctx)
    }

    fn for_each_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> bool {
        // One pass to find the top rank, one pass to report the repairs that attain it.
        let best = self.max_rank(ctx);
        ctx.for_each_repair(|repair| {
            if self.rank(repair) == best {
                callback(repair)
            } else {
                ControlFlow::Continue(())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_constraints::FdSet;
    use pdqi_core::FamilyKind;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

    fn key_context(rows: &[(i64, i64)]) -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            rows.iter().map(|&(a, b)| vec![Value::int(a), Value::int(b)]).collect(),
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        RepairContext::new(instance, fds)
    }

    #[test]
    fn uniform_weights_select_every_repair() {
        let ctx = key_context(&[(1, 1), (1, 2), (2, 1), (2, 2)]);
        let family = RepairRankingFamily::uniform(4);
        let preferred = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(preferred.len() as u128, ctx.count_repairs());
    }

    #[test]
    fn the_heaviest_repair_wins() {
        let ctx = key_context(&[(1, 1), (1, 2), (2, 1), (2, 2)]);
        let family = RepairRankingFamily::new(vec![10, 1, 1, 10]);
        let preferred = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(0), TupleId(3)])]);
        assert_eq!(family.max_rank(&ctx), 20);
    }

    #[test]
    fn ties_keep_several_repairs() {
        let ctx = key_context(&[(1, 1), (1, 2), (2, 1), (2, 2)]);
        let family = RepairRankingFamily::new(vec![5, 5, 0, 1]);
        let preferred = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(preferred.len(), 2);
        for repair in &preferred {
            assert_eq!(family.rank(repair), 6);
        }
    }

    #[test]
    fn weight_refinement_is_not_monotone() {
        // "Adding preference information" (turning a zero weight into a positive one) can
        // select a repair that the coarser weights had excluded — the analogue of P2
        // fails for this baseline.
        let ctx = key_context(&[(1, 1), (1, 2)]);
        let coarse = RepairRankingFamily::new(vec![1, 0]);
        let refined = RepairRankingFamily::new(vec![1, 5]);
        let empty = ctx.empty_priority();
        let coarse_preferred = coarse.preferred_repairs(&ctx, &empty, usize::MAX);
        let refined_preferred = refined.preferred_repairs(&ctx, &empty, usize::MAX);
        assert_eq!(coarse_preferred, vec![TupleSet::from_ids([TupleId(0)])]);
        assert_eq!(refined_preferred, vec![TupleSet::from_ids([TupleId(1)])]);
        assert!(!refined_preferred.iter().all(|r| coarse_preferred.contains(r)));
    }

    #[test]
    fn repair_ranking_can_disagree_with_every_priority_family() {
        // The weight function prefers the repair that loses *every* oriented conflict:
        // no family of the paper (which must respect the priority) selects it alone.
        let ctx = key_context(&[(1, 1), (1, 2)]);
        let priority = ctx.priority_from_pairs(&[(TupleId(0), TupleId(1))]).unwrap();
        let ranking = RepairRankingFamily::new(vec![0, 100]);
        let ranked = ranking.preferred_repairs(&ctx, &priority, usize::MAX);
        assert_eq!(ranked, vec![TupleSet::from_ids([TupleId(1)])]);
        for kind in [FamilyKind::Global, FamilyKind::Common] {
            let of_paper = kind.family().preferred_repairs(&ctx, &priority, usize::MAX);
            assert_eq!(of_paper, vec![TupleSet::from_ids([TupleId(0)])]);
        }
    }

    #[test]
    fn non_repairs_are_never_preferred() {
        let ctx = key_context(&[(1, 1), (1, 2)]);
        let family = RepairRankingFamily::new(vec![1, 2]);
        assert!(!family.is_preferred(&ctx, &ctx.empty_priority(), &TupleSet::new()));
    }
}
