//! Prioritised conflict handling in the style of Grosof \[14\].
//!
//! The approach the paper discusses for non-disjunctive logic programs removes
//! *both* participants of every conflict the priority does not resolve; conflicts with an
//! explicit winner are resolved in the winner's favour, as in the paper's Algorithm 1.
//! Concretely the construction runs in two phases: first every tuple involved in an
//! unoriented conflict is discarded outright, then the remaining tuples (whose conflicts
//! are all oriented) are cleaned with the winnow iteration of Algorithm 1, which is
//! deterministic because the restricted priority is total.
//!
//! The output is therefore a single consistent instance — the construction enjoys the
//! analogues of non-emptiness and categoricity, and with a *total* priority it coincides
//! with Algorithm 1's unique repair — but, exactly as the paper's Section 5 points out:
//!
//! * with an incomplete priority the output may fail to be a repair: when a conflict is
//!   left unresolved both tuples disappear even though every repair keeps one of them, so
//!   the result need not be a *maximal* consistent subset (loss of disjunctive
//!   information);
//! * **P3 fails**: with the empty priority the construction returns only the
//!   conflict-free tuples rather than behaving like the full set of repairs;
//! * **P2 fails** in the only sense applicable to a single-output semantics: the output
//!   under an extended priority need not be contained in any output sanctioned by the
//!   smaller priority, because newly oriented conflicts resurrect tuples that the smaller
//!   priority had thrown away.
//!
//! [`grosof_resolution`] computes the construction and reports enough detail for the
//! comparison harness and the tests to verify each of those claims.

use pdqi_constraints::ConflictGraph;
use pdqi_priority::{winnow, Priority};
use pdqi_relation::TupleSet;

/// The result of resolving conflicts in the style of \[14\].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrosofOutcome {
    /// The tuples that survive both phases.
    pub kept: TupleSet,
    /// Tuples removed in the second phase because they lost an oriented conflict.
    pub removed_dominated: TupleSet,
    /// Tuples removed in the first phase because they were involved in a conflict the
    /// priority left unresolved (the information-losing case).
    pub removed_unresolved: TupleSet,
}

impl GrosofOutcome {
    /// Whether the surviving set is a repair, i.e. a *maximal* consistent subset of the
    /// original instance. With a total priority this always holds; with an incomplete
    /// priority it may fail, which is the information loss the paper criticises.
    pub fn is_repair(&self, graph: &ConflictGraph) -> bool {
        graph.is_maximal_independent(&self.kept)
    }

    /// Number of tuples lost to unresolved conflicts.
    pub fn information_loss(&self) -> usize {
        self.removed_unresolved.len()
    }
}

/// Resolves every conflict of `graph` using `priority` in the style of \[14\]: tuples
/// involved in a conflict the priority does not orient are removed outright, and the
/// remaining tuples are cleaned with the winnow iteration of Algorithm 1 (deterministic,
/// because every remaining conflict is oriented).
pub fn grosof_resolution(graph: &ConflictGraph, priority: &Priority) -> GrosofOutcome {
    let n = graph.vertex_count();
    // Phase 1: discard both sides of every unresolved conflict.
    let mut removed_unresolved = TupleSet::with_capacity(n);
    for &(a, b) in graph.edges() {
        if !priority.orients_edge(a, b) {
            removed_unresolved.insert(a);
            removed_unresolved.insert(b);
        }
    }
    let mut active = TupleSet::full(n);
    active.remove_all(&removed_unresolved);

    // Phase 2: Algorithm 1 on the survivors. Every conflict among them is oriented, so
    // repeatedly keeping the winnow-undominated tuples and dropping their losing
    // neighbours is choice-independent.
    let mut kept = TupleSet::with_capacity(n);
    let mut removed_dominated = TupleSet::with_capacity(n);
    while !active.is_empty() {
        let winners = winnow(priority, &active);
        if winners.is_empty() {
            // Cannot happen for an acyclic priority, but guard against looping forever.
            removed_dominated.union_with(&active);
            break;
        }
        for winner in winners.iter() {
            if !active.contains(winner) {
                continue;
            }
            kept.insert(winner);
            active.remove(winner);
            for neighbour in graph.neighbors(winner).iter() {
                if active.remove(neighbour) {
                    removed_dominated.insert(neighbour);
                }
            }
        }
    }
    GrosofOutcome { kept, removed_dominated, removed_unresolved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_relation::TupleId;

    /// A triangle of pairwise-conflicting tuples.
    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        ))
    }

    /// Example 1's conflict graph: t0–t1, t0–t2, t1–t3.
    fn example1_graph() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            4,
            &[(TupleId(0), TupleId(1)), (TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))],
        ))
    }

    #[test]
    fn total_priority_keeps_exactly_the_undominated_winners() {
        // t0 ≻ t1, t1 ≻ t2, t0 ≻ t2 on the triangle: only t0 survives — which here is
        // also the unique repair Algorithm 1 would produce.
        let graph = triangle();
        let priority = Priority::from_pairs(
            Arc::clone(&graph),
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        )
        .unwrap();
        let outcome = grosof_resolution(&graph, &priority);
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(0)]));
        assert!(outcome.is_repair(&graph));
        assert_eq!(outcome.information_loss(), 0);
    }

    #[test]
    fn unresolved_conflicts_remove_both_sides() {
        // Empty priority on the triangle: everything is removed — the output is the empty
        // set, which is consistent but not maximal, hence not a repair.
        let graph = triangle();
        let priority = Priority::empty(Arc::clone(&graph));
        let outcome = grosof_resolution(&graph, &priority);
        assert!(outcome.kept.is_empty());
        assert_eq!(outcome.information_loss(), 3);
        assert!(!outcome.is_repair(&graph));
    }

    #[test]
    fn p3_fails_only_isolated_tuples_survive_the_empty_priority() {
        // t4 isolated, everything else in conflict: with no priority the construction
        // returns {t4}, not the behaviour of "all repairs" required by P3.
        let graph = Arc::new(ConflictGraph::from_edges(5, &[(TupleId(0), TupleId(1))]));
        let outcome = grosof_resolution(&graph, &Priority::empty(Arc::clone(&graph)));
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(2), TupleId(3), TupleId(4)]));
        assert!(!outcome.is_repair(&graph));
    }

    #[test]
    fn extending_the_priority_is_not_monotone() {
        // Under the smaller priority t1 is removed (its conflict with t3 is unresolved);
        // the extension resolves that conflict in t1's favour and resurrects it, so the
        // larger-priority output is not a subset of the smaller-priority output: the
        // analogue of P2 fails.
        let graph = example1_graph();
        let smaller =
            Priority::from_pairs(Arc::clone(&graph), &[(TupleId(1), TupleId(0))]).unwrap();
        let mut larger = smaller.clone();
        larger.add(TupleId(1), TupleId(3)).unwrap();
        larger.add(TupleId(2), TupleId(0)).unwrap();
        let small_outcome = grosof_resolution(&graph, &smaller);
        let large_outcome = grosof_resolution(&graph, &larger);
        assert!(!small_outcome.kept.contains(TupleId(1)));
        assert!(large_outcome.kept.contains(TupleId(1)));
        assert!(!large_outcome.kept.is_subset_of(&small_outcome.kept));
    }

    #[test]
    fn partial_priority_on_example_1_keeps_only_the_unreliable_repair() {
        // Orient only the Name-FD conflicts in favour of the s1/s2 tuples (Example 3's
        // reliability): the Dept conflict t0–t1 stays unresolved, so both reliable R&D
        // claims are dropped outright and only the two s3 tuples survive. The output
        // happens to be a repair here — but it is exactly the repair the paper's
        // preference-respecting families reject (all its tuples come from the least
        // reliable source), so the reliability information was used backwards.
        let graph = example1_graph();
        let priority = Priority::from_pairs(
            Arc::clone(&graph),
            &[(TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))],
        )
        .unwrap();
        let outcome = grosof_resolution(&graph, &priority);
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(2), TupleId(3)]));
        assert_eq!(outcome.information_loss(), 2);
        assert!(outcome.is_repair(&graph));
        assert!(!pdqi_core::optimality::is_globally_optimal(&graph, &priority, &outcome.kept));
    }

    #[test]
    fn path_with_total_priority_matches_algorithm_1() {
        // a ≻ b ≻ c on the path a–b–c: the unique repair of Algorithm 1 is {a, c}; the
        // one-shot "keep only tuples that win all their conflicts" reading would lose c.
        let graph = Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2))],
        ));
        let priority = Priority::from_pairs(
            Arc::clone(&graph),
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2))],
        )
        .unwrap();
        let outcome = grosof_resolution(&graph, &priority);
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(0), TupleId(2)]));
        assert!(outcome.is_repair(&graph));
        assert_eq!(outcome.information_loss(), 0);
    }
}
