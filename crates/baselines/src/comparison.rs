//! Side-by-side comparison of the paper's families and the Section 5 baselines.
//!
//! [`compare_semantics`] runs every semantics on one scenario — an inconsistent instance,
//! a priority of the paper's kind and the level/weight information the baselines consume
//! — and reports, per semantics, how many repairs it selects, whether its outputs are
//! repairs at all, and whether a probe query becomes determined. The `baselines_tour`
//! example and the `e11_baselines` bench print these reports.

use pdqi_core::{preferred_consistent_answer, CqaOutcome, FamilyKind, RepairContext, RepairFamily};
use pdqi_priority::Priority;
use pdqi_query::Formula;

use crate::grosof::grosof_resolution;
use crate::numeric::{LevelAssignment, NumericLevelFamily};
use crate::ranking::RankedFusion;
use crate::repair_ranking::RepairRankingFamily;
use crate::subtheories::{PreferredSubtheories, Stratification};

/// One row of the comparison: how one semantics behaves on the scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsRow {
    /// Display name of the semantics.
    pub name: String,
    /// Number of selected repairs (or of produced instances, for the single-output
    /// baselines).
    pub selected: u128,
    /// Whether every output is a repair of the original instance (Definition 1).
    pub outputs_are_repairs: bool,
    /// The probe query's outcome under this semantics, when the semantics supports
    /// consistent query answering over a set of repairs.
    pub probe: Option<CqaOutcome>,
}

/// The full comparison report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticsReport {
    /// One row per semantics, paper families first.
    pub rows: Vec<SemanticsRow>,
}

impl SemanticsReport {
    /// The row of a given semantics, if present.
    pub fn row(&self, name: &str) -> Option<&SemanticsRow> {
        self.rows.iter().find(|row| row.name == name)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("semantics                 selected  outputs-are-repairs  probe-query\n");
        for row in &self.rows {
            let probe = match row.probe {
                None => "n/a".to_string(),
                Some(outcome) if outcome.certainly_true => "certainly true".to_string(),
                Some(outcome) if outcome.certainly_false => "certainly false".to_string(),
                Some(_) => "undetermined".to_string(),
            };
            out.push_str(&format!(
                "{:<25} {:>8}  {:>19}  {}\n",
                row.name,
                row.selected,
                if row.outputs_are_repairs { "yes" } else { "no" },
                probe
            ));
        }
        out
    }
}

/// The preference inputs of the baselines, derived from the same user knowledge that the
/// paper's priority encodes (reliability levels per tuple double as ranking scores and
/// repair weights; strata are the levels inverted).
#[derive(Debug, Clone)]
pub struct BaselineInputs {
    /// Reliability level per tuple (higher = more reliable).
    pub levels: Vec<u64>,
}

impl BaselineInputs {
    /// Inputs with one reliability level per tuple.
    pub fn from_levels(levels: Vec<u64>) -> Self {
        BaselineInputs { levels }
    }

    fn stratification(&self) -> Stratification {
        let top = self.levels.iter().copied().max().unwrap_or(0);
        Stratification::new(self.levels.iter().map(|&l| (top - l) as usize).collect())
    }

    fn weights(&self) -> Vec<i64> {
        self.levels.iter().map(|&l| l as i64).collect()
    }
}

/// Runs every semantics on the scenario and collects the report.
///
/// `probe` is evaluated as a preferred consistent query answer wherever the semantics
/// yields a set of repairs; the single-output constructions (Grosof-style removal,
/// ranking with fusion) report only their output shape.
pub fn compare_semantics(
    ctx: &RepairContext,
    priority: &Priority,
    inputs: &BaselineInputs,
    probe: &Formula,
) -> SemanticsReport {
    let mut rows = Vec::new();

    for kind in FamilyKind::ALL {
        let family = kind.family();
        rows.push(family_row(kind.label(), family.as_ref(), ctx, priority, probe));
    }

    let numeric = NumericLevelFamily::new(LevelAssignment::new(inputs.levels.clone()));
    rows.push(family_row("FUV numeric levels", &numeric, ctx, priority, probe));

    let subtheories = PreferredSubtheories::new(inputs.stratification());
    rows.push(family_row("Brewka subtheories", &subtheories, ctx, priority, probe));

    let ranking = RepairRankingFamily::new(inputs.weights());
    rows.push(family_row("repair ranking", &ranking, ctx, priority, probe));

    let grosof = grosof_resolution(ctx.graph(), priority);
    rows.push(SemanticsRow {
        name: "Grosof removal".to_string(),
        selected: 1,
        outputs_are_repairs: grosof.is_repair(ctx.graph()),
        probe: None,
    });

    let fusion = RankedFusion::new(inputs.weights()).resolve(ctx);
    rows.push(SemanticsRow {
        name: "Motro ranking+fusion".to_string(),
        selected: 1,
        outputs_are_repairs: fusion.is_repair,
        probe: None,
    });

    SemanticsReport { rows }
}

fn family_row(
    name: &str,
    family: &dyn RepairFamily,
    ctx: &RepairContext,
    priority: &Priority,
    probe: &Formula,
) -> SemanticsRow {
    let selected = family.count_preferred(ctx, priority);
    let outputs_are_repairs = family
        .preferred_repairs(ctx, priority, usize::MAX)
        .iter()
        .all(|repair| ctx.is_repair(repair));
    let probe = preferred_consistent_answer(ctx, priority, family, probe).ok();
    SemanticsRow { name: name.to_string(), selected, outputs_are_repairs, probe }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_constraints::FdSet;
    use pdqi_priority::{priority_from_source_reliability, SourceOrder};
    use pdqi_query::parse_formula;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

    /// The Example 1 scenario with the Example 3 reliability information, expressed both
    /// as a priority (for the paper's families) and as levels (for the baselines).
    fn scenario() -> (RepairContext, Priority, BaselineInputs, Formula) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
                vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
                vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
            ],
        )
        .unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        let ctx = RepairContext::new(instance, fds);
        let mut order = SourceOrder::new();
        order.prefer("s1", "s3");
        order.prefer("s2", "s3");
        let sources = vec!["s1".into(), "s2".into(), "s3".into(), "s3".into()];
        let priority = priority_from_source_reliability(Arc::clone(ctx.graph()), &sources, &order);
        let inputs = BaselineInputs::from_levels(vec![2, 2, 1, 1]);
        let q2 = parse_formula(
            "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) \
             AND s1 > s2 AND r1 < r2",
        )
        .unwrap();
        (ctx, priority, inputs, q2)
    }

    #[test]
    fn the_report_covers_all_semantics() {
        let (ctx, priority, inputs, probe) = scenario();
        let report = compare_semantics(&ctx, &priority, &inputs, &probe);
        assert_eq!(report.rows.len(), 10);
        assert!(report.row("G-Rep").is_some());
        assert!(report.row("Grosof removal").is_some());
        let rendered = report.render();
        assert!(rendered.contains("G-Rep"));
        assert!(rendered.contains("Motro"));
    }

    #[test]
    fn example_3_answers_match_the_paper_across_semantics() {
        let (ctx, priority, inputs, probe) = scenario();
        let report = compare_semantics(&ctx, &priority, &inputs, &probe);
        // Without preferences the answer to Q2 is undetermined; with the Example 3
        // priority the preference-respecting semantics make it certainly true.
        assert!(report.row("Rep").unwrap().probe.unwrap().is_undetermined());
        assert!(report.row("G-Rep").unwrap().probe.unwrap().certainly_true);
        assert!(report.row("C-Rep").unwrap().probe.unwrap().certainly_true);
        // The level-based baselines carry the same information here, so they agree.
        assert!(report.row("FUV numeric levels").unwrap().probe.unwrap().certainly_true);
        assert!(report.row("Brewka subtheories").unwrap().probe.unwrap().certainly_true);
        // Every repair-selecting semantics outputs genuine repairs.
        for name in ["Rep", "L-Rep", "S-Rep", "G-Rep", "C-Rep", "FUV numeric levels"] {
            assert!(report.row(name).unwrap().outputs_are_repairs);
        }
        // The single-output constructions each produce exactly one instance. On this
        // scenario the Grosof-style removal keeps only the two s3 tuples — a repair, but
        // precisely the one every preference-respecting family rejects (see the unit
        // tests of `grosof` for the non-maximal cases).
        assert_eq!(report.row("Grosof removal").unwrap().selected, 1);
        assert_eq!(report.row("Motro ranking+fusion").unwrap().selected, 1);
    }
}
