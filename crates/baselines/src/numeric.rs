//! Numeric priority levels in the style of Fagin, Ullman and Vardi \[9\].
//!
//! The earliest use of priorities for consistency maintenance attaches a *natural number*
//! to every fact and, when an update introduces a conflict, resolves it in favour of the
//! fact with the higher level (the paper's Section 5 describes this as selecting
//! minimally different repairs "in a fashion similar to G-repairs").
//!
//! The representation has a consequence the paper criticises: the priority it induces is
//! necessarily **transitive on conflicting facts**. If `a`, `b`, `c` are pairwise
//! conflicting and the levels order `a` above `b` and `b` above `c`, then they also order
//! `a` above `c` — even when the `a`–`c` conflict stems from a different integrity
//! constraint on which the user wanted to stay neutral. [`LevelAssignment`] makes both
//! halves of that observation executable: [`LevelAssignment::induced_priority`] derives
//! the level-based priority, and [`is_level_representable`] decides whether a given
//! priority of the paper's kind could have been produced by *any* level assignment.

use std::sync::Arc;

use pdqi_constraints::ConflictGraph;
use pdqi_core::{optimality, RepairContext, RepairFamily};
use pdqi_priority::Priority;
use pdqi_relation::{TupleId, TupleSet};

/// A numeric priority level for every tuple of the instance (higher level = higher
/// priority, i.e. more reliable / more recent information).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAssignment {
    levels: Vec<u64>,
}

impl LevelAssignment {
    /// One level per tuple, indexed by [`TupleId`].
    pub fn new(levels: Vec<u64>) -> Self {
        LevelAssignment { levels }
    }

    /// Uniform levels (no preference at all).
    pub fn uniform(tuples: usize) -> Self {
        LevelAssignment { levels: vec![0; tuples] }
    }

    /// The level of a tuple (tuples beyond the assignment default to level 0).
    pub fn level(&self, tuple: TupleId) -> u64 {
        self.levels.get(tuple.index()).copied().unwrap_or(0)
    }

    /// Number of tuples covered by the assignment.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the assignment covers no tuple.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The priority induced by the levels: every conflict edge whose endpoints have
    /// different levels is oriented from the higher level to the lower one; equal-level
    /// conflicts stay unoriented. The result is always acyclic because levels strictly
    /// decrease along `≻`.
    pub fn induced_priority(&self, graph: Arc<ConflictGraph>) -> Priority {
        let mut priority = Priority::empty(Arc::clone(&graph));
        for &(a, b) in graph.edges() {
            let (la, lb) = (self.level(a), self.level(b));
            if la > lb {
                priority.add(a, b).expect("level-induced edges cannot form cycles");
            } else if lb > la {
                priority.add(b, a).expect("level-induced edges cannot form cycles");
            }
        }
        priority
    }
}

/// Decides whether `priority` can be produced by *some* level assignment: is there a map
/// `level : tuples → ℕ` with `level(x) > level(y)` for every oriented pair `x ≻ y` and
/// `level(u) = level(v)` for every conflict edge the priority leaves unoriented?
///
/// This is the formal version of the paper's critique of \[9\]: the per-constraint
/// priority of Example 7-style scenarios (orient the conflicts of one functional
/// dependency, stay neutral on another) is often *not* level-representable.
pub fn is_level_representable(priority: &Priority) -> bool {
    let graph = priority.graph();
    let n = graph.vertex_count();
    // Unoriented conflict edges force equal levels: contract them with union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for &(a, b) in graph.edges() {
        if !priority.orients_edge(a, b) {
            let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
            parent[ra] = rb;
        }
    }
    // Oriented edges must go strictly downhill between (and never within) the classes:
    // the quotient digraph must be acyclic and loop-free.
    let mut class_edges: Vec<(usize, usize)> = Vec::new();
    for (winner, loser) in priority.edges() {
        let (cw, cl) = (find(&mut parent, winner.index()), find(&mut parent, loser.index()));
        if cw == cl {
            return false;
        }
        class_edges.push((cw, cl));
    }
    // Kahn's algorithm on the quotient digraph.
    let mut indegree = vec![0usize; n];
    let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in &class_edges {
        outgoing[from].push(to);
        indegree[to] += 1;
    }
    let classes: Vec<usize> = (0..n).filter(|&i| find(&mut parent, i) == i).collect();
    let mut queue: Vec<usize> = classes.iter().copied().filter(|&c| indegree[c] == 0).collect();
    let mut visited = 0usize;
    while let Some(c) = queue.pop() {
        visited += 1;
        for &next in &outgoing[c] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                queue.push(next);
            }
        }
    }
    visited == classes.len()
}

/// The family of preferred repairs induced by a level assignment: the globally optimal
/// repairs under [`LevelAssignment::induced_priority`].
///
/// The family carries its preference input internally, so the `priority` argument of the
/// [`RepairFamily`] methods is ignored — this mirrors the baseline's design, in which the
/// levels stored with the facts *are* the only preference information there is.
#[derive(Debug, Clone)]
pub struct NumericLevelFamily {
    levels: LevelAssignment,
}

impl NumericLevelFamily {
    /// A family driven by the given levels.
    pub fn new(levels: LevelAssignment) -> Self {
        NumericLevelFamily { levels }
    }

    /// The level assignment.
    pub fn levels(&self) -> &LevelAssignment {
        &self.levels
    }

    /// The level-induced priority over the context's conflict graph.
    pub fn priority_for(&self, ctx: &RepairContext) -> Priority {
        self.levels.induced_priority(Arc::clone(ctx.graph()))
    }
}

impl RepairFamily for NumericLevelFamily {
    fn name(&self) -> &'static str {
        "FUV-levels"
    }

    fn is_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        candidate: &TupleSet,
    ) -> bool {
        if !ctx.is_repair(candidate) {
            return false;
        }
        let induced = self.priority_for(ctx);
        optimality::is_globally_optimal(ctx.graph(), &induced, candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::FdSet;
    use pdqi_core::FamilyKind;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

    /// Example 1's integrated `Mgr` instance; tuple ids follow insertion order.
    fn example1() -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
                vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
                vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
            ],
        )
        .unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        RepairContext::new(instance, fds)
    }

    /// A triangle of pairwise-conflicting tuples (one key, three duplicates of the key).
    fn triangle() -> Arc<ConflictGraph> {
        Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        ))
    }

    #[test]
    fn induced_priority_orients_downhill_and_is_acyclic() {
        let levels = LevelAssignment::new(vec![3, 1, 2]);
        let priority = levels.induced_priority(triangle());
        assert!(priority.dominates(TupleId(0), TupleId(1)));
        assert!(priority.dominates(TupleId(0), TupleId(2)));
        assert!(priority.dominates(TupleId(2), TupleId(1)));
        assert!(priority.is_total());
        assert!(priority.check_acyclic());
    }

    #[test]
    fn equal_levels_leave_conflicts_unoriented() {
        let levels = LevelAssignment::new(vec![1, 1, 0]);
        let priority = levels.induced_priority(triangle());
        assert!(!priority.orients_edge(TupleId(0), TupleId(1)));
        assert!(priority.dominates(TupleId(0), TupleId(2)));
        assert!(priority.dominates(TupleId(1), TupleId(2)));
        assert_eq!(priority.edge_count(), 2);
    }

    #[test]
    fn level_induced_priorities_are_representable() {
        for levels in [vec![0, 0, 0], vec![1, 2, 3], vec![5, 5, 1]] {
            let priority = LevelAssignment::new(levels).induced_priority(triangle());
            assert!(is_level_representable(&priority));
        }
    }

    #[test]
    fn per_constraint_priorities_are_not_level_representable() {
        // The paper's critique: a ≻ b and b ≻ c with the a–c conflict deliberately left
        // unoriented cannot come from levels (it would force level(a) = level(c) while
        // also forcing level(a) > level(b) > level(c)).
        let priority =
            Priority::from_pairs(triangle(), &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2))])
                .unwrap();
        assert!(!is_level_representable(&priority));
    }

    #[test]
    fn uniform_levels_select_every_repair() {
        let ctx = example1();
        let family = NumericLevelFamily::new(LevelAssignment::uniform(4));
        let empty = ctx.empty_priority();
        assert_eq!(family.preferred_repairs(&ctx, &empty, usize::MAX).len(), 3);
    }

    #[test]
    fn source_reliability_levels_reproduce_example_3() {
        // Sources: s1 = {t0}, s2 = {t1}, s3 = {t2, t3}; s3 is less reliable than s1, s2.
        let ctx = example1();
        let levels = LevelAssignment::new(vec![2, 2, 1, 1]);
        let family = NumericLevelFamily::new(levels);
        let empty = ctx.empty_priority();
        let preferred = family.preferred_repairs(&ctx, &empty, usize::MAX);
        // The level-based semantics selects exactly the repairs the paper prefers in
        // Example 3: r1 = {t0, t3} and r2 = {t1, t2}; the all-s3 repair {t2, t3} is out.
        assert_eq!(preferred.len(), 2);
        assert!(preferred.contains(&TupleSet::from_ids([TupleId(0), TupleId(3)])));
        assert!(preferred.contains(&TupleSet::from_ids([TupleId(1), TupleId(2)])));
    }

    #[test]
    fn coincides_with_g_rep_when_levels_express_the_priority() {
        let ctx = example1();
        let levels = LevelAssignment::new(vec![2, 2, 1, 1]);
        let family = NumericLevelFamily::new(levels.clone());
        let induced = levels.induced_priority(Arc::clone(ctx.graph()));
        let g_rep = FamilyKind::Global.family().preferred_repairs(&ctx, &induced, usize::MAX);
        let via_levels = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(g_rep.len(), via_levels.len());
        for repair in &g_rep {
            assert!(via_levels.contains(repair));
        }
    }

    #[test]
    fn non_repairs_are_never_preferred() {
        let ctx = example1();
        let family = NumericLevelFamily::new(LevelAssignment::new(vec![3, 2, 1, 0]));
        assert!(!family.is_preferred(
            &ctx,
            &ctx.empty_priority(),
            &TupleSet::from_ids([TupleId(0)])
        ));
    }
}
