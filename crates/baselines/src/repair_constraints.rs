//! Repair constraints in the style of Greco and Lembo \[12\].
//!
//! The user does not orient individual conflicts; instead they restrict the *shape* of
//! acceptable repairs with declarative rules of the form "a tuple of group `A` may be
//! deleted only if some tuple of group `B` is deleted too" (in \[12\] the groups are
//! relations of an integration system; in the paper's single-relation setting we let them
//! be arbitrary sets of tuples, e.g. the tuples contributed by one source).
//!
//! The paper records the characteristic trade-off of this approach, which the tests below
//! reproduce:
//!
//! * adding repair constraints only ever narrows the selected set — the analogue of
//!   **P2 holds** — but the constraints can easily exclude *every* repair, so **P1
//!   fails**;
//! * the weakening proposed to restore P1 (drop constraints until some repair survives)
//!   regains non-emptiness at the price of monotonicity: after weakening, adding a
//!   constraint can *enlarge* the selected set.

use std::ops::ControlFlow;

use pdqi_core::{RepairContext, RepairFamily};
use pdqi_priority::Priority;
use pdqi_relation::TupleSet;

/// One repair constraint: if the repair deletes any tuple of `if_deleted`, it must also
/// delete at least one tuple of `must_delete`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairConstraint {
    /// The guarded group of tuples.
    pub if_deleted: TupleSet,
    /// The group from which a deletion is then required.
    pub must_delete: TupleSet,
}

impl RepairConstraint {
    /// Builds a constraint from the two tuple groups.
    pub fn new(if_deleted: TupleSet, must_delete: TupleSet) -> Self {
        RepairConstraint { if_deleted, must_delete }
    }

    /// Whether `repair` (as a subset of `all` tuples) satisfies the constraint.
    pub fn satisfied_by(&self, repair: &TupleSet, all: &TupleSet) -> bool {
        let deleted = all.difference(repair);
        self.if_deleted.is_disjoint_from(&deleted) || !self.must_delete.is_disjoint_from(&deleted)
    }
}

/// The family of repairs satisfying a list of repair constraints.
///
/// The constraints are the baseline's only preference input, so the `priority` argument
/// of the [`RepairFamily`] methods is ignored.
#[derive(Debug, Clone, Default)]
pub struct RepairConstraintFamily {
    constraints: Vec<RepairConstraint>,
}

impl RepairConstraintFamily {
    /// A family restricted by the given constraints (an empty list selects every repair).
    pub fn new(constraints: Vec<RepairConstraint>) -> Self {
        RepairConstraintFamily { constraints }
    }

    /// The constraints in force.
    pub fn constraints(&self) -> &[RepairConstraint] {
        &self.constraints
    }

    /// Adds a constraint (the P2-analogue direction: the selected set can only shrink).
    pub fn add(&mut self, constraint: RepairConstraint) {
        self.constraints.push(constraint);
    }

    /// Whether `repair` satisfies every constraint.
    pub fn satisfies_all(&self, ctx: &RepairContext, repair: &TupleSet) -> bool {
        let all = ctx.instance().all_ids();
        self.constraints.iter().all(|c| c.satisfied_by(repair, &all))
    }

    /// The weakening of \[12\]: drop trailing constraints (least important last) until at
    /// least one repair satisfies the rest. Returns the weakened family and how many
    /// constraints were dropped.
    pub fn weakened(&self, ctx: &RepairContext) -> (RepairConstraintFamily, usize) {
        let mut kept = self.constraints.clone();
        let mut dropped = 0usize;
        loop {
            let family = RepairConstraintFamily::new(kept.clone());
            if !family.preferred_repairs(ctx, &ctx.empty_priority(), 1).is_empty() {
                return (family, dropped);
            }
            if kept.pop().is_none() {
                return (RepairConstraintFamily::default(), dropped);
            }
            dropped += 1;
        }
    }
}

impl RepairFamily for RepairConstraintFamily {
    fn name(&self) -> &'static str {
        "repair-constraints"
    }

    fn is_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        candidate: &TupleSet,
    ) -> bool {
        ctx.is_repair(candidate) && self.satisfies_all(ctx, candidate)
    }

    fn for_each_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> bool {
        ctx.for_each_repair(|repair| {
            if self.satisfies_all(ctx, repair) {
                callback(repair)
            } else {
                ControlFlow::Continue(())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_constraints::FdSet;
    use pdqi_relation::{RelationInstance, RelationSchema, TupleId, Value, ValueType};

    /// Example 4's two-pair instance: repairs are the four choices over {t0,t1} × {t2,t3}.
    fn two_pairs() -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(0), Value::int(0)],
                vec![Value::int(0), Value::int(1)],
                vec![Value::int(1), Value::int(0)],
                vec![Value::int(1), Value::int(1)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        RepairContext::new(instance, fds)
    }

    fn ids(list: &[u32]) -> TupleSet {
        TupleSet::from_ids(list.iter().map(|&i| TupleId(i)))
    }

    #[test]
    fn no_constraints_select_every_repair() {
        let ctx = two_pairs();
        let family = RepairConstraintFamily::default();
        assert_eq!(
            family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX).len() as u128,
            ctx.count_repairs()
        );
    }

    #[test]
    fn constraints_filter_repairs() {
        // "t0 may be deleted only if t2 is deleted": kills the repairs {t1,t2} ... i.e.
        // those that drop t0 while keeping t2.
        let ctx = two_pairs();
        let family = RepairConstraintFamily::new(vec![RepairConstraint::new(ids(&[0]), ids(&[2]))]);
        let preferred = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(preferred.len(), 3);
        assert!(!preferred.contains(&ids(&[1, 2])));
        assert!(preferred.contains(&ids(&[1, 3])));
    }

    #[test]
    fn adding_constraints_is_monotone() {
        let ctx = two_pairs();
        let mut family =
            RepairConstraintFamily::new(vec![RepairConstraint::new(ids(&[0]), ids(&[2]))]);
        let before = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        family.add(RepairConstraint::new(ids(&[3]), ids(&[1])));
        let after = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert!(after.iter().all(|r| before.contains(r)));
        assert!(after.len() <= before.len());
    }

    #[test]
    fn unsatisfiable_constraints_violate_p1() {
        // Deleting t0 requires deleting t1 and vice versa — but every repair deletes
        // exactly one of them, so no repair qualifies.
        let ctx = two_pairs();
        let family = RepairConstraintFamily::new(vec![
            RepairConstraint::new(ids(&[0]), ids(&[1])),
            RepairConstraint::new(ids(&[1]), ids(&[0])),
        ]);
        assert!(family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX).is_empty());
    }

    #[test]
    fn weakening_restores_p1_but_breaks_monotonicity() {
        let ctx = two_pairs();
        let contradictory = vec![
            RepairConstraint::new(ids(&[0]), ids(&[1])),
            RepairConstraint::new(ids(&[1]), ids(&[0])),
        ];
        let family = RepairConstraintFamily::new(contradictory.clone());
        let (weakened, dropped) = family.weakened(&ctx);
        assert_eq!(dropped, 1);
        let selected = weakened.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert!(!selected.is_empty());
        // Monotonicity is lost across the weakening boundary: the *larger* constraint set
        // (the original) selects nothing, yet its weakened version selects repairs that
        // the original excludes — extending the preference enlarged the answer set.
        let original = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert!(original.is_empty());
        assert!(selected.iter().any(|r| !original.contains(r)));
    }

    #[test]
    fn non_repairs_are_never_preferred() {
        let ctx = two_pairs();
        let family = RepairConstraintFamily::default();
        assert!(!family.is_preferred(&ctx, &ctx.empty_priority(), &ids(&[0])));
    }
}
