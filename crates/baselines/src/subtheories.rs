//! Brewka's preferred subtheories \[4\], recast over conflict graphs.
//!
//! The facts are split into strata `T₁, …, Tₙ` with `T₁` the most important. A *preferred
//! subtheory* is any set `S = S₁ ∪ … ∪ Sₙ` such that for every `k` the prefix
//! `S₁ ∪ … ∪ S_k` is a **maximal consistent** subset of `T₁ ∪ … ∪ T_k`: one greedily
//! commits to as much of the most important stratum as possible, then to as much of the
//! next one as is still consistent, and so on. The paper's Section 5 notes that this
//! construction is analogous to its C-repairs, but — like the numeric levels of \[9\] —
//! the stratified representation forces the preference to be transitive on conflicting
//! facts.
//!
//! [`Stratification`] carries the per-tuple stratum, [`PreferredSubtheories`] implements
//! membership checking (polynomial: one maximality test per stratum prefix) and
//! enumeration (backtracking over the per-stratum choices), and exposes the construction
//! as a [`RepairFamily`] so the paper's property checkers apply to it directly.

use std::ops::ControlFlow;
use std::sync::Arc;

use pdqi_constraints::ConflictGraph;
use pdqi_core::{RepairContext, RepairFamily};
use pdqi_priority::Priority;
use pdqi_relation::{TupleId, TupleSet};

/// A stratification of the tuples: `stratum[t]` is the importance class of tuple `t`,
/// with `0` the most important.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratification {
    strata: Vec<usize>,
}

impl Stratification {
    /// One stratum index per tuple, indexed by [`TupleId`].
    pub fn new(strata: Vec<usize>) -> Self {
        Stratification { strata }
    }

    /// Every tuple in the single stratum 0 (no preference at all).
    pub fn flat(tuples: usize) -> Self {
        Stratification { strata: vec![0; tuples] }
    }

    /// The stratum of a tuple (tuples beyond the assignment default to the last stratum).
    pub fn stratum(&self, tuple: TupleId) -> usize {
        self.strata.get(tuple.index()).copied().unwrap_or(usize::MAX)
    }

    /// Number of tuples covered.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether no tuple is covered.
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// The largest stratum index in use (`None` for an empty stratification).
    pub fn max_stratum(&self) -> Option<usize> {
        self.strata.iter().copied().max()
    }

    /// The tuples of stratum `k` among the first `n` tuple ids.
    pub fn stratum_members(&self, k: usize, n: usize) -> TupleSet {
        TupleSet::from_ids((0..n).map(|i| TupleId(i as u32)).filter(|t| self.stratum(*t) == k))
    }

    /// The priority induced by the stratification: conflict edges between different
    /// strata are oriented towards the less important stratum; conflicts within one
    /// stratum stay unoriented.
    pub fn induced_priority(&self, graph: Arc<ConflictGraph>) -> Priority {
        let mut priority = Priority::empty(Arc::clone(&graph));
        for &(a, b) in graph.edges() {
            let (sa, sb) = (self.stratum(a), self.stratum(b));
            if sa < sb {
                priority.add(a, b).expect("stratum-induced edges cannot form cycles");
            } else if sb < sa {
                priority.add(b, a).expect("stratum-induced edges cannot form cycles");
            }
        }
        priority
    }
}

/// The family of preferred subtheories induced by a stratification.
///
/// Every preferred subtheory is a repair (prefix-maximality at the last stratum is
/// maximality over the whole instance), so the construction genuinely selects a subset of
/// the repairs and the [`RepairFamily`] interface applies. The `priority` argument of the
/// trait methods is ignored: the stratification is the baseline's only preference input.
#[derive(Debug, Clone)]
pub struct PreferredSubtheories {
    stratification: Stratification,
}

impl PreferredSubtheories {
    /// A family driven by the given stratification.
    pub fn new(stratification: Stratification) -> Self {
        PreferredSubtheories { stratification }
    }

    /// The stratification.
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Membership test: is `candidate` a preferred subtheory? Checks that every stratum
    /// prefix of the candidate is a maximal independent set of the subgraph induced by
    /// the tuples of that prefix.
    pub fn is_preferred_subtheory(&self, graph: &ConflictGraph, candidate: &TupleSet) -> bool {
        let n = graph.vertex_count();
        if !graph.is_independent(candidate) {
            return false;
        }
        let last = self.stratification.max_stratum().unwrap_or(0);
        let mut prefix_vertices = TupleSet::with_capacity(n);
        let mut prefix_chosen = TupleSet::with_capacity(n);
        for k in 0..=last {
            prefix_vertices.union_with(&self.stratification.stratum_members(k, n));
            prefix_chosen.union_with(&candidate.intersection(&prefix_vertices));
            // Maximality of the prefix: no prefix tuple outside the choice can be added
            // without conflicting with an already-chosen prefix tuple.
            for t in prefix_vertices.difference(&prefix_chosen).iter() {
                if graph.neighbors(t).is_disjoint_from(&prefix_chosen) {
                    return false;
                }
            }
        }
        true
    }

    /// Visits every preferred subtheory exactly once. Returns `true` if the enumeration
    /// ran to completion (the callback may stop it early).
    pub fn for_each_subtheory<F>(&self, graph: &ConflictGraph, mut callback: F) -> bool
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        let n = graph.vertex_count();
        let last = self.stratification.max_stratum().unwrap_or(0);
        let chosen = TupleSet::with_capacity(n);
        self.extend_stratum(graph, n, 0, last, chosen, &mut callback).is_continue()
    }

    /// Collects up to `limit` preferred subtheories.
    pub fn subtheories(&self, graph: &ConflictGraph, limit: usize) -> Vec<TupleSet> {
        let mut out = Vec::new();
        self.for_each_subtheory(graph, |s| {
            out.push(s.clone());
            if out.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        out
    }

    /// Recursively extends `chosen` with every maximal consistent choice from stratum `k`.
    fn extend_stratum(
        &self,
        graph: &ConflictGraph,
        n: usize,
        k: usize,
        last: usize,
        chosen: TupleSet,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // The stratum tuples still addable given what earlier strata committed to.
        let members = self.stratification.stratum_members(k, n);
        let mut available = TupleSet::with_capacity(n);
        for t in members.iter() {
            if graph.neighbors(t).is_disjoint_from(&chosen) {
                available.insert(t);
            }
        }
        // `maximal_independent_subsets` always yields at least one subset (the empty set
        // when nothing is available), so every stratum level is visited exactly once.
        let mut complete = ControlFlow::Continue(());
        maximal_independent_subsets(graph, &available, &mut |subset| {
            let mut extended = chosen.clone();
            extended.union_with(subset);
            let step = if k == last {
                callback(&extended)
            } else {
                self.extend_stratum(graph, n, k + 1, last, extended, callback)
            };
            if step.is_break() {
                complete = ControlFlow::Break(());
            }
            step
        });
        complete
    }
}

/// Enumerates every maximal independent subset of `vertices` (maximal *within*
/// `vertices`) in the induced subgraph of `graph`. The callback may stop the enumeration
/// early by returning `Break`.
fn maximal_independent_subsets(
    graph: &ConflictGraph,
    vertices: &TupleSet,
    callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
) {
    if vertices.is_empty() {
        let _ = callback(&TupleSet::new());
        return;
    }
    // Straightforward branch-on-vertex backtracking over the induced subgraph; the
    // per-stratum vertex sets are small in every workload we generate, so clarity wins.
    fn recurse(
        graph: &ConflictGraph,
        order: &[TupleId],
        position: usize,
        chosen: &mut TupleSet,
        excluded: &mut Vec<TupleId>,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if position == order.len() {
            // Maximality within the vertex set: every excluded vertex must conflict with
            // a chosen one, otherwise this branch is dominated by one that includes it.
            for &t in excluded.iter() {
                if graph.neighbors(t).is_disjoint_from(chosen) {
                    return ControlFlow::Continue(());
                }
            }
            return callback(chosen);
        }
        let vertex = order[position];
        if graph.neighbors(vertex).is_disjoint_from(chosen) {
            chosen.insert(vertex);
            recurse(graph, order, position + 1, chosen, excluded, callback)?;
            chosen.remove(vertex);
            // Only branching on exclusion can yield a different maximal set if the vertex
            // has neighbours inside the vertex pool.
            excluded.push(vertex);
            recurse(graph, order, position + 1, chosen, excluded, callback)?;
            excluded.pop();
            ControlFlow::Continue(())
        } else {
            excluded.push(vertex);
            let flow = recurse(graph, order, position + 1, chosen, excluded, callback);
            excluded.pop();
            flow
        }
    }
    let order: Vec<TupleId> = vertices.iter().collect();
    let mut chosen = TupleSet::with_capacity(graph.vertex_count());
    let mut excluded = Vec::new();
    let _ = recurse(graph, &order, 0, &mut chosen, &mut excluded, callback);
}

impl RepairFamily for PreferredSubtheories {
    fn name(&self) -> &'static str {
        "Brewka-subtheories"
    }

    fn is_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        candidate: &TupleSet,
    ) -> bool {
        ctx.is_repair(candidate) && self.is_preferred_subtheory(ctx.graph(), candidate)
    }

    fn for_each_preferred(
        &self,
        ctx: &RepairContext,
        _priority: &Priority,
        callback: &mut dyn FnMut(&TupleSet) -> ControlFlow<()>,
    ) -> bool {
        // Deduplicate: different per-stratum choice sequences can assemble the same set.
        let mut seen = std::collections::HashSet::new();
        self.for_each_subtheory(ctx.graph(), |subtheory| {
            if seen.insert(subtheory.clone()) {
                callback(subtheory)
            } else {
                ControlFlow::Continue(())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::FdSet;
    use pdqi_core::clean::common_repairs;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

    fn two_column_instance(rows: &[(i64, i64)]) -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            rows.iter().map(|&(a, b)| vec![Value::int(a), Value::int(b)]).collect(),
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        RepairContext::new(instance, fds)
    }

    #[test]
    fn flat_stratification_selects_every_repair() {
        let ctx = two_column_instance(&[(1, 1), (1, 2), (2, 1), (2, 2)]);
        let family = PreferredSubtheories::new(Stratification::flat(4));
        let preferred = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(preferred.len() as u128, ctx.count_repairs());
    }

    #[test]
    fn earlier_strata_win_their_conflicts() {
        // Key group {t0, t1, t2}; t0 is stratum 0, the others stratum 1.
        let ctx = two_column_instance(&[(1, 1), (1, 2), (1, 3)]);
        let family = PreferredSubtheories::new(Stratification::new(vec![0, 1, 1]));
        let preferred = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        assert_eq!(preferred, vec![TupleSet::from_ids([TupleId(0)])]);
    }

    #[test]
    fn prefix_maximality_is_enforced() {
        // Stratum 0: {t0, t1} conflicting; stratum 1: {t2} conflicting with t0 only.
        let graph =
            ConflictGraph::from_edges(3, &[(TupleId(0), TupleId(1)), (TupleId(0), TupleId(2))]);
        let family = PreferredSubtheories::new(Stratification::new(vec![0, 0, 1]));
        let mut found = Vec::new();
        family.for_each_subtheory(&graph, |s| {
            found.push(s.clone());
            ControlFlow::Continue(())
        });
        found.sort_by_key(|s| s.iter().map(|t| t.0).collect::<Vec<_>>());
        // {t0} (t2 blocked) and {t1, t2}: both prefix-maximal; {t0} is maximal at stratum
        // 0 even though it cannot be extended at stratum 1.
        assert_eq!(
            found,
            vec![TupleSet::from_ids([TupleId(0)]), TupleSet::from_ids([TupleId(1), TupleId(2)]),]
        );
        // Membership agrees with enumeration.
        assert!(family.is_preferred_subtheory(&graph, &TupleSet::from_ids([TupleId(0)])));
        assert!(!family.is_preferred_subtheory(&graph, &TupleSet::from_ids([TupleId(2)])));
    }

    #[test]
    fn subtheories_coincide_with_common_repairs_of_the_induced_priority() {
        // On stratified inputs Brewka's construction behaves like Algorithm 1 run with
        // the stratum-induced priority, i.e. like the paper's C-Rep.
        let ctx = two_column_instance(&[(1, 1), (1, 2), (2, 1), (2, 2), (3, 7), (3, 8)]);
        let stratification = Stratification::new(vec![0, 1, 1, 0, 2, 2]);
        let family = PreferredSubtheories::new(stratification.clone());
        let mut subtheories = family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX);
        let induced = stratification.induced_priority(Arc::clone(ctx.graph()));
        let mut common = common_repairs(ctx.graph(), &induced, usize::MAX);
        let key = |s: &TupleSet| s.iter().map(|t| t.0).collect::<Vec<_>>();
        subtheories.sort_by_key(key);
        common.sort_by_key(key);
        assert_eq!(subtheories, common);
    }

    #[test]
    fn every_subtheory_is_a_repair() {
        let ctx = two_column_instance(&[(1, 1), (1, 2), (1, 3), (2, 1), (2, 2)]);
        let family = PreferredSubtheories::new(Stratification::new(vec![0, 1, 2, 1, 0]));
        for subtheory in family.preferred_repairs(&ctx, &ctx.empty_priority(), usize::MAX) {
            assert!(ctx.is_repair(&subtheory));
        }
    }

    #[test]
    fn non_repairs_are_rejected() {
        let ctx = two_column_instance(&[(1, 1), (1, 2)]);
        let family = PreferredSubtheories::new(Stratification::new(vec![0, 1]));
        assert!(!family.is_preferred(&ctx, &ctx.empty_priority(), &TupleSet::new()));
    }
}
