//! Textual syntax for first-order queries.
//!
//! The grammar (keywords are case-insensitive):
//!
//! ```text
//! formula     := ('EXISTS' | 'FORALL') varlist '.' formula
//!              | implication
//! implication := disjunction ('->' formula)?
//! disjunction := conjunction ('OR' conjunction)*
//! conjunction := unary ('AND' unary)*
//! unary       := 'NOT' unary | primary
//! primary     := '(' formula ')' | 'TRUE' | 'FALSE' | atom | comparison
//! atom        := ident '(' term (',' term)* ')'
//! comparison  := term ('=' | '!=' | '<>' | '<' | '<=' | '>' | '>=') term
//! term        := ident            (a variable; '_' is a fresh anonymous variable)
//!              | integer          (an integer constant)
//!              | '\'' chars '\''  (a name constant, '' escapes a quote)
//! ```
//!
//! Example — the paper's query `Q1` ("does John earn more than Mary?"):
//!
//! ```
//! let q1 = pdqi_query::parse_formula(
//!     "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2",
//! ).unwrap();
//! assert!(q1.is_closed());
//! ```

use std::fmt;

use pdqi_constraints::CompOp;
use pdqi_relation::Value;

use crate::ast::{Atom, Comparison, Formula, Term};

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a first-order formula from its textual syntax.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0, anon_counter: 0 };
    let formula = parser.formula()?;
    parser.expect_end()?;
    Ok(formula)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,
    Op(CompOp),
}

struct Spanned {
    token: Token,
    position: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Spanned { token: Token::LParen, position: i });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned { token: Token::RParen, position: i });
                i += 1;
            }
            ',' => {
                tokens.push(Spanned { token: Token::Comma, position: i });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned { token: Token::Dot, position: i });
                i += 1;
            }
            '=' => {
                tokens.push(Spanned { token: Token::Op(CompOp::Eq), position: i });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Op(CompOp::Neq), position: i });
                    i += 2;
                } else {
                    return Err(ParseError { position: i, message: "expected `!=`".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Spanned { token: Token::Op(CompOp::Le), position: i });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Spanned { token: Token::Op(CompOp::Neq), position: i });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned { token: Token::Op(CompOp::Lt), position: i });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned { token: Token::Op(CompOp::Ge), position: i });
                    i += 2;
                } else {
                    tokens.push(Spanned { token: Token::Op(CompOp::Gt), position: i });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Spanned { token: Token::Arrow, position: i });
                    i += 2;
                } else {
                    // A negative integer literal.
                    let start = i;
                    i += 1;
                    let digit_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    if digit_start == i {
                        return Err(ParseError {
                            position: start,
                            message: "expected `->` or a negative integer".into(),
                        });
                    }
                    let value: i64 = input[start..i].parse().map_err(|_| ParseError {
                        position: start,
                        message: "integer literal out of range".into(),
                    })?;
                    tokens.push(Spanned { token: Token::Int(value), position: start });
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(ParseError {
                                position: start,
                                message: "unterminated name constant".into(),
                            })
                        }
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                text.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            text.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Spanned { token: Token::Quoted(text), position: start });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let value: i64 = input[start..i].parse().map_err(|_| ParseError {
                    position: start,
                    message: "integer literal out of range".into(),
                })?;
                tokens.push(Spanned { token: Token::Int(value), position: start });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Spanned {
                    token: Token::Ident(input[start..i].to_string()),
                    position: start,
                });
            }
            _ => {
                return Err(ParseError {
                    position: i,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or_else(|| self.tokens.last().map_or(0, |s| s.position + 1), |s| s.position)
    }

    fn advance(&mut self) -> Option<&Token> {
        let token = self.tokens.get(self.pos).map(|s| &s.token);
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { position: self.position(), message: message.into() })
    }

    fn keyword(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(id)) if id.eq_ignore_ascii_case(word))
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.error("unexpected trailing input")
        }
    }

    fn expect(&mut self, expected: &Token, description: &str) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {description}"))
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        if self.keyword("EXISTS") || self.keyword("FORALL") {
            let universal = self.keyword("FORALL");
            self.advance();
            let vars = self.var_list()?;
            self.expect(&Token::Dot, "`.` after the quantified variables")?;
            let body = self.formula()?;
            return Ok(if universal {
                Formula::Forall(vars, Box::new(body))
            } else {
                Formula::Exists(vars, Box::new(body))
            });
        }
        let left = self.disjunction()?;
        if self.peek() == Some(&Token::Arrow) {
            self.advance();
            let right = self.formula()?;
            return Ok(Formula::Implies(Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn var_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut vars = Vec::new();
        loop {
            match self.advance() {
                Some(Token::Ident(id)) => vars.push(id.clone()),
                _ => return self.error("expected a variable name"),
            }
            if self.peek() == Some(&Token::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(vars)
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.conjunction()?;
        while self.keyword("OR") {
            self.advance();
            let right = self.conjunction()?;
            left = Formula::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.unary()?;
        while self.keyword("AND") {
            self.advance();
            let right = self.unary()?;
            left = Formula::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        if self.keyword("NOT") {
            self.advance();
            let inner = self.unary()?;
            return Ok(Formula::Not(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.advance();
                // A parenthesised formula; quantifiers may re-appear inside.
                let inner = self.formula()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token::Ident(id)) if id.eq_ignore_ascii_case("TRUE") => {
                self.advance();
                Ok(Formula::True)
            }
            Some(Token::Ident(id)) if id.eq_ignore_ascii_case("FALSE") => {
                self.advance();
                Ok(Formula::False)
            }
            Some(Token::Ident(id))
                if id.eq_ignore_ascii_case("EXISTS") || id.eq_ignore_ascii_case("FORALL") =>
            {
                // A quantifier nested under a connective, e.g. `... AND EXISTS x . ...`.
                self.formula()
            }
            Some(Token::Ident(_)) => {
                // Either an atom `R(...)` or a comparison starting with a variable.
                if matches!(self.tokens.get(self.pos + 1).map(|s| &s.token), Some(Token::LParen)) {
                    self.atom()
                } else {
                    self.comparison()
                }
            }
            Some(Token::Int(_)) | Some(Token::Quoted(_)) => self.comparison(),
            _ => self.error("expected a formula"),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        let relation = match self.advance() {
            Some(Token::Ident(id)) => id.clone(),
            _ => return self.error("expected a relation name"),
        };
        self.expect(&Token::LParen, "`(` after the relation name")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.term()?);
                if self.peek() == Some(&Token::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "`)` closing the atom")?;
        Ok(Formula::Atom(Atom { relation, args }))
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let left = self.term()?;
        let op = match self.advance() {
            Some(Token::Op(op)) => *op,
            _ => return self.error("expected a comparison operator"),
        };
        let right = self.term()?;
        Ok(Formula::Comparison(Comparison { left, op, right }))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.advance() {
            Some(Token::Ident(id)) if id == "_" => {
                self.anon_counter += 1;
                Ok(Term::Var(format!("_anon{}", self.anon_counter)))
            }
            Some(Token::Ident(id)) => Ok(Term::Var(id.clone())),
            Some(Token::Int(n)) => Ok(Term::Const(Value::int(*n))),
            Some(Token::Quoted(text)) => Ok(Term::Const(Value::name(text))),
            _ => self.error("expected a term"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;

    #[test]
    fn parses_the_paper_query_q1() {
        let q1 = parse_formula(
            "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2",
        )
        .unwrap();
        assert!(q1.is_closed());
        assert_eq!(q1.relations().len(), 1);
        assert_eq!(q1.constants().len(), 2);
    }

    #[test]
    fn parses_the_paper_query_q2() {
        let q2 = parse_formula(
            "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) \
             AND s1 > s2 AND r1 < r2",
        )
        .unwrap();
        assert!(q2.is_closed());
    }

    #[test]
    fn operator_precedence_not_binds_tighter_than_and_than_or() {
        let f = parse_formula("NOT R(1) AND S(2) OR T(3)").unwrap();
        // ((NOT R(1)) AND S(2)) OR T(3)
        let expected = builder::or(
            builder::and(
                builder::not(builder::atom("R", vec![builder::int(1)])),
                builder::atom("S", vec![builder::int(2)]),
            ),
            builder::atom("T", vec![builder::int(3)]),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn implication_is_right_associative_and_lowest_precedence() {
        let f = parse_formula("R(1) -> S(2) -> T(3)").unwrap();
        let expected = builder::implies(
            builder::atom("R", vec![builder::int(1)]),
            builder::implies(
                builder::atom("S", vec![builder::int(2)]),
                builder::atom("T", vec![builder::int(3)]),
            ),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn quantifier_scope_extends_to_the_end() {
        let f = parse_formula("EXISTS x . R(x) AND S(x)").unwrap();
        assert!(f.is_closed());
        let f2 = parse_formula("(EXISTS x . R(x)) AND S(y)").unwrap();
        assert_eq!(f2.free_vars(), vec!["y".to_string()]);
    }

    #[test]
    fn nested_quantifiers_under_connectives() {
        let f = parse_formula("R(1) AND EXISTS x . S(x)").unwrap();
        assert!(f.is_closed());
        let g = parse_formula("FORALL x . R(x) -> EXISTS y . S(x, y)").unwrap();
        assert!(g.is_closed());
    }

    #[test]
    fn all_comparison_operators_parse() {
        for (text, op) in [
            ("x = 1", CompOp::Eq),
            ("x != 1", CompOp::Neq),
            ("x <> 1", CompOp::Neq),
            ("x < 1", CompOp::Lt),
            ("x <= 1", CompOp::Le),
            ("x > 1", CompOp::Gt),
            ("x >= 1", CompOp::Ge),
        ] {
            match parse_formula(text).unwrap() {
                Formula::Comparison(c) => assert_eq!(c.op, op, "for {text}"),
                other => panic!("expected a comparison for {text}, got {other:?}"),
            }
        }
    }

    #[test]
    fn negative_integers_and_escaped_quotes() {
        let f = parse_formula("R(-5, 'O''Brien')").unwrap();
        match f {
            Formula::Atom(a) => {
                assert_eq!(a.args[0], Term::Const(Value::int(-5)));
                assert_eq!(a.args[1], Term::Const(Value::name("O'Brien")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anonymous_variables_get_fresh_names() {
        let f = parse_formula("R(_, _, x)").unwrap();
        let free = f.free_vars();
        assert_eq!(free.len(), 3);
        assert!(free.contains(&"x".to_string()));
    }

    #[test]
    fn empty_argument_atoms_and_keywords_are_case_insensitive() {
        assert!(parse_formula("exists x . r(x) and true").unwrap().is_closed());
        assert_eq!(parse_formula("TRUE").unwrap(), Formula::True);
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
    }

    #[test]
    fn malformed_inputs_produce_errors_with_positions() {
        for bad in ["", "EXISTS . R(1)", "R(1", "x <", "R(1) AND", "R(1) extra", "x ! 1", "'open"] {
            let err = parse_formula(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "no error for `{bad}`");
        }
    }
}
