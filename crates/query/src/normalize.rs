//! Formula normalisation: negation normal form, prenex form, substitution and closure.

use std::collections::HashMap;

use crate::ast::{Atom, Comparison, Formula, Term};

/// Rewrites the formula into **negation normal form**: implications are eliminated and
/// negations are pushed down to atoms and comparisons (negated comparisons are replaced
/// by the complementary operator, so no negation remains in front of a comparison).
pub fn to_nnf(formula: &Formula) -> Formula {
    nnf(formula, false)
}

fn nnf(formula: &Formula, negated: bool) -> Formula {
    match formula {
        Formula::True => {
            if negated {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if negated {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Atom(a) => {
            if negated {
                Formula::Not(Box::new(Formula::Atom(a.clone())))
            } else {
                Formula::Atom(a.clone())
            }
        }
        Formula::Comparison(c) => {
            if negated {
                Formula::Comparison(Comparison {
                    left: c.left.clone(),
                    op: c.op.negate(),
                    right: c.right.clone(),
                })
            } else {
                Formula::Comparison(c.clone())
            }
        }
        Formula::Not(inner) => nnf(inner, !negated),
        Formula::And(a, b) => {
            let (left, right) = (nnf(a, negated), nnf(b, negated));
            if negated {
                Formula::Or(Box::new(left), Box::new(right))
            } else {
                Formula::And(Box::new(left), Box::new(right))
            }
        }
        Formula::Or(a, b) => {
            let (left, right) = (nnf(a, negated), nnf(b, negated));
            if negated {
                Formula::And(Box::new(left), Box::new(right))
            } else {
                Formula::Or(Box::new(left), Box::new(right))
            }
        }
        Formula::Implies(a, b) => {
            // a -> b  ≡  ¬a ∨ b
            let rewritten = Formula::Or(Box::new(Formula::Not(a.clone())), b.clone());
            nnf(&rewritten, negated)
        }
        Formula::Exists(vars, inner) => {
            let body = nnf(inner, negated);
            if negated {
                Formula::Forall(vars.clone(), Box::new(body))
            } else {
                Formula::Exists(vars.clone(), Box::new(body))
            }
        }
        Formula::Forall(vars, inner) => {
            let body = nnf(inner, negated);
            if negated {
                Formula::Exists(vars.clone(), Box::new(body))
            } else {
                Formula::Forall(vars.clone(), Box::new(body))
            }
        }
    }
}

/// A quantifier kind in a prenex prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `∃`
    Exists,
    /// `∀`
    Forall,
}

/// Converts the formula to **prenex normal form**: a quantifier prefix followed by a
/// quantifier-free matrix. Bound variables are renamed apart to avoid capture. The input
/// is first brought into negation normal form.
pub fn to_prenex(formula: &Formula) -> (Vec<(Quantifier, String)>, Formula) {
    let nnf = to_nnf(formula);
    let mut counter = 0usize;
    let mut prefix = Vec::new();
    let matrix = pull_quantifiers(&nnf, &mut prefix, &mut counter, &HashMap::new());
    (prefix, matrix)
}

fn fresh(base: &str, counter: &mut usize) -> String {
    *counter += 1;
    format!("{base}__{counter}")
}

fn pull_quantifiers(
    formula: &Formula,
    prefix: &mut Vec<(Quantifier, String)>,
    counter: &mut usize,
    renaming: &HashMap<String, String>,
) -> Formula {
    match formula {
        Formula::True | Formula::False => formula.clone(),
        Formula::Atom(a) => Formula::Atom(rename_atom(a, renaming)),
        Formula::Comparison(c) => Formula::Comparison(rename_comparison(c, renaming)),
        Formula::Not(inner) => {
            // After NNF the negation is directly above an atom; no quantifier can hide below.
            Formula::Not(Box::new(pull_quantifiers(inner, prefix, counter, renaming)))
        }
        Formula::And(a, b) => Formula::And(
            Box::new(pull_quantifiers(a, prefix, counter, renaming)),
            Box::new(pull_quantifiers(b, prefix, counter, renaming)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(pull_quantifiers(a, prefix, counter, renaming)),
            Box::new(pull_quantifiers(b, prefix, counter, renaming)),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(pull_quantifiers(a, prefix, counter, renaming)),
            Box::new(pull_quantifiers(b, prefix, counter, renaming)),
        ),
        Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
            let quantifier = if matches!(formula, Formula::Exists(..)) {
                Quantifier::Exists
            } else {
                Quantifier::Forall
            };
            let mut extended = renaming.clone();
            for var in vars {
                let new_name = fresh(var, counter);
                prefix.push((quantifier, new_name.clone()));
                extended.insert(var.clone(), new_name);
            }
            pull_quantifiers(inner, prefix, counter, &extended)
        }
    }
}

fn rename_term(term: &Term, renaming: &HashMap<String, String>) -> Term {
    match term {
        Term::Var(v) => Term::Var(renaming.get(v).cloned().unwrap_or_else(|| v.clone())),
        Term::Const(_) => term.clone(),
    }
}

fn rename_atom(atom: &Atom, renaming: &HashMap<String, String>) -> Atom {
    Atom {
        relation: atom.relation.clone(),
        args: atom.args.iter().map(|t| rename_term(t, renaming)).collect(),
    }
}

fn rename_comparison(cmp: &Comparison, renaming: &HashMap<String, String>) -> Comparison {
    Comparison {
        left: rename_term(&cmp.left, renaming),
        op: cmp.op,
        right: rename_term(&cmp.right, renaming),
    }
}

/// Substitutes constants (or other terms) for *free* occurrences of variables.
pub fn substitute(formula: &Formula, substitution: &HashMap<String, Term>) -> Formula {
    match formula {
        Formula::True | Formula::False => formula.clone(),
        Formula::Atom(a) => Formula::Atom(Atom {
            relation: a.relation.clone(),
            args: a.args.iter().map(|t| substitute_term(t, substitution)).collect(),
        }),
        Formula::Comparison(c) => Formula::Comparison(Comparison {
            left: substitute_term(&c.left, substitution),
            op: c.op,
            right: substitute_term(&c.right, substitution),
        }),
        Formula::Not(inner) => Formula::Not(Box::new(substitute(inner, substitution))),
        Formula::And(a, b) => Formula::And(
            Box::new(substitute(a, substitution)),
            Box::new(substitute(b, substitution)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(substitute(a, substitution)),
            Box::new(substitute(b, substitution)),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(substitute(a, substitution)),
            Box::new(substitute(b, substitution)),
        ),
        Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
            // Bound variables shadow the substitution.
            let mut reduced = substitution.clone();
            for var in vars {
                reduced.remove(var);
            }
            let body = Box::new(substitute(inner, &reduced));
            if matches!(formula, Formula::Exists(..)) {
                Formula::Exists(vars.clone(), body)
            } else {
                Formula::Forall(vars.clone(), body)
            }
        }
    }
}

fn substitute_term(term: &Term, substitution: &HashMap<String, Term>) -> Term {
    match term {
        Term::Var(v) => substitution.get(v).cloned().unwrap_or_else(|| term.clone()),
        Term::Const(_) => term.clone(),
    }
}

/// Existentially closes the formula over its free variables (if any).
pub fn close_existentially(formula: &Formula) -> Formula {
    let free = formula.free_vars();
    if free.is_empty() {
        formula.clone()
    } else {
        Formula::Exists(free, Box::new(formula.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::parser::parse_formula;
    use pdqi_relation::Value;

    #[test]
    fn nnf_eliminates_implication_and_pushes_negation() {
        let f = parse_formula("NOT (R(x) -> S(x))").unwrap();
        // ¬(R → S) ≡ R ∧ ¬S
        let expected = and(atom("R", vec![var("x")]), not(atom("S", vec![var("x")])));
        assert_eq!(to_nnf(&f), expected);
    }

    #[test]
    fn nnf_flips_quantifiers_and_comparisons_under_negation() {
        let f = parse_formula("NOT EXISTS x . x < 3").unwrap();
        let expected = forall(&["x"], ge(var("x"), int(3)));
        assert_eq!(to_nnf(&f), expected);
        let g = parse_formula("NOT FORALL x . R(x)").unwrap();
        assert!(matches!(to_nnf(&g), Formula::Exists(_, _)));
    }

    #[test]
    fn nnf_is_idempotent() {
        let f = parse_formula("NOT (R(x) AND NOT (S(y) OR x = 1))").unwrap();
        let once = to_nnf(&f);
        assert_eq!(to_nnf(&once), once);
    }

    #[test]
    fn prenex_pulls_all_quantifiers_to_the_front() {
        let f = parse_formula("(EXISTS x . R(x)) AND (FORALL x . S(x))").unwrap();
        let (prefix, matrix) = to_prenex(&f);
        assert_eq!(prefix.len(), 2);
        assert_eq!(prefix[0].0, Quantifier::Exists);
        assert_eq!(prefix[1].0, Quantifier::Forall);
        // The two `x`s are renamed apart.
        assert_ne!(prefix[0].1, prefix[1].1);
        assert!(crate::classify::is_quantifier_free(&matrix));
    }

    #[test]
    fn prenex_respects_negation() {
        // ¬∃x.R(x) becomes ∀x'.¬R(x').
        let f = parse_formula("NOT EXISTS x . R(x)").unwrap();
        let (prefix, matrix) = to_prenex(&f);
        assert_eq!(prefix.len(), 1);
        assert_eq!(prefix[0].0, Quantifier::Forall);
        assert!(matches!(matrix, Formula::Not(_)));
    }

    #[test]
    fn substitution_respects_binding() {
        let f = parse_formula("R(x) AND EXISTS x . S(x)").unwrap();
        let mut sub = HashMap::new();
        sub.insert("x".to_string(), Term::Const(Value::int(7)));
        let g = substitute(&f, &sub);
        // The free x is replaced, the bound one is untouched.
        assert_eq!(g.free_vars(), Vec::<String>::new());
        assert!(g.to_string().contains("R(7)"));
        assert!(g.to_string().contains("S(x)"));
    }

    #[test]
    fn existential_closure() {
        let f = parse_formula("EXISTS s,r . Mgr(x,'R&D',s,r)").unwrap();
        let closed = close_existentially(&f);
        assert!(closed.is_closed());
        let already_closed = parse_formula("EXISTS x . R(x)").unwrap();
        assert_eq!(close_existentially(&already_closed), already_closed);
    }
}
