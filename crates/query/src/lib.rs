//! First-order queries for `pdqi`.
//!
//! The paper studies (closed) first-order queries over the alphabet consisting of the
//! database relations and the binary predicates `=`, `≠`, `<`, `>` with their natural
//! interpretation over the integers. This crate provides:
//!
//! * [`ast`] — the formula abstract syntax tree ([`Formula`], [`Term`], [`Atom`]),
//! * [`parser`] — a textual syntax, e.g.
//!   `EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2`,
//! * [`eval`] — model-theoretic evaluation with active-domain quantifier semantics, both
//!   for closed formulas (truth values) and open formulas (answer sets),
//! * [`classify`](mod@classify) — the query-class analysis behind the columns of the paper's Fig. 5
//!   ({∀,∃}-free, conjunctive, ...),
//! * [`normalize`] — negation normal form, prenex form and related transformations,
//! * [`builder`] — a concise programmatic construction API,
//! * [`vector`] — the vectorized (columnar) evaluation hot path: eligible conjunctive
//!   formulas compile to bitmask-selection + column-gather plans over
//!   [`ColumnarView`](pdqi_relation::ColumnarView)s, pinned bit-identical to the scalar
//!   evaluator and disabled wholesale by `PDQI_FORCE_SCALAR_EVAL=1`,
//! * [`planner`] — the Volcano-style cost-based planner: caller-supplied memo
//!   cardinalities (per-component repair counts, relation row counts) are costed into
//!   a [`PhysicalPlan`] choosing join order, eval path,
//!   per-component repair strategy and chunking, pinned bit-identical to the naive
//!   fixed strategy and disabled wholesale by `PDQI_FORCE_NAIVE_PLAN=1`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod builder;
pub mod classify;
pub mod eval;
pub mod normalize;
pub mod parser;
pub mod planner;
pub mod vector;

pub use ast::{Atom, Comparison, Formula, Term};
pub use classify::{classify, QueryClass};
pub use eval::{Evaluator, QueryError};
pub use parser::parse_formula;
pub use planner::{
    force_naive_plan, naive_plan_forced, plan_stats, ComponentStats, ComponentStrategy,
    PhysicalPlan, PlanStats, PlannerInputs, RelationStats,
};
pub use vector::{eval_path_stats, force_scalar_eval, scalar_eval_forced, EvalPathStats};

/// Convenience result alias for query operations.
pub type Result<T, E = QueryError> = std::result::Result<T, E>;
