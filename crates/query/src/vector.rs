//! Vectorized (columnar) evaluation of conjunctive formulas.
//!
//! The scalar evaluator walks tuples row-at-a-time through `HashMap<String, Value>`
//! environments. For the conjunctive shapes that dominate the paper's workload —
//! a block of existential quantifiers over a conjunction of atoms and comparisons —
//! this module compiles the formula once into a `VectorPlan` and executes it over
//! [`ColumnarView`] column slices instead:
//!
//! ```text
//! column slice ──(constant filters, per slot)──► selection bitmask
//!      │                                              │
//!      └──(join: bind variables by (slot, column))◄───┘
//!                     │
//!                     └──(comparisons over bound columns, gather free columns)──► rows
//! ```
//!
//! The plan is **pinned bit-identical** to the scalar path wherever it engages:
//!
//! * answer rows are collected into the same sorted, de-duplicated `BTreeSet`, and the
//!   set of satisfying assignments is identical by construction (every plan variable is
//!   bound by an atom, so both paths enumerate exactly the visible-tuple bindings that
//!   pass every conjunct);
//! * closed verdicts are the same booleans (non-emptiness of the same set);
//! * any evaluation error (a type error in a comparison) aborts the vectorized run and
//!   the caller re-runs the scalar path, so error values and their ordering always come
//!   from the scalar evaluator.
//!
//! Formulas outside the supported shape (negation, disjunction, universal quantifiers,
//! comparison variables not bound by any atom, relations without a columnar view)
//! simply don't compile to a plan and take the scalar path. The environment knob
//! `PDQI_FORCE_SCALAR_EVAL=1` (or [`force_scalar_eval`]) disables the vectorized path
//! globally so the scalar fallback stays exercised; [`eval_path_stats`] reports how
//! many evaluations each path served.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use pdqi_constraints::CompOp;
use pdqi_relation::{ColumnarView, TupleSet, Value};

use crate::ast::{Comparison, Formula, Term};

/// Process-wide switch disabling the vectorized path, seeded from the
/// `PDQI_FORCE_SCALAR_EVAL` environment variable on first use.
fn force_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        AtomicBool::new(std::env::var("PDQI_FORCE_SCALAR_EVAL").is_ok_and(|v| v == "1"))
    })
}

/// Forces (or un-forces) scalar evaluation process-wide. The differential test suites
/// use this to run the same query through both paths; servers leave it to the
/// `PDQI_FORCE_SCALAR_EVAL` environment variable.
pub fn force_scalar_eval(force: bool) {
    force_flag().store(force, Ordering::SeqCst);
}

/// Whether scalar evaluation is currently forced (env knob or programmatic override).
pub fn scalar_eval_forced() -> bool {
    force_flag().load(Ordering::SeqCst)
}

static VECTORIZED_EVALS: AtomicU64 = AtomicU64::new(0);
static SCALAR_EVALS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of how many evaluations each path served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalPathStats {
    /// Evaluations served by the vectorized (columnar) path.
    pub vectorized: u64,
    /// Evaluations served by the scalar path (ineligible shape, missing columns,
    /// forced scalar, or fallback after a vectorized evaluation error).
    pub scalar: u64,
}

/// The current evaluation-path counters (monotonic over the process lifetime).
pub fn eval_path_stats() -> EvalPathStats {
    EvalPathStats {
        vectorized: VECTORIZED_EVALS.load(Ordering::Relaxed),
        scalar: SCALAR_EVALS.load(Ordering::Relaxed),
    }
}

pub(crate) fn count_vectorized() {
    VECTORIZED_EVALS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_scalar() {
    SCALAR_EVALS.fetch_add(1, Ordering::Relaxed);
}

/// The vectorized run hit an evaluation error (e.g. a comparison type error); the
/// caller must re-run the scalar path so the reported error is the scalar one.
pub(crate) struct Fallback;

/// Where a plan variable's value lives: the current row of atom slot `slot`, column
/// `col` of that slot's relation.
#[derive(Debug, Clone, Copy)]
struct VarSource {
    slot: usize,
    col: usize,
}

/// A comparison operand, resolved at compile time.
#[derive(Debug, Clone, Copy)]
enum CmpSrc<'f> {
    Const(&'f Value),
    Var(VarSource),
}

/// A comparison scheduled at the innermost slot binding one of its variables.
#[derive(Debug, Clone, Copy)]
struct CompiledCmp<'f> {
    left: CmpSrc<'f>,
    op: CompOp,
    right: CmpSrc<'f>,
}

/// A conjunct with no variables at all, evaluated once before any scan (mirroring the
/// scalar evaluator, which checks fully-bound conjuncts before the atom-driven search).
#[derive(Debug)]
enum GroundStep<'f> {
    /// A constant-constant comparison.
    Comparison(&'f Comparison),
    /// An all-constant atom: a columnar membership test against data slot `data`.
    AtomScan { data: usize, const_checks: Vec<(usize, &'f Value)> },
}

/// One variable-binding atom of the join, in conjunct order.
#[derive(Debug)]
struct Slot<'f> {
    /// Index into the plan's relation/data table.
    data: usize,
    /// `column == constant` filters (compiled into the slot's selection bitmask).
    const_checks: Vec<(usize, &'f Value)>,
    /// `column == already-bound variable` filters (join bindings and duplicate
    /// variables within one atom).
    eq_checks: Vec<(usize, VarSource)>,
    /// Comparisons whose variables are all bound once this slot is bound.
    comparisons: Vec<CompiledCmp<'f>>,
}

/// The columnar data one atom scans: the relation's column slices plus the current
/// visibility restriction (e.g. one repair).
pub(crate) struct SlotData<'a> {
    pub(crate) columns: &'a ColumnarView,
    pub(crate) visible: Option<&'a TupleSet>,
}

/// A compiled vectorized plan for one conjunctive formula. See the [module docs](self)
/// for the supported shape and the bit-identity contract.
pub(crate) struct VectorPlan<'f> {
    /// Relation name per data slot (ground atoms and join slots alike); the evaluator
    /// resolves these to [`SlotData`] before running the plan.
    pub(crate) relations: Vec<&'f str>,
    ground: Vec<GroundStep<'f>>,
    slots: Vec<Slot<'f>>,
    /// Per free variable (lexicographic order), where to gather its value from.
    gather: Vec<VarSource>,
}

impl<'f> VectorPlan<'f> {
    /// Compiles `formula` into a vectorized plan, or `None` when the shape is
    /// unsupported: anything but a (possibly empty) prefix of existential quantifiers
    /// over a conjunction of atoms and comparisons, a comparison variable bound by no
    /// atom, or a conjunction with no atom at all.
    ///
    /// `atom_order` optionally applies a planner-chosen join order: a permutation of
    /// the formula's variable-binding atoms (in conjunct order) that becomes the slot
    /// order of the depth-first join. Reordering never changes results — answer rows
    /// are collected into a sorted set and closed evaluation is an existence check —
    /// only the order candidates are enumerated in. An order whose length doesn't
    /// match the binding-atom count is ignored.
    pub(crate) fn compile_ordered(
        formula: &'f Formula,
        atom_order: Option<&[usize]>,
    ) -> Option<VectorPlan<'f>> {
        // Peel the leading existential block(s), exactly like the scalar evaluator
        // collapses ∃x.∃y.φ into ∃x,y.φ.
        let mut body = formula;
        while let Formula::Exists(_, inner) = body {
            body = inner;
        }
        let mut conjuncts = Vec::new();
        flatten(body, &mut conjuncts);
        if let Some(order) = atom_order {
            reorder_binding_atoms(&mut conjuncts, order);
        }

        // First pass: assign every variable its binding source — the first atom (in
        // conjunct order) and first column where it appears.
        let mut relations: Vec<&'f str> = Vec::new();
        let mut vars: Vec<(&'f str, VarSource)> = Vec::new();
        let mut next_slot = 0usize;
        for conjunct in &conjuncts {
            match conjunct {
                Formula::Atom(atom) => {
                    let has_vars = atom.args.iter().any(|t| matches!(t, Term::Var(_)));
                    if has_vars {
                        for (col, term) in atom.args.iter().enumerate() {
                            if let Term::Var(v) = term {
                                if !vars.iter().any(|(name, _)| name == v) {
                                    vars.push((v, VarSource { slot: next_slot, col }));
                                }
                            }
                        }
                        next_slot += 1;
                    }
                }
                Formula::Comparison(_) => {}
                _ => return None,
            }
        }

        let resolve = |term: &'f Term| -> Option<CmpSrc<'f>> {
            match term {
                Term::Const(v) => Some(CmpSrc::Const(v)),
                Term::Var(v) => {
                    vars.iter().find(|(name, _)| name == v).map(|&(_, source)| CmpSrc::Var(source))
                }
            }
        };

        // Second pass: build ground steps, join slots and the comparison schedule. A
        // comparison may precede (in conjunct order) the atom binding its variables, so
        // scheduled comparisons are buffered per first-pass slot index and attached once
        // every slot exists.
        let mut ground = Vec::new();
        let mut slots: Vec<Slot<'f>> = Vec::new();
        let mut scheduled: Vec<Vec<CompiledCmp<'f>>> = vec![Vec::new(); next_slot];
        for conjunct in &conjuncts {
            match conjunct {
                Formula::Atom(atom) => {
                    let mut const_checks = Vec::new();
                    let mut eq_checks = Vec::new();
                    let mut bound_here: Vec<&'f str> = Vec::new();
                    let slot_index = slots.len();
                    for (col, term) in atom.args.iter().enumerate() {
                        match term {
                            Term::Const(v) => const_checks.push((col, v)),
                            Term::Var(v) => {
                                let (_, source) =
                                    *vars.iter().find(|(name, _)| name == v).expect("var indexed");
                                if source.slot == slot_index && source.col == col {
                                    bound_here.push(v); // first occurrence: binds here
                                } else {
                                    eq_checks.push((col, source));
                                }
                            }
                        }
                    }
                    let data = relations.len();
                    relations.push(&atom.relation);
                    if bound_here.is_empty() && eq_checks.is_empty() {
                        ground.push(GroundStep::AtomScan { data, const_checks });
                    } else {
                        slots.push(Slot { data, const_checks, eq_checks, comparisons: Vec::new() });
                    }
                }
                Formula::Comparison(cmp) => {
                    let left = resolve(&cmp.left)?; // None: variable bound by no atom
                    let right = resolve(&cmp.right)?;
                    let slot_of = |src: &CmpSrc<'f>| match src {
                        CmpSrc::Const(_) => None,
                        CmpSrc::Var(source) => Some(source.slot),
                    };
                    match slot_of(&left).max(slot_of(&right)) {
                        None => ground.push(GroundStep::Comparison(cmp)),
                        Some(slot) => scheduled[slot].push(CompiledCmp { left, op: cmp.op, right }),
                    }
                }
                _ => unreachable!("rejected in the first pass"),
            }
        }
        if relations.is_empty() {
            return None;
        }
        debug_assert_eq!(slots.len(), next_slot);
        for (slot, comparisons) in slots.iter_mut().zip(scheduled) {
            slot.comparisons = comparisons;
        }

        // Free variables must all be gatherable from an atom binding. (They are:
        // comparison-only variables were rejected above, so every free variable is
        // bound by some atom.)
        let mut gather = Vec::new();
        for free in formula.free_vars() {
            let (_, source) = *vars.iter().find(|(name, _)| *name == free)?;
            gather.push(source);
        }
        Some(VectorPlan { relations, ground, slots, gather })
    }

    /// Vectorized [`answer_rows`](crate::Evaluator::answer_rows): the satisfying
    /// free-variable rows, sorted and de-duplicated. `Err(Fallback)` means a comparison
    /// errored — re-run the scalar path.
    pub(crate) fn answer_rows<'a>(
        &self,
        data: &'a [SlotData<'a>],
    ) -> Result<BTreeSet<Vec<Value>>, Fallback>
    where
        'f: 'a,
    {
        let mut rows = BTreeSet::new();
        if !self.run_ground(data)? {
            return Ok(rows);
        }
        let masks = self.slot_masks(data);
        let mut bound = vec![0usize; self.slots.len()];
        self.search(data, &masks, 0, &mut bound, &mut |slots_bound| {
            let row: Vec<Value> = self
                .gather
                .iter()
                .map(|src| {
                    let slot = &self.slots[src.slot];
                    data[slot.data].columns.column(src.col)[slots_bound[src.slot]].clone()
                })
                .collect();
            rows.insert(row);
            false // keep enumerating
        })?;
        Ok(rows)
    }

    /// Vectorized [`eval_closed`](crate::Evaluator::eval_closed): whether any
    /// satisfying binding exists. `Err(Fallback)` means a comparison errored.
    pub(crate) fn eval_closed<'a>(&self, data: &'a [SlotData<'a>]) -> Result<bool, Fallback>
    where
        'f: 'a,
    {
        if !self.run_ground(data)? {
            return Ok(false);
        }
        let masks = self.slot_masks(data);
        let mut bound = vec![0usize; self.slots.len()];
        self.search(data, &masks, 0, &mut bound, &mut |_| true /* stop at first */)
    }

    /// Resolves a comparison operand against the current join binding.
    fn resolve_value<'a>(
        &self,
        data: &'a [SlotData<'a>],
        bound: &[usize],
        src: CmpSrc<'f>,
    ) -> &'a Value
    where
        'f: 'a,
    {
        match src {
            CmpSrc::Const(v) => v,
            CmpSrc::Var(source) => {
                let slot = &self.slots[source.slot];
                &data[slot.data].columns.column(source.col)[bound[source.slot]]
            }
        }
    }

    /// Evaluates every variable-free conjunct. `Ok(false)` short-circuits the whole
    /// query to empty/false; `Err` reports a comparison error (scalar fallback).
    fn run_ground(&self, data: &[SlotData<'_>]) -> Result<bool, Fallback> {
        for step in &self.ground {
            match step {
                GroundStep::Comparison(cmp) => {
                    let constant = |term: &Term| match term {
                        Term::Const(v) => v.clone(),
                        Term::Var(_) => unreachable!("ground comparison"),
                    };
                    match cmp.op.eval(&constant(&cmp.left), &constant(&cmp.right)) {
                        Ok(true) => {}
                        Ok(false) => return Ok(false),
                        Err(_) => return Err(Fallback),
                    }
                }
                GroundStep::AtomScan { data: d, const_checks } => {
                    let mask = row_mask(&data[*d], const_checks);
                    if !mask.iter().any(|&word| word != 0) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }

    /// The per-slot selection bitmasks: visibility ∧ every `column == constant` filter,
    /// computed once per run with one columnar pass per filter and reused across every
    /// outer join binding.
    fn slot_masks(&self, data: &[SlotData<'_>]) -> Vec<Vec<u64>> {
        self.slots.iter().map(|slot| row_mask(&data[slot.data], &slot.const_checks)).collect()
    }

    /// Depth-first join over the slots: iterate slot `depth`'s bitmask, check its join
    /// bindings and scheduled comparisons against bound columns, recurse. `emit` runs
    /// per full binding and returns `true` to stop the search (closed evaluation).
    fn search<'a>(
        &self,
        data: &'a [SlotData<'a>],
        masks: &[Vec<u64>],
        depth: usize,
        bound: &mut Vec<usize>,
        emit: &mut dyn FnMut(&[usize]) -> bool,
    ) -> Result<bool, Fallback>
    where
        'f: 'a,
    {
        if depth == self.slots.len() {
            return Ok(emit(bound));
        }
        let slot = &self.slots[depth];
        let columns = data[slot.data].columns;
        for row in iter_mask(&masks[depth]) {
            bound[depth] = row;
            let joins = slot.eq_checks.iter().all(|(col, source)| {
                columns.column(*col)[row] == *self.resolve_value(data, bound, CmpSrc::Var(*source))
            });
            if !joins {
                continue;
            }
            let mut keep = true;
            for cmp in &slot.comparisons {
                let left = self.resolve_value(data, bound, cmp.left);
                let right = self.resolve_value(data, bound, cmp.right);
                match cmp.op.eval(left, right) {
                    Ok(true) => {}
                    Ok(false) => {
                        keep = false;
                        break;
                    }
                    Err(_) => return Err(Fallback),
                }
            }
            if keep && self.search(data, masks, depth + 1, bound, emit)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Builds the selection bitmask of one atom: a bit per row of the relation, set when
/// the row is visible and passes every `column == constant` filter (one columnar pass
/// per filter).
fn row_mask(data: &SlotData<'_>, const_checks: &[(usize, &Value)]) -> Vec<u64> {
    let rows = data.columns.rows();
    let words = rows.div_ceil(64);
    let mut mask = vec![0u64; words];
    match data.visible {
        Some(subset) => {
            for id in subset.iter() {
                if id.index() < rows {
                    mask[id.index() / 64] |= 1u64 << (id.index() % 64);
                }
            }
        }
        None => {
            for (i, word) in mask.iter_mut().enumerate() {
                let bits = rows - i * 64;
                *word = if bits >= 64 { !0 } else { (1u64 << bits) - 1 };
            }
        }
    }
    for (col, expected) in const_checks {
        let column = data.columns.column(*col);
        for word_idx in 0..mask.len() {
            let mut bits = mask[word_idx];
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if column[word_idx * 64 + bit] != **expected {
                    mask[word_idx] &= !(1u64 << bit);
                }
            }
        }
    }
    mask
}

/// Iterates the set bits of a bitmask in ascending order.
fn iter_mask(mask: &[u64]) -> impl Iterator<Item = usize> + '_ {
    mask.iter().enumerate().flat_map(|(word_idx, &word)| {
        let mut bits = word;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(word_idx * 64 + bit)
            }
        })
    })
}

/// Applies a planner-chosen join order: the variable-binding atoms among `conjuncts`
/// are permuted by `order` (indices into the binding-atom subsequence, source order);
/// ground atoms and comparisons keep their positions. A malformed `order` (wrong
/// length, out-of-range or repeated index) leaves the conjuncts untouched — the naive
/// order is always a correct fallback.
fn reorder_binding_atoms(conjuncts: &mut [&Formula], order: &[usize]) {
    let binding: Vec<usize> = conjuncts
        .iter()
        .enumerate()
        .filter(|(_, conjunct)| match conjunct {
            Formula::Atom(atom) => atom.args.iter().any(|t| matches!(t, Term::Var(_))),
            _ => false,
        })
        .map(|(index, _)| index)
        .collect();
    let valid = order.len() == binding.len()
        && (0..binding.len()).all(|slot| order.iter().filter(|&&o| o == slot).count() == 1);
    if !valid {
        return;
    }
    let originals: Vec<&Formula> = binding.iter().map(|&i| conjuncts[i]).collect();
    for (position, &from) in order.iter().enumerate() {
        conjuncts[binding[position]] = originals[from];
    }
}

/// Flattens nested conjunctions into their conjuncts (same shape as the scalar
/// evaluator's search).
fn flatten<'f>(formula: &'f Formula, out: &mut Vec<&'f Formula>) {
    match formula {
        Formula::And(a, b) => {
            flatten(a, out);
            flatten(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn compiles(text: &str) -> bool {
        VectorPlan::compile_ordered(&parse_formula(text).unwrap(), None).is_some()
    }

    /// Reordered compilation produces the same join slots in the permuted order:
    /// the relation list of the plan reflects the chosen order.
    #[test]
    fn atom_order_permutes_binding_atoms() {
        let formula = parse_formula(
            "EXISTS d1,s1,r1,d2,s2,r2 . \
             Mgr('Mary',d1,s1,r1) AND Aux('John',d2,s2,r2) AND s1 < s2",
        )
        .unwrap();
        let natural = VectorPlan::compile_ordered(&formula, None).unwrap();
        assert_eq!(natural.relations, vec!["Mgr", "Aux"]);
        let flipped = VectorPlan::compile_ordered(&formula, Some(&[1, 0])).unwrap();
        assert_eq!(flipped.relations, vec!["Aux", "Mgr"]);
        // Malformed orders fall back to the natural order instead of failing.
        let bad = VectorPlan::compile_ordered(&formula, Some(&[2, 0])).unwrap();
        assert_eq!(bad.relations, vec!["Mgr", "Aux"]);
        let short = VectorPlan::compile_ordered(&formula, Some(&[0])).unwrap();
        assert_eq!(short.relations, vec!["Mgr", "Aux"]);
    }

    #[test]
    fn conjunctive_shapes_compile() {
        assert!(compiles("EXISTS d,s,r . Mgr(x,d,s,r)"));
        assert!(compiles("EXISTS d,s,r . Mgr(x,d,s,r) AND s > 10"));
        assert!(compiles(
            "EXISTS d1,s1,r1,d2,s2,r2 . \
             Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2"
        ));
        assert!(compiles("Mgr('Mary','R&D',40,3)"));
        assert!(compiles("Mgr(x,d,s,r) AND s >= 20"));
        // Duplicate variable inside one atom (self-equality).
        assert!(compiles("EXISTS a . R(a,a,x)"));
    }

    #[test]
    fn comparisons_may_precede_the_atoms_binding_their_variables() {
        // Regression: scheduling a comparison used to index `slots[slot]` before the
        // binding atom's slot existed, panicking on these valid conjunct orders.
        assert!(compiles("EXISTS x,d,s,r . s >= 20 AND Mgr(x,d,s,r)"));
        assert!(compiles("s >= 20 AND Mgr(x,d,s,r)"));
        assert!(compiles(
            "EXISTS d1,s1,r1,d2,s2,r2 . \
             s1 < s2 AND Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2)"
        ));
    }

    #[test]
    fn unsupported_shapes_do_not_compile() {
        assert!(!compiles("NOT Mgr('Mary','R&D',40,3)"));
        assert!(!compiles("EXISTS x,y . R(x,y) OR S(x,y)"));
        assert!(!compiles("FORALL n,d,s,rep . Mgr(n,d,s,rep) -> s >= 10"));
        // Comparison variable bound by no atom.
        assert!(!compiles("EXISTS x . x = 40"));
        assert!(!compiles("x < 5"));
        // No atom at all.
        assert!(!compiles("3 < 5"));
    }
}
