//! Query classification.
//!
//! The complexity results of the paper's Fig. 5 distinguish query classes: consistent
//! answers to *{∀,∃}-free* (quantifier-free) queries are computable in PTIME for the
//! plain repair family, while *conjunctive* queries already make the problem
//! co-NP-complete. [`classify`] determines the most specific class of a formula so that
//! the CQA engine can pick the right algorithm.

use crate::ast::Formula;

/// The query classes relevant to the paper's complexity analysis, ordered from most to
/// least specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// No variables at all (every term is a constant).
    Ground,
    /// No quantifiers (the paper's "{∀,∃}-free" queries); may use any connective.
    QuantifierFree,
    /// A closed formula `∃ x̄ . (conjunction of atoms and comparisons)`.
    Conjunctive,
    /// Built from atoms and comparisons with `∧`, `∨`, `∃` only (no negation, no `∀`).
    ExistentialPositive,
    /// Anything else: full first-order.
    FirstOrder,
}

impl QueryClass {
    /// A short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Ground => "ground",
            QueryClass::QuantifierFree => "quantifier-free",
            QueryClass::Conjunctive => "conjunctive",
            QueryClass::ExistentialPositive => "existential-positive",
            QueryClass::FirstOrder => "first-order",
        }
    }
}

/// Whether the formula contains no quantifier.
pub fn is_quantifier_free(formula: &Formula) -> bool {
    match formula {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Comparison(_) => true,
        Formula::Not(inner) => is_quantifier_free(inner),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
            is_quantifier_free(a) && is_quantifier_free(b)
        }
        Formula::Exists(..) | Formula::Forall(..) => false,
    }
}

/// Whether the formula mentions no variable at all.
pub fn is_ground(formula: &Formula) -> bool {
    is_quantifier_free(formula) && formula.free_vars().is_empty() && formula.bound_vars().is_empty()
}

/// Whether the formula is a conjunctive query: an (optional) prefix of existential
/// quantifier blocks followed by a conjunction of atoms and comparisons.
pub fn is_conjunctive(formula: &Formula) -> bool {
    let mut body = formula;
    while let Formula::Exists(_, inner) = body {
        body = inner;
    }
    conjunction_of_literals(body)
}

fn conjunction_of_literals(formula: &Formula) -> bool {
    match formula {
        Formula::True | Formula::Atom(_) | Formula::Comparison(_) => true,
        Formula::And(a, b) => conjunction_of_literals(a) && conjunction_of_literals(b),
        _ => false,
    }
}

/// Whether the formula is existential-positive: no `∀`, no negation, no implication.
pub fn is_existential_positive(formula: &Formula) -> bool {
    match formula {
        Formula::True | Formula::False | Formula::Atom(_) | Formula::Comparison(_) => true,
        Formula::And(a, b) | Formula::Or(a, b) => {
            is_existential_positive(a) && is_existential_positive(b)
        }
        Formula::Exists(_, inner) => is_existential_positive(inner),
        Formula::Not(_) | Formula::Implies(..) | Formula::Forall(..) => false,
    }
}

/// The most specific [`QueryClass`] of the formula.
pub fn classify(formula: &Formula) -> QueryClass {
    if is_ground(formula) {
        QueryClass::Ground
    } else if is_quantifier_free(formula) {
        QueryClass::QuantifierFree
    } else if is_conjunctive(formula) {
        QueryClass::Conjunctive
    } else if is_existential_positive(formula) {
        QueryClass::ExistentialPositive
    } else {
        QueryClass::FirstOrder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn class_of(text: &str) -> QueryClass {
        classify(&parse_formula(text).unwrap())
    }

    #[test]
    fn ground_queries() {
        assert_eq!(class_of("Mgr('Mary','R&D',40,3)"), QueryClass::Ground);
        assert_eq!(class_of("NOT Mgr('Mary','R&D',40,3) AND 1 < 2"), QueryClass::Ground);
    }

    #[test]
    fn quantifier_free_queries() {
        assert_eq!(class_of("R(x) AND NOT S(x)"), QueryClass::QuantifierFree);
        assert_eq!(class_of("R(x) -> S(y)"), QueryClass::QuantifierFree);
    }

    #[test]
    fn conjunctive_queries() {
        assert_eq!(class_of("EXISTS x,y . Mgr('Mary',x,y,z) AND y > 10"), QueryClass::Conjunctive);
        // The paper's Q1 and Q2 are conjunctive.
        assert_eq!(
            class_of(
                "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2"
            ),
            QueryClass::Conjunctive
        );
        // Nested existential blocks still count.
        assert_eq!(class_of("EXISTS x . EXISTS y . R(x,y)"), QueryClass::Conjunctive);
    }

    #[test]
    fn existential_positive_but_not_conjunctive() {
        assert_eq!(class_of("EXISTS x . R(x) OR S(x)"), QueryClass::ExistentialPositive);
    }

    #[test]
    fn full_first_order() {
        assert_eq!(class_of("FORALL x . R(x) -> S(x)"), QueryClass::FirstOrder);
        assert_eq!(class_of("EXISTS x . NOT R(x)"), QueryClass::FirstOrder);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QueryClass::Ground.label(), "ground");
        assert_eq!(QueryClass::FirstOrder.label(), "first-order");
    }
}
