//! A small Volcano-style cost-based planner over the repair product.
//!
//! [`PreparedQuery`](https://docs.rs/pdqi) classifies a formula once and used to run a
//! fixed strategy. The engine's snapshot memo, however, already holds **real
//! cardinalities** — per-component preferred-repair counts and per-relation row counts —
//! sitting unused at planning time. This module turns them into costed physical
//! alternatives:
//!
//! ```text
//!                logical plan                      physical alternatives
//!   formula ──► scan(R, filters)          ──►  join orders (post-selection cards)
//!               join(R₁ ⋈ … ⋈ Rₙ)         ──►  vectorized vs scalar evaluation
//!               repair-product fold        ──►  per-component memo-derive vs enumerate
//!                                          ──►  chunk count from estimated cost
//! ```
//!
//! The planner is **engine-agnostic**: callers (the core crate's prepared-query
//! executor) supply [`PlannerInputs`] — relation row counts, per-component conflict
//! sizes and memoised repair counts, worker count and the tuner-calibrated chunk-cost
//! target — and get back a [`PhysicalPlan`]. Every physical choice is pinned
//! **bit-identical** to the naive fixed strategy: join order only permutes the
//! vectorized join's atom slots (answers are collected into an order-insensitive sorted
//! set), the eval-path choice switches between two already-pinned interpreters, chunking
//! only re-splits the same enumeration, and memo-derivation reproduces the exact
//! preferred lists the naive enumeration computes.
//!
//! `PDQI_FORCE_NAIVE_PLAN=1` (or [`force_naive_plan`]) disables the planner wholesale so
//! the fixed-strategy path stays exercised; [`plan_stats`] counts the choices made.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::ast::{Formula, Term};

/// Process-wide switch disabling the cost-based planner, seeded from the
/// `PDQI_FORCE_NAIVE_PLAN` environment variable on first use.
fn force_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        AtomicBool::new(std::env::var("PDQI_FORCE_NAIVE_PLAN").is_ok_and(|v| v == "1"))
    })
}

/// Forces (or un-forces) the naive fixed strategy process-wide. The differential test
/// suites use this to run the same query through both paths; servers leave it to the
/// `PDQI_FORCE_NAIVE_PLAN` environment variable.
pub fn force_naive_plan(force: bool) {
    force_flag().store(force, Ordering::SeqCst);
}

/// Whether the naive fixed strategy is currently forced (env knob or programmatic
/// override).
pub fn naive_plan_forced() -> bool {
    force_flag().load(Ordering::SeqCst)
}

static PLANNED: AtomicU64 = AtomicU64::new(0);
static NAIVE: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static JOIN_REORDERS: AtomicU64 = AtomicU64::new(0);
static SCALAR_PICKS: AtomicU64 = AtomicU64::new(0);
static DERIVED_COMPONENTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters of the planner's choices (monotonic over the process
/// lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStats {
    /// Physical plans costed and chosen (plan-cache misses).
    pub planned: u64,
    /// Executions that ran the naive fixed strategy (`PDQI_FORCE_NAIVE_PLAN` or
    /// [`force_naive_plan`]).
    pub naive: u64,
    /// Executions served by a cached physical plan.
    pub cache_hits: u64,
    /// Plans whose chosen join order differs from the formula's atom order.
    pub join_reorders: u64,
    /// Plans that picked the scalar interpreter over the vectorized path.
    pub scalar_picks: u64,
    /// Per-component preferred-repair lists derived by filtering a memoised `Rep`
    /// enumeration instead of recomputing the maximal-independent-set search.
    pub derived_components: u64,
}

/// The current planner counters.
pub fn plan_stats() -> PlanStats {
    PlanStats {
        planned: PLANNED.load(Ordering::Relaxed),
        naive: NAIVE.load(Ordering::Relaxed),
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        join_reorders: JOIN_REORDERS.load(Ordering::Relaxed),
        scalar_picks: SCALAR_PICKS.load(Ordering::Relaxed),
        derived_components: DERIVED_COMPONENTS.load(Ordering::Relaxed),
    }
}

/// Records one execution that took the naive fixed strategy.
pub fn note_naive() {
    NAIVE.fetch_add(1, Ordering::Relaxed);
}

/// Records one execution served by a cached physical plan.
pub fn note_plan_cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records one preferred-repair list derived from a memoised `Rep` enumeration.
pub fn note_derived_component() {
    DERIVED_COMPONENTS.fetch_add(1, Ordering::Relaxed);
}

/// Cardinality inputs for one relation a query mentions.
#[derive(Debug, Clone)]
pub struct RelationStats {
    /// The relation name (matched against atom relation names).
    pub name: String,
    /// Total rows of the relation instance.
    pub rows: usize,
    /// Conflict-free rows (present in every repair selection).
    pub base_rows: usize,
}

/// Cardinality inputs for one conflict component of the repair product, in enumeration
/// order.
#[derive(Debug, Clone)]
pub struct ComponentStats {
    /// Index into [`PlannerInputs::relations`] of the component's relation.
    pub relation: usize,
    /// Number of conflicting tuples in the component.
    pub tuples: usize,
    /// Memoised preferred-repair count under the **target family**, when the memo
    /// already holds it.
    pub repairs: Option<usize>,
    /// Memoised repair count under `Rep` (the maximal-independent-set list the other
    /// families filter), when the memo already holds it.
    pub rep_repairs: Option<usize>,
}

/// Everything the planner needs to cost alternatives: the caller (the engine) owns the
/// memo and instance statistics, the planner owns the cost model.
#[derive(Debug, Clone)]
pub struct PlannerInputs {
    /// The relations the query mentions, with row counts.
    pub relations: Vec<RelationStats>,
    /// The conflict components of those relations, in repair-product enumeration order.
    pub components: Vec<ComponentStats>,
    /// Short label of the target repair family (for plan rendering).
    pub family: &'static str,
    /// Whether the target family's preferred lists can be derived by filtering a
    /// memoised `Rep` enumeration (true for L-Rep, S-Rep and G-Rep; `Rep` needs no
    /// derivation and C-Rep runs its own algorithm).
    pub derive_eligible: bool,
    /// Worker threads available to chunked execution.
    pub workers: usize,
    /// The calibrated per-chunk work target (from the session's `ChunkTuner`).
    pub target_chunk_cost: u64,
}

/// How one component's preferred-repair list will be obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentStrategy {
    /// Already memoised under the target family: free.
    Memoised,
    /// Derived by the pairwise filter over the memoised `Rep` list (no
    /// maximal-independent-set re-enumeration).
    DeriveFromRep,
    /// Full enumeration (maximal-independent-set search plus the family filter).
    Enumerate,
}

impl ComponentStrategy {
    fn label(self) -> &'static str {
        match self {
            ComponentStrategy::Memoised => "memo",
            ComponentStrategy::DeriveFromRep => "derive-from-rep",
            ComponentStrategy::Enumerate => "enumerate",
        }
    }
}

/// One costed scan in the chosen join order (for plan rendering).
#[derive(Debug, Clone)]
struct ScanNode {
    relation: String,
    rows: usize,
    filters: usize,
    est_rows: u128,
}

/// The chosen physical plan: every field is a degree of freedom the executor may apply
/// without changing results, plus the estimates that justified the choice.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    /// Permutation of the formula's variable-binding atoms the vectorized join should
    /// use (`None`: the formula's own order was cheapest or the shape is not
    /// conjunctive).
    pub atom_order: Option<Vec<usize>>,
    /// Whether the vectorized path was chosen over the scalar interpreter.
    pub vectorized: bool,
    /// Estimated evaluation cost of one repair selection, in tuple-evaluations — the
    /// per-item cost fed to adaptive chunking (replacing the uniform per-selection
    /// heuristic).
    pub est_selection_cost: u64,
    /// Estimated size of the preferred-repair product.
    pub est_product: u128,
    /// Planned chunk count at [`PlannerInputs::workers`] workers.
    pub est_chunks: u64,
    /// Per-component strategies, in enumeration order.
    pub component_strategies: Vec<ComponentStrategy>,
    /// Short label of the target repair family.
    pub family: &'static str,
    /// The costed scans in chosen order (empty for non-conjunctive shapes).
    scans: Vec<ScanNode>,
    /// Total estimated cost (product × per-selection cost, saturating).
    pub est_total_cost: u128,
}

/// Ceiling on chunks per worker, mirroring the executor's adaptive chunking.
const MAX_CHUNKS_PER_WORKER: u128 = 16;

/// Join selectivity denominator: each equi-join binding or repeated variable is assumed
/// to keep one in four candidate pairs. Crude, but deterministic and directionally
/// right — what matters is the *ranking* of orders, not the absolute numbers.
const JOIN_SELECTIVITY_DIV: u128 = 4;

/// Constant-filter selectivity denominator: each `column = constant` filter is assumed
/// to keep one in four rows.
const CONST_SELECTIVITY_DIV: u128 = 4;

/// Per-row overhead factor of the scalar interpreter relative to the vectorized path
/// (string-keyed environments vs column slices).
const SCALAR_ROW_FACTOR: u128 = 8;

/// One variable-binding atom extracted from a conjunctive formula.
struct AtomShape<'f> {
    relation: &'f str,
    vars: Vec<&'f str>,
    const_filters: usize,
}

/// Extracts the variable-binding atoms of a conjunctive shape (an existential prefix
/// over atoms and comparisons), or `None` when the formula is outside that shape. The
/// returned list is index-aligned with the vectorized compiler's join slots.
fn conjunctive_atoms(formula: &Formula) -> Option<Vec<AtomShape<'_>>> {
    let mut body = formula;
    while let Formula::Exists(_, inner) = body {
        body = inner;
    }
    let mut stack = vec![body];
    let mut atoms = Vec::new();
    while let Some(conjunct) = stack.pop() {
        match conjunct {
            Formula::And(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            Formula::Comparison(_) => {}
            Formula::Atom(atom) => {
                let vars: Vec<&str> = atom
                    .args
                    .iter()
                    .filter_map(|t| match t {
                        Term::Var(v) => Some(v.as_str()),
                        Term::Const(_) => None,
                    })
                    .collect();
                if !vars.is_empty() {
                    let const_filters = atom.args.len() - vars.len();
                    atoms.push(AtomShape { relation: &atom.relation, vars, const_filters });
                }
            }
            _ => return None,
        }
    }
    // `stack` pops reversed And-branches back into source order; no atom at all means
    // there is nothing to order.
    if atoms.is_empty() {
        None
    } else {
        Some(atoms)
    }
}

/// Estimated post-selection cardinality of one atom scan: relation rows cut by each
/// constant filter's selectivity.
fn scan_estimate(rows: usize, const_filters: usize) -> u128 {
    let mut est = rows as u128;
    for _ in 0..const_filters {
        est /= CONST_SELECTIVITY_DIV;
    }
    est.max(1)
}

/// Cost of evaluating the atoms in the given left-deep order: at every step the
/// current binding count fans out over the next atom's post-selection rows, cut by the
/// join selectivity of each already-bound variable. Returns `(total cost, final
/// binding estimate)`.
fn order_cost(atoms: &[AtomShape<'_>], ests: &[u128], order: &[usize]) -> (u128, u128) {
    let mut bound: Vec<&str> = Vec::new();
    let mut running = 1u128;
    let mut cost = 0u128;
    for &index in order {
        let atom = &atoms[index];
        let step = running.saturating_mul(ests[index]);
        cost = cost.saturating_add(step);
        let shared = atom.vars.iter().filter(|v| bound.contains(v)).count();
        let mut out = step;
        for _ in 0..shared {
            out /= JOIN_SELECTIVITY_DIV;
        }
        running = out.max(1);
        bound.extend(atom.vars.iter().copied());
    }
    (cost, running)
}

/// The cheapest join order over the atoms: exhaustive for up to six atoms, greedy
/// (cheapest next step, ties to the lowest index) beyond. Ties between whole orders
/// break to the lexicographically smallest permutation, so the choice is deterministic.
fn best_order(atoms: &[AtomShape<'_>], ests: &[u128]) -> (Vec<usize>, u128, u128) {
    let n = atoms.len();
    if n <= 6 {
        let mut best: Option<(Vec<usize>, u128, u128)> = None;
        let mut order: Vec<usize> = (0..n).collect();
        permute(&mut order, 0, &mut |candidate| {
            let (cost, out) = order_cost(atoms, ests, candidate);
            let better = match &best {
                None => true,
                Some((current, best_cost, _)) => {
                    cost < *best_cost || (cost == *best_cost && candidate < current.as_slice())
                }
            };
            if better {
                best = Some((candidate.to_vec(), cost, out));
            }
        });
        best.expect("at least one permutation")
    } else {
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let next = remaining
                .iter()
                .copied()
                .min_by_key(|&candidate| {
                    let mut trial = order.clone();
                    trial.push(candidate);
                    (order_cost(atoms, ests, &trial).0, candidate)
                })
                .expect("non-empty remaining");
            order.push(next);
            remaining.retain(|&i| i != next);
        }
        let (cost, out) = order_cost(atoms, ests, &order);
        (order, cost, out)
    }
}

/// Visits every permutation of `items[at..]` (Heap-style recursion, deterministic
/// visit order).
fn permute(items: &mut Vec<usize>, at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == items.len() {
        visit(items);
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute(items, at + 1, visit);
        items.swap(at, i);
    }
}

/// Estimated preferred-repair count of a component with `tuples` conflicting tuples
/// when the memo holds no exact count yet. Conflict components in the paper's
/// workloads are chain-like, where the maximal-independent-set count grows roughly
/// linearly; `t/2 + 1` matches paths exactly and stays conservative on denser graphs.
fn estimated_component_repairs(tuples: usize) -> u128 {
    (tuples as u128).div_ceil(2) + 1
}

/// Costs the physical alternatives for `formula` over the supplied cardinalities and
/// picks the cheapest. Pure and deterministic: same inputs, same plan.
pub fn plan(formula: &Formula, inputs: &PlannerInputs) -> PhysicalPlan {
    // --- repair-product fold: size estimate and per-component strategy -------------
    let mut est_product = 1u128;
    let mut component_strategies = Vec::with_capacity(inputs.components.len());
    for comp in &inputs.components {
        let count = match (comp.repairs, comp.rep_repairs) {
            (Some(exact), _) => exact as u128,
            (None, Some(rep)) => rep as u128, // upper bound: families filter the Rep list
            (None, None) => estimated_component_repairs(comp.tuples),
        };
        est_product = est_product.saturating_mul(count.max(1));
        let strategy = match (comp.repairs, comp.rep_repairs, inputs.derive_eligible) {
            (Some(_), _, _) => ComponentStrategy::Memoised,
            (None, Some(_), true) => ComponentStrategy::DeriveFromRep,
            _ => ComponentStrategy::Enumerate,
        };
        component_strategies.push(strategy);
    }

    // --- join order + eval path over the conjunctive shape -------------------------
    let rows_of =
        |name: &str| inputs.relations.iter().find(|r| r.name == name).map(|r| r.rows).unwrap_or(1);
    let (atom_order, vectorized, scans, selection_cost) = match conjunctive_atoms(formula) {
        Some(atoms) => {
            let ests: Vec<u128> =
                atoms.iter().map(|a| scan_estimate(rows_of(a.relation), a.const_filters)).collect();
            let identity: Vec<usize> = (0..atoms.len()).collect();
            let (identity_cost, _) = order_cost(&atoms, &ests, &identity);
            let (order, cost, _) = best_order(&atoms, &ests);
            let reordered = order != identity && cost < identity_cost;
            if reordered {
                JOIN_REORDERS.fetch_add(1, Ordering::Relaxed);
            }
            let chosen: Vec<usize> = if reordered { order } else { identity };
            let chosen_cost = if reordered { cost } else { identity_cost };
            // Vectorized: one bitmask pass over each relation plus the pruned join.
            // Scalar: the same join shape but with per-row interpretation overhead.
            let mask_setup: u128 =
                atoms.iter().map(|a| (rows_of(a.relation) as u128) / 8 + 8).sum();
            let vector_cost = chosen_cost.saturating_add(mask_setup);
            let scalar_cost = chosen_cost.saturating_mul(SCALAR_ROW_FACTOR);
            let vectorized = vector_cost <= scalar_cost;
            if !vectorized {
                SCALAR_PICKS.fetch_add(1, Ordering::Relaxed);
            }
            let scans: Vec<ScanNode> = chosen
                .iter()
                .map(|&i| ScanNode {
                    relation: atoms[i].relation.to_string(),
                    rows: rows_of(atoms[i].relation),
                    filters: atoms[i].const_filters,
                    est_rows: ests[i],
                })
                .collect();
            let eval_cost = if vectorized { vector_cost } else { scalar_cost };
            (reordered.then_some(chosen), vectorized, scans, eval_cost)
        }
        None => {
            // Non-conjunctive shape: the vectorized compiler will refuse it anyway and
            // the scalar interpreter's cost scales with the full active domain.
            let total_rows: u128 = inputs.relations.iter().map(|r| r.rows as u128).sum();
            SCALAR_PICKS.fetch_add(1, Ordering::Relaxed);
            (None, false, Vec::new(), total_rows.saturating_mul(SCALAR_ROW_FACTOR).max(1))
        }
    };

    let est_selection_cost = u64::try_from(selection_cost.max(1)).unwrap_or(u64::MAX);
    let est_total_cost = est_product.saturating_mul(selection_cost.max(1));

    // --- chunking: the executor's adaptive split, previewed with the plan's cost ----
    let workers = inputs.workers.max(1) as u128;
    let work = est_product.saturating_mul(selection_cost.max(1));
    let ideal = work / (inputs.target_chunk_cost.max(1) as u128);
    let est_chunks =
        ideal.clamp(workers, workers.saturating_mul(MAX_CHUNKS_PER_WORKER)).min(est_product.max(1));
    PLANNED.fetch_add(1, Ordering::Relaxed);

    PhysicalPlan {
        atom_order,
        vectorized,
        est_selection_cost,
        est_product,
        est_chunks: u64::try_from(est_chunks).unwrap_or(u64::MAX),
        component_strategies,
        family: inputs.family,
        scans,
        est_total_cost,
    }
}

impl PhysicalPlan {
    /// How many components this plan derives from memoised `Rep` lists.
    pub fn derived_components(&self) -> usize {
        self.component_strategies.iter().filter(|s| **s == ComponentStrategy::DeriveFromRep).count()
    }

    /// Renders the costed plan as a deterministic tree (stable across runs for the
    /// same inputs): the repair-product fold with per-component strategies, then the
    /// per-selection evaluation with the chosen join order. All numbers are estimates;
    /// the executor appends measured actuals after running the plan.
    pub fn render(&self, inputs_summary: Option<&str>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan family={} est_cost={} est_product={}\n",
            self.family, self.est_total_cost, self.est_product
        ));
        if let Some(summary) = inputs_summary {
            out.push_str(&format!("├─ {summary}\n"));
        }
        let memoised =
            self.component_strategies.iter().filter(|s| **s == ComponentStrategy::Memoised).count();
        out.push_str(&format!(
            "├─ repair-product components={} memoised={} derive-from-rep={} chunks≈{}\n",
            self.component_strategies.len(),
            memoised,
            self.derived_components(),
            self.est_chunks
        ));
        const LISTED: usize = 8;
        for (index, strategy) in self.component_strategies.iter().take(LISTED).enumerate() {
            out.push_str(&format!("│  ├─ component#{index} strategy={}\n", strategy.label()));
        }
        if self.component_strategies.len() > LISTED {
            out.push_str(&format!(
                "│  └─ … and {} more\n",
                self.component_strategies.len() - LISTED
            ));
        }
        let path = if self.vectorized { "vectorized" } else { "scalar" };
        let order = match &self.atom_order {
            Some(order) => format!(
                " order=[{}]",
                order.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "└─ eval path={path}{order} est_selection_cost={}\n",
            self.est_selection_cost
        ));
        for (position, scan) in self.scans.iter().enumerate() {
            let branch = if position + 1 == self.scans.len() { "└─" } else { "├─" };
            out.push_str(&format!(
                "   {branch} scan {} rows={} filters={} est_rows={}\n",
                scan.relation, scan.rows, scan.filters, scan.est_rows
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn inputs(relations: Vec<RelationStats>, components: Vec<ComponentStats>) -> PlannerInputs {
        PlannerInputs {
            relations,
            components,
            family: "G",
            derive_eligible: true,
            workers: 4,
            target_chunk_cost: 4096,
        }
    }

    fn rel(name: &str, rows: usize) -> RelationStats {
        RelationStats { name: name.to_string(), rows, base_rows: rows }
    }

    #[test]
    fn skewed_joins_put_the_selective_atom_first() {
        // Big(x) is 1000 rows unfiltered; Small('k', y) is 1000 rows with a constant
        // filter. The cheapest left-deep order scans Small first.
        let formula = parse_formula("EXISTS x,y . Big(x,y) AND Small('k',y)").expect("parses");
        let plan = plan(&formula, &inputs(vec![rel("Big", 4096), rel("Small", 4096)], vec![]));
        assert_eq!(plan.atom_order, Some(vec![1, 0]));
        assert!(plan.vectorized);
    }

    #[test]
    fn already_optimal_orders_are_left_alone() {
        let formula = parse_formula("EXISTS x,y . Small('k',y) AND Big(x,y)").expect("parses");
        let plan = plan(&formula, &inputs(vec![rel("Big", 4096), rel("Small", 4096)], vec![]));
        assert_eq!(plan.atom_order, None);
    }

    #[test]
    fn component_strategies_follow_the_memo_state() {
        let formula = parse_formula("EXISTS y . R(x,y)").expect("parses");
        let components = vec![
            ComponentStats { relation: 0, tuples: 4, repairs: Some(3), rep_repairs: Some(3) },
            ComponentStats { relation: 0, tuples: 4, repairs: None, rep_repairs: Some(3) },
            ComponentStats { relation: 0, tuples: 4, repairs: None, rep_repairs: None },
        ];
        let plan = plan(&formula, &inputs(vec![rel("R", 16)], components));
        assert_eq!(
            plan.component_strategies,
            vec![
                ComponentStrategy::Memoised,
                ComponentStrategy::DeriveFromRep,
                ComponentStrategy::Enumerate,
            ]
        );
        assert_eq!(plan.derived_components(), 1);
        // 3 × 3 × (4/2 + 1) with the unknown component estimated.
        assert_eq!(plan.est_product, 27);
    }

    #[test]
    fn rendering_is_deterministic_and_mentions_every_choice() {
        let formula = parse_formula("EXISTS x,y . Big(x,y) AND Small('k',y)").expect("parses");
        let physical = plan(&formula, &inputs(vec![rel("Big", 4096), rel("Small", 4096)], vec![]));
        let first = physical.render(Some("query Q"));
        let second = physical.render(Some("query Q"));
        assert_eq!(first, second);
        assert!(first.contains("plan family=G"));
        assert!(first.contains("order=[1,0]"));
        assert!(first.contains("scan Small"));
        assert!(first.contains("repair-product components=0"));
    }

    #[test]
    fn non_conjunctive_shapes_plan_scalar_without_an_order() {
        let formula = parse_formula("NOT R('a','b')").expect("parses");
        let physical = plan(&formula, &inputs(vec![rel("R", 64)], vec![]));
        assert_eq!(physical.atom_order, None);
        assert!(!physical.vectorized);
    }

    #[test]
    fn force_naive_round_trips() {
        let before = naive_plan_forced();
        force_naive_plan(true);
        assert!(naive_plan_forced());
        force_naive_plan(false);
        assert!(!naive_plan_forced());
        force_naive_plan(before);
    }
}
