//! The first-order formula AST.

use std::collections::BTreeSet;
use std::fmt;

use pdqi_constraints::CompOp;
use pdqi_relation::Value;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A first-order variable.
    Var(String),
    /// A constant from either domain.
    Const(Value),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => f.write_str(v),
            Term::Const(Value::Name(n)) => write!(f, "'{n}'"),
            Term::Const(Value::Int(n)) => write!(f, "{n}"),
        }
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms, one per attribute.
    pub args: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{arg}")?;
        }
        f.write_str(")")
    }
}

/// A built-in comparison `t₁ θ t₂` with `θ ∈ {=, ≠, <, ≤, >, ≥}`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Comparison {
    /// Left operand.
    pub left: Term,
    /// Comparison operator.
    pub op: CompOp,
    /// Right operand.
    pub right: Term,
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A first-order formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant `true`.
    True,
    /// The constant `false`.
    False,
    /// A relational atom.
    Atom(Atom),
    /// A built-in comparison.
    Comparison(Comparison),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication (eliminated by normalisation).
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// The free variables of the formula, in lexicographic order.
    pub fn free_vars(&self) -> Vec<String> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut free);
        free.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(atom) => {
                for term in &atom.args {
                    if let Term::Var(v) = term {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Comparison(cmp) => {
                for term in [&cmp.left, &cmp.right] {
                    if let Term::Var(v) = term {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(inner) => inner.collect_free(bound, out),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                let before = bound.len();
                bound.extend(vars.iter().cloned());
                inner.collect_free(bound, out);
                bound.truncate(before);
            }
        }
    }

    /// Whether the formula is closed (has no free variable).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All variables bound by some quantifier in the formula.
    pub fn bound_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_bound(&mut out);
        out
    }

    fn collect_bound(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Comparison(_) => {}
            Formula::Not(inner) => inner.collect_bound(out),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_bound(out);
                b.collect_bound(out);
            }
            Formula::Exists(vars, inner) | Formula::Forall(vars, inner) => {
                out.extend(vars.iter().cloned());
                inner.collect_bound(out);
            }
        }
    }

    /// All constants mentioned in the formula (part of the active domain).
    pub fn constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.collect_constants(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_constants(&self, out: &mut Vec<Value>) {
        let push_term = |t: &Term, out: &mut Vec<Value>| {
            if let Term::Const(v) = t {
                out.push(v.clone());
            }
        };
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(atom) => {
                for term in &atom.args {
                    push_term(term, out);
                }
            }
            Formula::Comparison(cmp) => {
                push_term(&cmp.left, out);
                push_term(&cmp.right, out);
            }
            Formula::Not(inner) => inner.collect_constants(out),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_constants(out);
                b.collect_constants(out);
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => inner.collect_constants(out),
        }
    }

    /// The relation names mentioned in the formula.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False | Formula::Comparison(_) => {}
            Formula::Atom(atom) => {
                out.insert(atom.relation.clone());
            }
            Formula::Not(inner) => inner.collect_relations(out),
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => inner.collect_relations(out),
        }
    }

    /// The number of AST nodes (a rough measure of query size used in reports).
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Comparison(_) => 1,
            Formula::Not(inner) | Formula::Exists(_, inner) | Formula::Forall(_, inner) => {
                1 + inner.size()
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("TRUE"),
            Formula::False => f.write_str("FALSE"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Comparison(c) => write!(f, "{c}"),
            Formula::Not(inner) => write!(f, "NOT ({inner})"),
            Formula::And(a, b) => write!(f, "({a} AND {b})"),
            Formula::Or(a, b) => write!(f, "({a} OR {b})"),
            Formula::Implies(a, b) => write!(f, "({a} -> {b})"),
            Formula::Exists(vars, inner) => write!(f, "EXISTS {} . ({inner})", vars.join(",")),
            Formula::Forall(vars, inner) => write!(f, "FORALL {} . ({inner})", vars.join(",")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn free_and_bound_variables() {
        // EXISTS x . R(x, y) AND x < 5
        let f = exists(&["x"], and(atom("R", vec![var("x"), var("y")]), lt(var("x"), int(5))));
        assert_eq!(f.free_vars(), vec!["y".to_string()]);
        assert!(f.bound_vars().contains("x"));
        assert!(!f.is_closed());
        assert!(exists(&["x", "y"], atom("R", vec![var("x"), var("y")])).is_closed());
    }

    #[test]
    fn constants_and_relations_are_collected() {
        let f =
            and(atom("Mgr", vec![name("Mary"), var("d")]), atom("Dept", vec![var("d"), int(7)]));
        assert_eq!(f.constants(), vec![Value::name("Mary"), Value::int(7)]);
        let rels = f.relations();
        assert!(rels.contains("Mgr") && rels.contains("Dept"));
    }

    #[test]
    fn display_round_trips_through_the_parser() {
        let f = exists(&["x", "y"], and(atom("R", vec![var("x"), var("y")]), gt(var("y"), int(3))));
        let printed = f.to_string();
        let reparsed = crate::parser::parse_formula(&printed).unwrap();
        assert_eq!(f, reparsed);
    }

    #[test]
    fn size_counts_ast_nodes() {
        let f = not(and(Formula::True, Formula::False));
        assert_eq!(f.size(), 4);
    }
}
