//! Concise programmatic construction of formulas.
//!
//! These free functions keep test code and examples close to the paper's notation:
//!
//! ```
//! use pdqi_query::builder::*;
//! // ∃ d1,s1,r1,d2,s2,r2 . Mgr(Mary,d1,s1,r1) ∧ Mgr(John,d2,s2,r2) ∧ s1 < s2
//! let q1 = exists(
//!     &["d1", "s1", "r1", "d2", "s2", "r2"],
//!     and(
//!         and(
//!             atom("Mgr", vec![name("Mary"), var("d1"), var("s1"), var("r1")]),
//!             atom("Mgr", vec![name("John"), var("d2"), var("s2"), var("r2")]),
//!         ),
//!         lt(var("s1"), var("s2")),
//!     ),
//! );
//! assert!(q1.is_closed());
//! ```

use pdqi_constraints::CompOp;
use pdqi_relation::Value;

use crate::ast::{Atom, Comparison, Formula, Term};

/// A variable term.
pub fn var(name: &str) -> Term {
    Term::Var(name.to_string())
}

/// A name-constant term.
pub fn name(text: &str) -> Term {
    Term::Const(Value::name(text))
}

/// An integer-constant term.
pub fn int(n: i64) -> Term {
    Term::Const(Value::int(n))
}

/// A relational atom.
pub fn atom(relation: &str, args: Vec<Term>) -> Formula {
    Formula::Atom(Atom { relation: relation.to_string(), args })
}

/// Conjunction.
pub fn and(a: Formula, b: Formula) -> Formula {
    Formula::And(Box::new(a), Box::new(b))
}

/// Conjunction of an arbitrary number of formulas (`TRUE` for the empty list).
pub fn and_all<I: IntoIterator<Item = Formula>>(formulas: I) -> Formula {
    let mut iter = formulas.into_iter();
    match iter.next() {
        None => Formula::True,
        Some(first) => iter.fold(first, and),
    }
}

/// Disjunction.
pub fn or(a: Formula, b: Formula) -> Formula {
    Formula::Or(Box::new(a), Box::new(b))
}

/// Disjunction of an arbitrary number of formulas (`FALSE` for the empty list).
pub fn or_all<I: IntoIterator<Item = Formula>>(formulas: I) -> Formula {
    let mut iter = formulas.into_iter();
    match iter.next() {
        None => Formula::False,
        Some(first) => iter.fold(first, or),
    }
}

/// Negation.
pub fn not(f: Formula) -> Formula {
    Formula::Not(Box::new(f))
}

/// Implication.
pub fn implies(a: Formula, b: Formula) -> Formula {
    Formula::Implies(Box::new(a), Box::new(b))
}

/// Existential quantification.
pub fn exists(vars: &[&str], f: Formula) -> Formula {
    Formula::Exists(vars.iter().map(|v| v.to_string()).collect(), Box::new(f))
}

/// Universal quantification.
pub fn forall(vars: &[&str], f: Formula) -> Formula {
    Formula::Forall(vars.iter().map(|v| v.to_string()).collect(), Box::new(f))
}

fn cmp(left: Term, op: CompOp, right: Term) -> Formula {
    Formula::Comparison(Comparison { left, op, right })
}

/// `left = right`.
pub fn eq(left: Term, right: Term) -> Formula {
    cmp(left, CompOp::Eq, right)
}

/// `left ≠ right`.
pub fn neq(left: Term, right: Term) -> Formula {
    cmp(left, CompOp::Neq, right)
}

/// `left < right`.
pub fn lt(left: Term, right: Term) -> Formula {
    cmp(left, CompOp::Lt, right)
}

/// `left ≤ right`.
pub fn le(left: Term, right: Term) -> Formula {
    cmp(left, CompOp::Le, right)
}

/// `left > right`.
pub fn gt(left: Term, right: Term) -> Formula {
    cmp(left, CompOp::Gt, right)
}

/// `left ≥ right`.
pub fn ge(left: Term, right: Term) -> Formula {
    cmp(left, CompOp::Ge, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_all_and_or_all_handle_empty_and_singleton_lists() {
        assert_eq!(and_all([]), Formula::True);
        assert_eq!(or_all([]), Formula::False);
        let single = atom("R", vec![int(1)]);
        assert_eq!(and_all([single.clone()]), single.clone());
        assert_eq!(or_all([single.clone()]), single);
    }

    #[test]
    fn builders_construct_the_expected_shapes() {
        let f = implies(eq(var("x"), int(1)), not(atom("R", vec![var("x")])));
        match f {
            Formula::Implies(left, right) => {
                assert!(matches!(*left, Formula::Comparison(_)));
                assert!(matches!(*right, Formula::Not(_)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
        assert!(matches!(forall(&["x"], Formula::True), Formula::Forall(v, _) if v == vec!["x"]));
        assert!(matches!(ge(var("x"), int(0)), Formula::Comparison(c) if c.op == CompOp::Ge));
        assert!(matches!(le(var("x"), int(0)), Formula::Comparison(c) if c.op == CompOp::Le));
        assert!(matches!(neq(var("x"), int(0)), Formula::Comparison(c) if c.op == CompOp::Neq));
    }
}
