//! Model-theoretic evaluation of first-order formulas.
//!
//! The paper evaluates closed queries in the standard model-theoretic sense (`r ⊨ Q`).
//! [`Evaluator`] implements that semantics with **active-domain quantification**: the
//! quantifiers range over every constant occurring in the visible relations or in the
//! formula itself. For the constraint and query classes of the paper this coincides with
//! the usual domain-independent reading.
//!
//! An evaluator can expose a relation either fully or *restricted to a subset of its
//! tuples*. Restriction is how repairs are evaluated without materialising a new
//! instance per repair: the active domain is still drawn from the full instance, so all
//! repairs of one instance are evaluated over the same domain.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use pdqi_relation::{ColumnarView, DatabaseInstance, RelationInstance, TupleSet, Value};

use crate::ast::{Atom, Comparison, Formula, Term};
use crate::parser::ParseError;
use crate::vector::{self, SlotData, VectorPlan};

/// Errors raised during query analysis or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A closed evaluation was requested for a formula with free variables.
    FreeVariables {
        /// The free variables found.
        variables: Vec<String>,
    },
    /// The formula mentions a relation the evaluator does not know.
    UnknownRelation {
        /// The relation name.
        relation: String,
    },
    /// An atom's argument count does not match the relation's arity.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// Arity of the relation.
        expected: usize,
        /// Number of arguments in the atom.
        actual: usize,
    },
    /// A variable was used without being bound by a quantifier or an answer assignment.
    UnboundVariable {
        /// The variable name.
        variable: String,
    },
    /// A comparison was applied to values it cannot compare (e.g. `<` on names).
    TypeError(pdqi_relation::RelationError),
    /// A textual query could not be parsed.
    Parse(ParseError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::FreeVariables { variables } => {
                write!(f, "formula is not closed; free variables: {}", variables.join(", "))
            }
            QueryError::UnknownRelation { relation } => {
                write!(f, "query mentions unknown relation `{relation}`")
            }
            QueryError::ArityMismatch { relation, expected, actual } => write!(
                f,
                "atom over `{relation}` has {actual} arguments but the relation has arity {expected}"
            ),
            QueryError::UnboundVariable { variable } => {
                write!(f, "variable `{variable}` is not bound")
            }
            QueryError::TypeError(e) => write!(f, "type error: {e}"),
            QueryError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<pdqi_relation::RelationError> for QueryError {
    fn from(e: pdqi_relation::RelationError) -> Self {
        QueryError::TypeError(e)
    }
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

/// One visible relation: the instance, an optional restriction to a tuple subset, and
/// (when the caller supplies one) the instance's columnar view for vectorized plans.
struct View<'a> {
    instance: &'a RelationInstance,
    subset: Option<&'a TupleSet>,
    columns: Option<&'a ColumnarView>,
}

impl<'a> View<'a> {
    fn visible_tuples(&self) -> impl Iterator<Item = &'a pdqi_relation::Tuple> + '_ {
        self.instance.iter().filter_map(move |(id, tuple)| match self.subset {
            Some(subset) if !subset.contains(id) => None,
            _ => Some(tuple),
        })
    }
}

/// A first-order query evaluator over a set of (possibly restricted) relation instances.
pub struct Evaluator<'a> {
    relations: HashMap<String, View<'a>>,
    /// Planner-chosen join order for the vectorized path: a permutation of the
    /// formula's variable-binding atoms. `None` keeps the formula's own order.
    atom_order: Option<Vec<usize>>,
    /// Planner-chosen eval path: `true` skips the vectorized plan for this evaluator
    /// (the scalar interpreter is pinned bit-identical, so the choice is free).
    prefer_scalar: bool,
}

impl<'a> Evaluator<'a> {
    /// An evaluator with no visible relation.
    pub fn new() -> Self {
        Evaluator { relations: HashMap::new(), atom_order: None, prefer_scalar: false }
    }

    /// Sets the planner-chosen join order for the vectorized path (a permutation of
    /// the formula's variable-binding atoms, in conjunct order). Reordering never
    /// changes results — rows land in a sorted set and closed evaluation is an
    /// existence check — only the enumeration order of join candidates.
    pub fn set_atom_order(&mut self, order: Option<Vec<usize>>) {
        self.atom_order = order;
    }

    /// Prefers the scalar interpreter for this evaluator regardless of shape (a
    /// planner cost decision; both paths are pinned bit-identical).
    pub fn set_prefer_scalar(&mut self, prefer: bool) {
        self.prefer_scalar = prefer;
    }

    /// An evaluator over every relation of a database instance.
    pub fn with_database(db: &'a DatabaseInstance) -> Self {
        let mut eval = Evaluator::new();
        for (_, instance) in db.iter() {
            eval.add_relation(instance);
        }
        eval
    }

    /// An evaluator over a single relation instance.
    pub fn with_relation(instance: &'a RelationInstance) -> Self {
        let mut eval = Evaluator::new();
        eval.add_relation(instance);
        eval
    }

    /// An evaluator over a single relation restricted to `subset` (e.g. one repair).
    pub fn with_restricted(instance: &'a RelationInstance, subset: &'a TupleSet) -> Self {
        let mut eval = Evaluator::new();
        eval.add_restricted(instance, subset);
        eval
    }

    /// Makes `instance` visible under its schema name.
    pub fn add_relation(&mut self, instance: &'a RelationInstance) -> &mut Self {
        self.relations.insert(
            instance.schema().name().to_string(),
            View { instance, subset: None, columns: None },
        );
        self
    }

    /// Makes `instance` visible restricted to the tuples in `subset`.
    pub fn add_restricted(
        &mut self,
        instance: &'a RelationInstance,
        subset: &'a TupleSet,
    ) -> &mut Self {
        self.relations.insert(
            instance.schema().name().to_string(),
            View { instance, subset: Some(subset), columns: None },
        );
        self
    }

    /// [`Evaluator::add_relation`] with the instance's columnar view attached, enabling
    /// vectorized evaluation of eligible formulas over this relation. `columns` must be
    /// `ColumnarView::build(instance)` (snapshots build it once and share it).
    pub fn add_relation_columnar(
        &mut self,
        instance: &'a RelationInstance,
        columns: &'a ColumnarView,
    ) -> &mut Self {
        debug_assert_eq!(columns.rows(), instance.len());
        self.relations.insert(
            instance.schema().name().to_string(),
            View { instance, subset: None, columns: Some(columns) },
        );
        self
    }

    /// [`Evaluator::add_restricted`] with the instance's columnar view attached; the
    /// vectorized path applies `subset` as the base of its selection bitmasks.
    pub fn add_restricted_columnar(
        &mut self,
        instance: &'a RelationInstance,
        subset: &'a TupleSet,
        columns: &'a ColumnarView,
    ) -> &mut Self {
        debug_assert_eq!(columns.rows(), instance.len());
        self.relations.insert(
            instance.schema().name().to_string(),
            View { instance, subset: Some(subset), columns: Some(columns) },
        );
        self
    }

    /// Evaluates a closed formula, returning its truth value.
    ///
    /// Eligible conjunctive formulas over relations with columnar views run through the
    /// vectorized plan of [`crate::vector`], pinned bit-identical to the scalar path
    /// (same verdicts; any evaluation error re-runs the scalar path so errors are the
    /// scalar ones). `PDQI_FORCE_SCALAR_EVAL=1` disables the vectorized path.
    pub fn eval_closed(&self, formula: &Formula) -> Result<bool, QueryError> {
        let free = formula.free_vars();
        if !free.is_empty() {
            return Err(QueryError::FreeVariables { variables: free });
        }
        self.check_atoms(formula)?;
        if let Some((plan, data)) = self.vector_plan(formula) {
            if let Ok(verdict) = plan.eval_closed(&data) {
                vector::count_vectorized();
                return Ok(verdict);
            }
        }
        vector::count_scalar();
        let domain = self.active_domain(formula);
        let mut env = HashMap::new();
        self.eval(formula, &mut env, &domain)
    }

    /// Parses and evaluates a closed formula.
    pub fn eval_closed_text(&self, text: &str) -> Result<bool, QueryError> {
        let formula = crate::parser::parse_formula(text)?;
        self.eval_closed(&formula)
    }

    /// Computes the answers to an open formula: every assignment of the free variables
    /// (drawn from the active domain) under which the formula holds, in lexicographic
    /// variable order. A closed formula yields one empty assignment if it is true and no
    /// assignment if it is false.
    ///
    /// A thin wrapper over [`Evaluator::answer_rows`]: distinct assignments are distinct
    /// rows, and the enumeration visits them in ascending row order, so wrapping the
    /// sorted row set back into maps reproduces the historical output exactly.
    pub fn answers(&self, formula: &Formula) -> Result<Vec<BTreeMap<String, Value>>, QueryError> {
        let free = formula.free_vars();
        let rows = self.answer_rows(formula)?;
        Ok(rows.into_iter().map(|row| free.iter().cloned().zip(row).collect()).collect())
    }

    /// The answers to an open formula as plain **rows**: for every satisfying
    /// assignment, the values of the free variables in lexicographic variable order
    /// (the order [`Evaluator::answers`] reports), collected into a sorted,
    /// de-duplicated set.
    ///
    /// This is the per-repair entry point of the repair-enumeration pipelines
    /// (sequential and parallel alike): it skips the per-answer name→value maps of
    /// [`Evaluator::answers`] and hands back a set ready for certain/possible folding.
    pub fn answer_rows(&self, formula: &Formula) -> Result<BTreeSet<Vec<Value>>, QueryError> {
        self.check_atoms(formula)?;
        if let Some((plan, data)) = self.vector_plan(formula) {
            if let Ok(rows) = plan.answer_rows(&data) {
                vector::count_vectorized();
                return Ok(rows);
            }
        }
        vector::count_scalar();
        let free = formula.free_vars();
        let domain = self.active_domain(formula);
        let mut rows = BTreeSet::new();
        let mut env: HashMap<String, Value> = HashMap::new();
        self.answer_rows_rec(formula, &free, 0, &domain, &mut env, &mut rows)?;
        Ok(rows)
    }

    /// Compiles `formula` into a vectorized plan and resolves its atoms' columnar data,
    /// or `None` when scalar evaluation is forced, the shape is unsupported, some
    /// mentioned relation has no columnar view attached, or a view's row count doesn't
    /// match its instance (a stale view must take the scalar path, not drop tuples).
    fn vector_plan<'f>(&self, formula: &'f Formula) -> Option<(VectorPlan<'f>, Vec<SlotData<'a>>)> {
        if vector::scalar_eval_forced() || self.prefer_scalar {
            return None;
        }
        let plan = VectorPlan::compile_ordered(formula, self.atom_order.as_deref())?;
        let data = plan
            .relations
            .iter()
            .map(|name| {
                let view = self.relations.get(*name)?;
                let columns = view.columns?;
                if columns.rows() != view.instance.len() {
                    return None;
                }
                Some(SlotData { columns, visible: view.subset })
            })
            .collect::<Option<Vec<_>>>()?;
        Some((plan, data))
    }

    fn answer_rows_rec(
        &self,
        formula: &Formula,
        free: &[String],
        next: usize,
        domain: &[Value],
        env: &mut HashMap<String, Value>,
        out: &mut BTreeSet<Vec<Value>>,
    ) -> Result<(), QueryError> {
        if next == free.len() {
            if self.eval(formula, env, domain)? {
                out.insert(free.iter().map(|v| env[v].clone()).collect());
            }
            return Ok(());
        }
        for value in domain {
            env.insert(free[next].clone(), value.clone());
            self.answer_rows_rec(formula, free, next + 1, domain, env, out)?;
        }
        env.remove(&free[next]);
        Ok(())
    }

    /// The active domain: every constant in a visible tuple of any *full* instance the
    /// evaluator knows about (restrictions do not shrink the domain) plus every constant
    /// of the formula.
    fn active_domain(&self, formula: &Formula) -> Vec<Value> {
        let mut domain: Vec<Value> = Vec::new();
        for view in self.relations.values() {
            for (_, tuple) in view.instance.iter() {
                domain.extend(tuple.values().iter().cloned());
            }
        }
        domain.extend(formula.constants());
        domain.sort();
        domain.dedup();
        domain
    }

    /// Validates every atom of the formula against the visible relations (existence and
    /// arity), independently of truth evaluation.
    fn check_atoms(&self, formula: &Formula) -> Result<(), QueryError> {
        match formula {
            Formula::True | Formula::False | Formula::Comparison(_) => Ok(()),
            Formula::Atom(atom) => {
                let view = self.relations.get(&atom.relation).ok_or_else(|| {
                    QueryError::UnknownRelation { relation: atom.relation.clone() }
                })?;
                let expected = view.instance.schema().arity();
                if atom.args.len() != expected {
                    return Err(QueryError::ArityMismatch {
                        relation: atom.relation.clone(),
                        expected,
                        actual: atom.args.len(),
                    });
                }
                Ok(())
            }
            Formula::Not(inner) | Formula::Exists(_, inner) | Formula::Forall(_, inner) => {
                self.check_atoms(inner)
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                self.check_atoms(a)?;
                self.check_atoms(b)
            }
        }
    }

    fn eval(
        &self,
        formula: &Formula,
        env: &mut HashMap<String, Value>,
        domain: &[Value],
    ) -> Result<bool, QueryError> {
        match formula {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom(atom) => self.eval_atom(atom, env),
            Formula::Comparison(cmp) => self.eval_comparison(cmp, env),
            Formula::Not(inner) => Ok(!self.eval(inner, env, domain)?),
            Formula::And(a, b) => Ok(self.eval(a, env, domain)? && self.eval(b, env, domain)?),
            Formula::Or(a, b) => Ok(self.eval(a, env, domain)? || self.eval(b, env, domain)?),
            Formula::Implies(a, b) => Ok(!self.eval(a, env, domain)? || self.eval(b, env, domain)?),
            Formula::Exists(vars, inner) => self.eval_exists(vars, inner, env, domain),
            Formula::Forall(vars, inner) => self.eval_quantifier(vars, inner, env, domain, true),
        }
    }

    /// Existential quantification. When the body is a conjunction, the search is driven
    /// by the relational atoms (a backtracking join): each atom with unbound variables
    /// proposes only the visible tuples compatible with the current bindings, and every
    /// conjunct is checked as soon as its variables are bound. Variables not covered by
    /// any atom fall back to active-domain iteration. This keeps evaluation of the
    /// paper's conjunctive queries (Q1, Q2, ...) proportional to the data rather than to
    /// `|domain|^k`.
    fn eval_exists(
        &self,
        vars: &[String],
        inner: &Formula,
        env: &mut HashMap<String, Value>,
        domain: &[Value],
    ) -> Result<bool, QueryError> {
        // Collapse directly nested existential blocks: ∃x.∃y.φ ≡ ∃x,y.φ.
        let mut all_vars: Vec<String> = vars.to_vec();
        let mut body = inner;
        while let Formula::Exists(more, deeper) = body {
            all_vars.extend(more.iter().cloned());
            body = deeper;
        }
        // The quantifier shadows any outer binding of the same variable name.
        let shadowed: Vec<(String, Value)> =
            all_vars.iter().filter_map(|v| env.remove(v).map(|value| (v.clone(), value))).collect();
        let mut conjuncts: Vec<&Formula> = Vec::new();
        flatten_conjunction(body, &mut conjuncts);
        let result = self.exists_search(&all_vars, &conjuncts, env, domain);
        for (var, value) in shadowed {
            env.insert(var, value);
        }
        result
    }

    fn exists_search(
        &self,
        vars: &[String],
        conjuncts: &[&Formula],
        env: &mut HashMap<String, Value>,
        domain: &[Value],
    ) -> Result<bool, QueryError> {
        // 1. Evaluate (and drop) every conjunct whose variables are all bound; fail fast.
        let mut pending: Vec<&Formula> = Vec::new();
        for conjunct in conjuncts {
            if conjunct.free_vars().iter().all(|v| env.contains_key(v)) {
                if !self.eval(conjunct, env, domain)? {
                    return Ok(false);
                }
            } else {
                pending.push(conjunct);
            }
        }
        if pending.is_empty() {
            return Ok(true);
        }
        // 2. Prefer an atom with unbound variables: its matching tuples drive the search.
        let next_atom = pending.iter().find_map(|f| match f {
            Formula::Atom(atom) => Some(atom),
            _ => None,
        });
        if let Some(atom) = next_atom {
            let view = self
                .relations
                .get(&atom.relation)
                .ok_or_else(|| QueryError::UnknownRelation { relation: atom.relation.clone() })?;
            for tuple in view.visible_tuples() {
                let mut newly_bound: Vec<String> = Vec::new();
                let mut compatible = true;
                for (term, value) in atom.args.iter().zip(tuple.values()) {
                    match term {
                        Term::Const(c) => {
                            if c != value {
                                compatible = false;
                                break;
                            }
                        }
                        Term::Var(v) => match env.get(v) {
                            Some(bound) => {
                                if bound != value {
                                    compatible = false;
                                    break;
                                }
                            }
                            None => {
                                env.insert(v.clone(), value.clone());
                                newly_bound.push(v.clone());
                            }
                        },
                    }
                }
                let found = compatible && self.exists_search(vars, &pending, env, domain)?;
                for v in newly_bound {
                    env.remove(&v);
                }
                if found {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        // 3. No atom can drive the search: bind one remaining quantified variable from the
        //    active domain. If the unbound variables are not quantified here they are
        //    genuinely unbound and evaluation of the conjunct will report the error.
        let unbound_var = vars
            .iter()
            .find(|v| !env.contains_key(*v) && pending.iter().any(|f| f.free_vars().contains(v)));
        match unbound_var {
            Some(var) => {
                for value in domain {
                    env.insert(var.clone(), value.clone());
                    let found = self.exists_search(vars, &pending, env, domain)?;
                    env.remove(var);
                    if found {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            None => {
                // Every quantified variable is bound; the pending conjuncts contain other
                // unbound variables — evaluate to surface the proper error.
                for conjunct in &pending {
                    if !self.eval(conjunct, env, domain)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    fn eval_quantifier(
        &self,
        vars: &[String],
        inner: &Formula,
        env: &mut HashMap<String, Value>,
        domain: &[Value],
        universal: bool,
    ) -> Result<bool, QueryError> {
        if vars.is_empty() {
            return self.eval(inner, env, domain);
        }
        let (head, rest) = (&vars[0], &vars[1..]);
        let saved = env.get(head).cloned();
        let mut result = universal;
        for value in domain {
            env.insert(head.clone(), value.clone());
            let holds = self.eval_quantifier(rest, inner, env, domain, universal)?;
            if universal && !holds {
                result = false;
                break;
            }
            if !universal && holds {
                result = true;
                break;
            }
        }
        match saved {
            Some(v) => {
                env.insert(head.clone(), v);
            }
            None => {
                env.remove(head);
            }
        }
        Ok(result)
    }

    fn eval_atom(&self, atom: &Atom, env: &HashMap<String, Value>) -> Result<bool, QueryError> {
        let view = self
            .relations
            .get(&atom.relation)
            .ok_or_else(|| QueryError::UnknownRelation { relation: atom.relation.clone() })?;
        let mut resolved: Vec<Value> = Vec::with_capacity(atom.args.len());
        for term in &atom.args {
            resolved.push(self.resolve(term, env)?);
        }
        Ok(view
            .visible_tuples()
            .any(|tuple| tuple.values().iter().zip(&resolved).all(|(a, b)| a == b)))
    }

    fn eval_comparison(
        &self,
        cmp: &Comparison,
        env: &HashMap<String, Value>,
    ) -> Result<bool, QueryError> {
        let left = self.resolve(&cmp.left, env)?;
        let right = self.resolve(&cmp.right, env)?;
        Ok(cmp.op.eval(&left, &right)?)
    }

    fn resolve(&self, term: &Term, env: &HashMap<String, Value>) -> Result<Value, QueryError> {
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| QueryError::UnboundVariable { variable: v.clone() }),
        }
    }
}

impl Default for Evaluator<'_> {
    fn default() -> Self {
        Evaluator::new()
    }
}

/// Flattens a right- or left-nested conjunction into its conjuncts.
fn flatten_conjunction<'f>(formula: &'f Formula, out: &mut Vec<&'f Formula>) {
    match formula {
        Formula::And(a, b) => {
            flatten_conjunction(a, out);
            flatten_conjunction(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;
    use pdqi_relation::{RelationSchema, TupleId, ValueType};
    use std::sync::Arc;

    /// The integrated Mgr instance of Example 1.
    fn mgr_instance() -> RelationInstance {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        RelationInstance::from_rows(
            schema,
            vec![
                vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
                vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
                vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
            ],
        )
        .unwrap()
    }

    const Q1: &str =
        "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 < s2";
    const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

    #[test]
    fn q1_is_true_in_the_integrated_instance() {
        // The misleading answer discussed in Example 1: Mary-IT (20) vs John-PR (30).
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        assert!(eval.eval_closed_text(Q1).unwrap());
    }

    #[test]
    fn q1_truth_varies_across_the_repairs_of_example_2() {
        let r = mgr_instance();
        // r1 = {Mary-R&D, John-PR}: Mary earns 40 > 30, Q1 false.
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(3)]);
        // r2 = {John-R&D, Mary-IT}: Mary earns 20 > 10, Q1 false.
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(2)]);
        // r3 = {Mary-IT, John-PR}: Mary earns 20 < 30, Q1 true.
        let r3 = TupleSet::from_ids([TupleId(2), TupleId(3)]);
        let q1 = parse_formula(Q1).unwrap();
        assert!(!Evaluator::with_restricted(&r, &r1).eval_closed(&q1).unwrap());
        assert!(!Evaluator::with_restricted(&r, &r2).eval_closed(&q1).unwrap());
        assert!(Evaluator::with_restricted(&r, &r3).eval_closed(&q1).unwrap());
    }

    #[test]
    fn q2_holds_exactly_in_repairs_r1_and_r2() {
        let r = mgr_instance();
        let q2 = parse_formula(Q2).unwrap();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(3)]);
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(2)]);
        let r3 = TupleSet::from_ids([TupleId(2), TupleId(3)]);
        assert!(Evaluator::with_restricted(&r, &r1).eval_closed(&q2).unwrap());
        assert!(Evaluator::with_restricted(&r, &r2).eval_closed(&q2).unwrap());
        assert!(!Evaluator::with_restricted(&r, &r3).eval_closed(&q2).unwrap());
    }

    #[test]
    fn ground_atoms_and_negation() {
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        assert!(eval.eval_closed_text("Mgr('Mary','R&D',40,3)").unwrap());
        assert!(!eval.eval_closed_text("Mgr('Mary','R&D',41,3)").unwrap());
        assert!(eval.eval_closed_text("NOT Mgr('Mary','PR',30,4)").unwrap());
    }

    #[test]
    fn universal_quantification_uses_the_active_domain() {
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        // Every manager tuple has a salary of at least 10.
        assert!(eval.eval_closed_text("FORALL n,d,s,rep . Mgr(n,d,s,rep) -> s >= 10").unwrap());
        assert!(!eval.eval_closed_text("FORALL n,d,s,rep . Mgr(n,d,s,rep) -> s >= 20").unwrap());
    }

    #[test]
    fn open_formulas_produce_answer_sets() {
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        // Who manages R&D? Two conflicting answers in the integrated instance.
        let f = parse_formula("EXISTS s,rep . Mgr(x,'R&D',s,rep)").unwrap();
        let answers = eval.answers(&f).unwrap();
        assert_eq!(answers.len(), 2);
        let names: Vec<&Value> = answers.iter().map(|a| &a["x"]).collect();
        assert!(names.contains(&&Value::name("Mary")));
        assert!(names.contains(&&Value::name("John")));
    }

    #[test]
    fn closed_formula_answers_are_the_empty_assignment_or_nothing() {
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        assert_eq!(eval.answers(&parse_formula(Q1).unwrap()).unwrap().len(), 1);
        assert_eq!(
            eval.answers(&parse_formula("Mgr('Nobody','X',1,1)").unwrap()).unwrap().len(),
            0
        );
    }

    #[test]
    fn restriction_does_not_shrink_the_active_domain() {
        let r = mgr_instance();
        let empty = TupleSet::new();
        let eval = Evaluator::with_restricted(&r, &empty);
        // No tuple is visible, but quantification still ranges over the instance values.
        assert!(!eval.eval_closed_text("EXISTS n,d,s,rep . Mgr(n,d,s,rep)").unwrap());
        assert!(eval.eval_closed_text("EXISTS x . x = 40").unwrap());
    }

    #[test]
    fn errors_are_reported() {
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        assert!(matches!(
            eval.eval_closed(&parse_formula("Nope(1)").unwrap()),
            Err(QueryError::UnknownRelation { .. })
        ));
        assert!(matches!(
            eval.eval_closed(&parse_formula("Mgr(1,2)").unwrap()),
            Err(QueryError::ArityMismatch { .. })
        ));
        assert!(matches!(
            eval.eval_closed(&parse_formula("EXISTS s,r . Mgr(x,'R&D',s,r)").unwrap()),
            Err(QueryError::FreeVariables { .. })
        ));
        // Ordering a name constant is a type error.
        assert!(matches!(
            eval.eval_closed(&parse_formula("'Mary' < 'John'").unwrap()),
            Err(QueryError::TypeError(_))
        ));
    }

    #[test]
    fn eval_closed_text_reports_parse_errors() {
        let r = mgr_instance();
        let eval = Evaluator::with_relation(&r);
        assert!(matches!(eval.eval_closed_text("Mgr("), Err(QueryError::Parse(_))));
    }

    #[test]
    fn columnar_path_handles_comparisons_preceding_their_binding_atoms() {
        // Regression: this conjunct order used to panic the plan compiler; the
        // comparison must also land on the right slot, so pin against the scalar path.
        let r = mgr_instance();
        let columns = ColumnarView::build(&r);
        let mut columnar = Evaluator::new();
        columnar.add_relation_columnar(&r, &columns);
        let scalar = Evaluator::with_relation(&r);
        for text in [
            "EXISTS x,d,s,r . s >= 20 AND Mgr(x,d,s,r)",
            "EXISTS d,s,r . s >= 20 AND Mgr(x,d,s,r)",
            "EXISTS d1,s1,r1,d2,s2,r2 . \
             s1 < s2 AND Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2)",
        ] {
            let f = parse_formula(text).unwrap();
            assert_eq!(
                columnar.answer_rows(&f).unwrap(),
                scalar.answer_rows(&f).unwrap(),
                "{text}"
            );
        }
    }

    #[test]
    fn stale_columnar_view_falls_back_to_the_scalar_path() {
        // A view whose row count disagrees with the instance must not drop tuples.
        let r = mgr_instance();
        let truncated = {
            let rows: Vec<Vec<Value>> =
                r.iter().take(2).map(|(_, t)| t.values().to_vec()).collect();
            RelationInstance::from_rows(r.schema().clone(), rows).unwrap()
        };
        let stale = ColumnarView::build(&truncated);
        let mut eval = Evaluator::new();
        eval.add_relation(&r); // no debug_assert on the mismatched pairing
        eval.relations.get_mut("Mgr").unwrap().columns = Some(&stale);
        // The only 'IT' tuple sits past the stale view's rows: a silent columnar run
        // would answer empty.
        let f = parse_formula("EXISTS s,rep . Mgr(x,'IT',s,rep)").unwrap();
        let rows = eval.answer_rows(&f).unwrap();
        assert_eq!(rows, Evaluator::with_relation(&r).answer_rows(&f).unwrap());
        assert_eq!(rows.len(), 1);
    }
}
