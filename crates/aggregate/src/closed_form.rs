//! Polynomial-time range answers for key-induced conflicts.
//!
//! With a single key dependency every conflict group is a **clique** of the conflict
//! graph (all tuples sharing the key value are pairwise conflicting), so a repair picks
//! exactly one tuple per clique and keeps every conflict-free tuple. Under that structure
//! the glb/lub of the standard aggregates decompose per clique — this is the tractable
//! core of Arenas et al. \[2\] — and no repair enumeration is needed:
//!
//! * `COUNT(*)` is the same in every repair (one tuple per clique, all isolated tuples);
//! * `MIN` / `MAX` bounds combine the per-clique extremes;
//! * `SUM` bounds add the per-clique extremes;
//! * `AVG` bounds follow from the `SUM` bounds because the count is fixed.
//!
//! Selections complicate the picture only mildly: a clique may contribute *no* selected
//! tuple to some repair, which makes the per-clique minimum contribution 0 for `SUM` /
//! `COUNT` and can make `MIN` / `MAX` / `AVG` undefined in some repair.
//!
//! [`range_closed_form`] refuses (with [`ClosedFormError::NotCliquePartition`]) to answer
//! when the conflict graph is not a disjoint union of cliques — that is exactly the
//! situation where the decomposition argument breaks and the enumeration-based evaluator
//! of [`crate::range`] must be used instead.

use std::fmt;

use pdqi_constraints::ConflictGraph;
use pdqi_core::RepairContext;
use pdqi_relation::TupleSet;

use crate::query::{AggregateFunction, AggregateQuery};
use crate::range::RangeAnswer;

/// Why the closed form could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClosedFormError {
    /// The conflict graph is not a disjoint union of cliques (more than one functional
    /// dependency, or a non-key dependency, is in play).
    NotCliquePartition,
    /// The aggregated attribute of a non-`COUNT` aggregate contained a non-numeric value.
    NonNumericValue,
    /// `COUNT DISTINCT` does not decompose per clique (the same value can appear in
    /// several cliques); use the enumeration-based evaluator.
    CountDistinctUnsupported,
    /// `AVG` under a selection that some clique can evade has a varying denominator and
    /// no per-clique decomposition; use the enumeration-based evaluator.
    AvgSelectionUnsupported,
}

impl fmt::Display for ClosedFormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClosedFormError::NotCliquePartition => f.write_str(
                "the conflict graph is not a union of cliques; use the enumeration-based evaluator",
            ),
            ClosedFormError::NonNumericValue => {
                f.write_str("the aggregated attribute must be numeric")
            }
            ClosedFormError::CountDistinctUnsupported => f.write_str(
                "COUNT DISTINCT has no per-clique closed form; use the enumeration-based evaluator",
            ),
            ClosedFormError::AvgSelectionUnsupported => f.write_str(
                "AVG with a skippable selection has no per-clique closed form; use the enumeration-based evaluator",
            ),
        }
    }
}

impl std::error::Error for ClosedFormError {}

/// Whether every connected component of the conflict graph is a clique — the structural
/// condition under which the closed form applies (it always holds when the constraints
/// are a single key dependency).
pub fn is_clique_partition(graph: &ConflictGraph) -> bool {
    graph.connected_components().iter().all(|component| {
        let size = component.len();
        component.iter().all(|t| {
            let inside = graph.neighbors(t).intersection(component);
            inside.len() == size - 1
        })
    })
}

/// Per-clique contribution bounds for one aggregate.
#[derive(Debug, Clone, Copy)]
struct Contribution {
    /// Smallest selected measure available in the clique, if any tuple is selected.
    min: Option<i64>,
    /// Largest selected measure available in the clique, if any tuple is selected.
    max: Option<i64>,
    /// Whether the clique also offers an unselected choice (so contributing nothing is
    /// possible).
    can_skip: bool,
}

/// Computes the range answer without enumerating repairs. Fails when the conflict graph
/// is not a union of cliques.
pub fn range_closed_form(
    ctx: &RepairContext,
    query: &AggregateQuery,
) -> Result<RangeAnswer, ClosedFormError> {
    let graph = ctx.graph();
    if !is_clique_partition(graph) {
        return Err(ClosedFormError::NotCliquePartition);
    }
    let instance = ctx.instance();
    let mut contributions = Vec::new();
    for component in graph.connected_components() {
        let mut contribution = Contribution { min: None, max: None, can_skip: false };
        for id in component.iter() {
            let tuple = instance.tuple_unchecked(id);
            if !query.selects(tuple) {
                contribution.can_skip = true;
                continue;
            }
            let measure = match query.measure(tuple) {
                Some(value) => value,
                None => return Err(ClosedFormError::NonNumericValue),
            };
            contribution.min = Some(contribution.min.map_or(measure, |m| m.min(measure)));
            contribution.max = Some(contribution.max.map_or(measure, |m| m.max(measure)));
        }
        contributions.push(contribution);
    }
    let answer = match query.function() {
        AggregateFunction::Count => count_range(&contributions),
        AggregateFunction::Sum => sum_range(&contributions),
        AggregateFunction::Min => extremum_range(&contributions, true),
        AggregateFunction::Max => extremum_range(&contributions, false),
        AggregateFunction::Avg => avg_range(&contributions)?,
        AggregateFunction::CountDistinct => return Err(ClosedFormError::CountDistinctUnsupported),
    };
    // `examined: 0` throughout — no repair enumeration happened, which is the point.
    Ok(answer)
}

fn count_range(contributions: &[Contribution]) -> RangeAnswer {
    // Every clique contributes exactly one tuple; the selection decides whether that
    // tuple is counted. A clique counts for sure only if *every* choice is selected.
    let mut lo = 0i64;
    let mut hi = 0i64;
    for c in contributions {
        if c.min.is_some() {
            hi += 1;
            if !c.can_skip {
                lo += 1;
            }
        }
    }
    RangeAnswer {
        glb: Some(lo as f64),
        lub: Some(hi as f64),
        examined: 0,
        undefined_somewhere: false,
    }
}

fn sum_range(contributions: &[Contribution]) -> RangeAnswer {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for c in contributions {
        if let (Some(min), Some(max)) = (c.min, c.max) {
            // The clique can contribute its smallest selected value, its largest, or —
            // when an unselected choice exists — possibly nothing at all.
            lo += if c.can_skip { min.min(0) } else { min };
            hi += if c.can_skip { max.max(0) } else { max };
        }
    }
    RangeAnswer {
        glb: Some(lo as f64),
        lub: Some(hi as f64),
        examined: 0,
        undefined_somewhere: false,
    }
}

fn extremum_range(contributions: &[Contribution], minimum: bool) -> RangeAnswer {
    // MIN: the glb is the smallest selected value anywhere; the lub is obtained by making
    // every clique contribute its largest selected value (or nothing when it can skip) —
    // it is the minimum of the per-clique maxima over the cliques that *must* contribute.
    // MAX is the mirror image. The aggregate is undefined in some repair iff every clique
    // can skip (then a repair selecting no tuple at all exists).
    let mandatory: Vec<&Contribution> =
        contributions.iter().filter(|c| c.min.is_some() && !c.can_skip).collect();
    let undefined_somewhere = mandatory.is_empty();

    // The most extreme achievable value: pick the single most helpful selected tuple
    // anywhere (smallest for MIN, largest for MAX); the other cliques cannot undo it.
    let outer = if minimum {
        contributions.iter().filter_map(|c| c.min).min()
    } else {
        contributions.iter().filter_map(|c| c.max).max()
    };

    // The least extreme achievable (defined) value: every mandatory clique contributes
    // its least damaging tuple and every optional clique skips; when no clique is
    // mandatory, the best defined outcome has exactly one optional clique contribute its
    // least damaging tuple.
    let from_mandatory = if minimum {
        mandatory.iter().filter_map(|c| c.max).min()
    } else {
        mandatory.iter().filter_map(|c| c.min).max()
    };
    let inner = from_mandatory.or_else(|| {
        let optional = contributions.iter().filter(|c| c.can_skip);
        if minimum {
            optional.filter_map(|c| c.max).max()
        } else {
            optional.filter_map(|c| c.min).min()
        }
    });

    let (glb, lub) = if minimum { (outer, inner) } else { (inner, outer) };
    RangeAnswer {
        glb: glb.map(|v| v as f64),
        lub: lub.map(|v| v as f64),
        examined: 0,
        undefined_somewhere,
    }
}

fn avg_range(contributions: &[Contribution]) -> Result<RangeAnswer, ClosedFormError> {
    // When no clique can evade the selection the count is the same in every repair
    // (one contribution per selected clique), so the AVG bounds are the SUM bounds
    // divided by that fixed count. When some clique can evade the selection the
    // denominator varies and the bounds no longer decompose per clique — the caller must
    // fall back to enumeration.
    let selected: Vec<&Contribution> = contributions.iter().filter(|c| c.min.is_some()).collect();
    if selected.is_empty() {
        return Ok(RangeAnswer { glb: None, lub: None, examined: 0, undefined_somewhere: true });
    }
    if selected.iter().any(|c| c.can_skip) {
        return Err(ClosedFormError::AvgSelectionUnsupported);
    }
    let count = selected.len() as f64;
    let sum = sum_range(contributions);
    Ok(RangeAnswer {
        glb: sum.glb.map(|v| v / count),
        lub: sum.lub.map(|v| v / count),
        examined: 0,
        undefined_somewhere: false,
    })
}

/// Convenience: the exact aggregate on a consistent sub-instance described by a tuple
/// set (used by tests and by the narrowing report).
pub fn evaluate_on(ctx: &RepairContext, set: &TupleSet, query: &AggregateQuery) -> Option<f64> {
    query.evaluate_over(set.iter().map(|id| ctx.instance().tuple_unchecked(id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_constraints::FdSet;
    use pdqi_core::FamilyKind;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

    use crate::query::AggregateFunction;
    use crate::range::range_by_enumeration;

    fn key_context(rows: &[(&str, i64)]) -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            rows.iter().map(|&(n, s)| vec![Value::name(n), Value::int(s)]).collect(),
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["Name -> Salary"]).unwrap();
        RepairContext::new(instance, fds)
    }

    fn agg(ctx: &RepairContext, f: AggregateFunction) -> AggregateQuery {
        AggregateQuery::over(ctx.instance().schema(), f, "Salary").unwrap()
    }

    #[test]
    fn key_conflicts_form_a_clique_partition() {
        let ctx = key_context(&[("Mary", 40), ("Mary", 20), ("Mary", 30), ("John", 10)]);
        assert!(is_clique_partition(ctx.graph()));
    }

    #[test]
    fn two_fd_conflicts_are_rejected() {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "R",
                &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
            )
            .unwrap(),
        );
        // A path-shaped conflict graph (t0–t1 via A→B, t1–t2 via B→C) is not a union of
        // cliques, so the decomposition argument does not apply.
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::int(1), Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(2), Value::int(20)],
                vec![Value::int(2), Value::int(2), Value::int(30)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["A -> B", "B -> C"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        assert!(!is_clique_partition(ctx.graph()));
        let query = AggregateQuery::count();
        assert_eq!(range_closed_form(&ctx, &query), Err(ClosedFormError::NotCliquePartition));
    }

    #[test]
    fn closed_form_matches_enumeration_on_all_functions() {
        let ctx =
            key_context(&[("Mary", 40), ("Mary", 20), ("John", 10), ("John", 35), ("Eve", 55)]);
        let empty = ctx.empty_priority();
        let family = FamilyKind::Rep.family();
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
        ] {
            let query =
                if f == AggregateFunction::Count { AggregateQuery::count() } else { agg(&ctx, f) };
            let closed = range_closed_form(&ctx, &query).unwrap();
            let brute = range_by_enumeration(&ctx, &empty, family.as_ref(), &query);
            assert_eq!(closed.glb, brute.glb, "{f}: glb");
            assert_eq!(closed.lub, brute.lub, "{f}: lub");
            assert_eq!(closed.undefined_somewhere, brute.undefined_somewhere, "{f}");
        }
    }

    #[test]
    fn selections_with_skippable_cliques_match_enumeration() {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::name("Mary"), Value::name("R&D"), Value::int(40)],
                vec![Value::name("Mary"), Value::name("IT"), Value::int(20)],
                vec![Value::name("John"), Value::name("R&D"), Value::int(10)],
                vec![Value::name("Eve"), Value::name("IT"), Value::int(55)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(Arc::clone(&schema), &["Name -> Dept Salary"]).unwrap();
        let ctx = RepairContext::new(instance, fds);
        let empty = ctx.empty_priority();
        let family = FamilyKind::Rep.family();
        for f in [
            AggregateFunction::Count,
            AggregateFunction::Sum,
            AggregateFunction::Min,
            AggregateFunction::Max,
        ] {
            let query = if f == AggregateFunction::Count {
                AggregateQuery::count().filtered(&schema, "Dept", Value::name("R&D")).unwrap()
            } else {
                AggregateQuery::over(&schema, f, "Salary")
                    .unwrap()
                    .filtered(&schema, "Dept", Value::name("R&D"))
                    .unwrap()
            };
            let closed = range_closed_form(&ctx, &query).unwrap();
            let brute = range_by_enumeration(&ctx, &empty, family.as_ref(), &query);
            assert_eq!(closed.glb, brute.glb, "{f}: glb");
            assert_eq!(closed.lub, brute.lub, "{f}: lub");
            assert_eq!(closed.undefined_somewhere, brute.undefined_somewhere, "{f}");
        }
    }

    #[test]
    fn consistent_instances_have_exact_ranges() {
        let ctx = key_context(&[("Mary", 40), ("John", 10)]);
        let query = agg(&ctx, AggregateFunction::Sum);
        let closed = range_closed_form(&ctx, &query).unwrap();
        assert_eq!(closed.glb, Some(50.0));
        assert_eq!(closed.lub, Some(50.0));
        assert!(closed.is_exact());
    }
}
