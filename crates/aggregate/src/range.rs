//! Range answers: the glb/lub of an aggregate across the (preferred) repairs.

use std::fmt;
use std::ops::ControlFlow;

use pdqi_core::{RepairContext, RepairFamily};
use pdqi_priority::Priority;

use crate::query::AggregateQuery;

/// The value an aggregate takes in one repair: `None` when no tuple qualifies and the
/// function has no neutral value (`MIN`, `MAX`, `AVG` over an empty selection).
pub type AggregateValue = Option<f64>;

/// The range-consistent answer to an aggregate query: the tightest interval containing
/// the aggregate's value in every (preferred) repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeAnswer {
    /// Greatest lower bound across the repairs (`None` if the aggregate was undefined in
    /// some repair, in which case no finite bound is certain).
    pub glb: AggregateValue,
    /// Least upper bound across the repairs.
    pub lub: AggregateValue,
    /// Number of repairs examined.
    pub examined: usize,
    /// Whether some repair left the aggregate undefined (empty selection under `MIN`,
    /// `MAX` or `AVG`).
    pub undefined_somewhere: bool,
}

impl RangeAnswer {
    /// Whether the answer is exact: the aggregate takes the same defined value in every
    /// examined repair.
    pub fn is_exact(&self) -> bool {
        !self.undefined_somewhere
            && match (self.glb, self.lub) {
                (Some(lo), Some(hi)) => (lo - hi).abs() < f64::EPSILON,
                _ => false,
            }
    }

    /// The width `lub - glb` of the range (`None` when a bound is missing).
    pub fn width(&self) -> Option<f64> {
        Some(self.lub? - self.glb?)
    }
}

impl fmt::Display for RangeAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render = |v: AggregateValue| match v {
            None => "⊥".to_string(),
            Some(x) => format!("{x}"),
        };
        write!(f, "[{}, {}]", render(self.glb), render(self.lub))
    }
}

/// Computes the range answer by evaluating the aggregate in every preferred repair of
/// `family` under `priority`. Works for any family (and any aggregate) at the cost of
/// enumerating the preferred repairs; the closed form of
/// [`crate::closed_form::range_closed_form`] avoids the enumeration in the one-key case.
pub fn range_by_enumeration(
    ctx: &RepairContext,
    priority: &Priority,
    family: &dyn RepairFamily,
    query: &AggregateQuery,
) -> RangeAnswer {
    let mut answer = RangeAnswer { glb: None, lub: None, examined: 0, undefined_somewhere: false };
    family.for_each_preferred(ctx, priority, &mut |repair| {
        let value = query.evaluate_over(repair.iter().map(|id| ctx.instance().tuple_unchecked(id)));
        answer.examined += 1;
        match value {
            None => answer.undefined_somewhere = true,
            Some(v) => {
                answer.glb = Some(answer.glb.map_or(v, |lo: f64| lo.min(v)));
                answer.lub = Some(answer.lub.map_or(v, |hi: f64| hi.max(v)));
            }
        }
        ControlFlow::Continue(())
    });
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_constraints::FdSet;
    use pdqi_core::FamilyKind;
    use pdqi_relation::{RelationInstance, RelationSchema, TupleId, Value, ValueType};

    use crate::query::AggregateFunction;

    /// The paper's Example 1 instance (Mgr) with its two key dependencies.
    fn example1() -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)],
                vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)],
                vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
            ],
        )
        .unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        RepairContext::new(instance, fds)
    }

    #[test]
    fn salary_ranges_over_all_repairs_of_example_1() {
        // Repairs: {t0,t3} (40+30), {t1,t2} (10+20), {t2,t3} (20+30).
        let ctx = example1();
        let schema = Arc::clone(ctx.instance().schema());
        let empty = ctx.empty_priority();
        let family = FamilyKind::Rep.family();
        let sum = AggregateQuery::over(&schema, AggregateFunction::Sum, "Salary").unwrap();
        let range = range_by_enumeration(&ctx, &empty, family.as_ref(), &sum);
        assert_eq!(range.glb, Some(30.0));
        assert_eq!(range.lub, Some(70.0));
        assert_eq!(range.examined, 3);
        assert!(!range.is_exact());
        assert_eq!(range.width(), Some(40.0));

        let count = AggregateQuery::count();
        let count_range = range_by_enumeration(&ctx, &empty, family.as_ref(), &count);
        assert_eq!(count_range.glb, Some(2.0));
        assert_eq!(count_range.lub, Some(2.0));
        assert!(count_range.is_exact());

        let max = AggregateQuery::over(&schema, AggregateFunction::Max, "Salary").unwrap();
        let max_range = range_by_enumeration(&ctx, &empty, family.as_ref(), &max);
        assert_eq!(max_range.glb, Some(20.0));
        assert_eq!(max_range.lub, Some(40.0));
    }

    #[test]
    fn preferences_narrow_the_range() {
        // Example 3's reliability priority keeps only the repairs {t0,t3} and {t1,t2}.
        // The range of MAX(Salary) restricted to Mary stays [20, 40] (both preferred
        // repairs contribute one of the two candidate salaries), but the preferred
        // computation examines strictly fewer repairs and its range is always contained
        // in the unrestricted one — the aggregation analogue of monotonicity (P2).
        let ctx = example1();
        let schema = Arc::clone(ctx.instance().schema());
        let priority =
            ctx.priority_from_pairs(&[(TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))]).unwrap();
        let marys_salary = AggregateQuery::over(&schema, AggregateFunction::Max, "Salary")
            .unwrap()
            .filtered(&schema, "Name", Value::name("Mary"))
            .unwrap();
        let all = range_by_enumeration(
            &ctx,
            &ctx.empty_priority(),
            FamilyKind::Rep.family().as_ref(),
            &marys_salary,
        );
        let preferred = range_by_enumeration(
            &ctx,
            &priority,
            FamilyKind::Global.family().as_ref(),
            &marys_salary,
        );
        assert_eq!(all.glb, Some(20.0));
        assert_eq!(all.lub, Some(40.0));
        assert!(preferred.examined < all.examined);
        // The preferred range is contained in the unrestricted range (P2 for aggregates).
        assert!(preferred.glb.unwrap() >= all.glb.unwrap());
        assert!(preferred.lub.unwrap() <= all.lub.unwrap());
    }

    #[test]
    fn undefined_aggregates_are_reported() {
        // MIN over a selection that matches only tuple t0: the repairs without t0 leave
        // the aggregate undefined.
        let ctx = example1();
        let schema = Arc::clone(ctx.instance().schema());
        let min_rd = AggregateQuery::over(&schema, AggregateFunction::Min, "Salary")
            .unwrap()
            .filtered(&schema, "Dept", Value::name("R&D"))
            .unwrap();
        let range = range_by_enumeration(
            &ctx,
            &ctx.empty_priority(),
            FamilyKind::Rep.family().as_ref(),
            &min_rd,
        );
        assert!(range.undefined_somewhere);
        assert!(!range.is_exact());
    }
}
