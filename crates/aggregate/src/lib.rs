//! Range-consistent aggregation answers over inconsistent databases.
//!
//! The paper's concluding section points at the complexity study of *scalar aggregation*
//! in inconsistent databases (Arenas et al. \[2\]) as the natural companion of its
//! framework: when the query is an aggregate (`MIN`, `MAX`, `COUNT`, `SUM`, `AVG`) the
//! certain-answer semantics becomes a **range** — the greatest lower bound and least
//! upper bound the aggregate takes across the (preferred) repairs.
//!
//! This crate adds that companion on top of `pdqi-core`:
//!
//! * [`query`] — aggregate queries over one numeric attribute, with an optional
//!   selection on the aggregated tuples,
//! * [`range`] — the [`RangeAnswer`] type and the generic enumeration-based evaluator
//!   that works for *any* repair family (and therefore for preferred repairs),
//! * [`closed_form`] — the polynomial-time evaluator for the case \[2\] studies: one key
//!   dependency, i.e. a conflict graph whose connected components are cliques, where
//!   every repair picks exactly one tuple per clique and the bounds decompose
//!   per component,
//! * [`narrowing`] — helpers quantifying how much a priority narrows the answer range
//!   (the aggregation counterpart of the paper's monotonicity property P2).
//!
//! The closed form and the enumeration agree wherever both apply; the property tests and
//! the `e12_aggregation` bench exercise that equivalence and the complexity gap between
//! the two.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod closed_form;
pub mod narrowing;
pub mod query;
pub mod range;

pub use closed_form::{is_clique_partition, range_closed_form, ClosedFormError};
pub use narrowing::{narrowing_report, NarrowingReport};
pub use query::{AggregateFunction, AggregateQuery};
pub use range::{range_by_enumeration, AggregateValue, RangeAnswer};
