//! Aggregate queries over one relation.

use std::fmt;

use pdqi_relation::{
    AttrId, RelationError, RelationInstance, RelationSchema, Tuple, Value, ValueType,
};

/// The scalar aggregation functions of \[2\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// Number of tuples.
    Count,
    /// Number of distinct values of the aggregated attribute.
    CountDistinct,
    /// Smallest value of the aggregated attribute.
    Min,
    /// Largest value of the aggregated attribute.
    Max,
    /// Sum of the aggregated attribute.
    Sum,
    /// Arithmetic mean of the aggregated attribute.
    Avg,
}

impl AggregateFunction {
    /// The SQL-ish name of the function.
    pub fn label(self) -> &'static str {
        match self {
            AggregateFunction::Count => "COUNT",
            AggregateFunction::CountDistinct => "COUNT DISTINCT",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
        }
    }

    /// Whether the function needs a numeric attribute (`COUNT` does not).
    pub fn needs_numeric_attribute(self) -> bool {
        !matches!(self, AggregateFunction::Count)
    }
}

impl fmt::Display for AggregateFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An optional selection on the aggregated tuples: keep only tuples whose `attribute`
/// equals the given constant (the simple selections \[2\] allows ahead of the aggregate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// The filtering attribute.
    pub attribute: AttrId,
    /// The constant the attribute must equal.
    pub equals: Value,
}

/// An aggregate query `f(attribute)` over one relation, with an optional selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateQuery {
    function: AggregateFunction,
    attribute: Option<AttrId>,
    selection: Option<Selection>,
}

impl AggregateQuery {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        AggregateQuery { function: AggregateFunction::Count, attribute: None, selection: None }
    }

    /// An aggregate over a named attribute, resolved against `schema`.
    pub fn over(
        schema: &RelationSchema,
        function: AggregateFunction,
        attribute: &str,
    ) -> Result<Self, RelationError> {
        let attr = schema.attr_id(attribute)?;
        Ok(AggregateQuery { function, attribute: Some(attr), selection: None })
    }

    /// Restricts the aggregate to tuples whose `attribute` equals `value`.
    pub fn filtered(
        mut self,
        schema: &RelationSchema,
        attribute: &str,
        value: Value,
    ) -> Result<Self, RelationError> {
        let attr = schema.attr_id(attribute)?;
        self.selection = Some(Selection { attribute: attr, equals: value });
        Ok(self)
    }

    /// The aggregate function.
    pub fn function(&self) -> AggregateFunction {
        self.function
    }

    /// The aggregated attribute (absent for `COUNT(*)`).
    pub fn attribute(&self) -> Option<AttrId> {
        self.attribute
    }

    /// The selection, if any.
    pub fn selection(&self) -> Option<&Selection> {
        self.selection.as_ref()
    }

    /// Whether `tuple` passes the selection.
    pub fn selects(&self, tuple: &Tuple) -> bool {
        match &self.selection {
            None => true,
            Some(selection) => tuple.get(selection.attribute) == &selection.equals,
        }
    }

    /// The numeric value this query aggregates from `tuple`, if the tuple passes the
    /// selection. `COUNT(*)` contributes 1 per selected tuple.
    pub fn measure(&self, tuple: &Tuple) -> Option<i64> {
        if !self.selects(tuple) {
            return None;
        }
        match self.attribute {
            None => Some(1),
            Some(attr) => tuple.get(attr).as_int(),
        }
    }

    /// Validates the query against a schema: the aggregated attribute (when present and
    /// needed) must be numeric.
    pub fn validate(&self, schema: &RelationSchema) -> Result<(), RelationError> {
        if let Some(attr) = self.attribute {
            let def = schema.attribute(attr);
            if self.function.needs_numeric_attribute() && def.ty != ValueType::Int {
                return Err(RelationError::TypeMismatch {
                    relation: schema.name().to_string(),
                    attribute: def.name.clone(),
                    expected: ValueType::Int,
                    actual: def.ty,
                });
            }
        }
        Ok(())
    }

    /// Evaluates the aggregate over one consistent instance (or a repair materialised as
    /// an instance). Returns `None` when no tuple qualifies and the function has no
    /// neutral value (`MIN`, `MAX`, `AVG`).
    pub fn evaluate(&self, instance: &RelationInstance) -> Option<f64> {
        self.evaluate_over(instance.iter().map(|(_, t)| t))
    }

    /// Evaluates the aggregate over an arbitrary tuple iterator.
    pub fn evaluate_over<'a, I>(&self, tuples: I) -> Option<f64>
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        let mut count = 0i64;
        let mut sum = 0i64;
        let mut min: Option<i64> = None;
        let mut max: Option<i64> = None;
        let mut distinct = std::collections::BTreeSet::new();
        for tuple in tuples {
            let Some(value) = self.measure(tuple) else { continue };
            count += 1;
            sum += value;
            min = Some(min.map_or(value, |m| m.min(value)));
            max = Some(max.map_or(value, |m| m.max(value)));
            if self.function == AggregateFunction::CountDistinct {
                distinct.insert(value);
            }
        }
        match self.function {
            AggregateFunction::Count => Some(count as f64),
            AggregateFunction::CountDistinct => Some(distinct.len() as f64),
            AggregateFunction::Sum => Some(sum as f64),
            AggregateFunction::Min => min.map(|v| v as f64),
            AggregateFunction::Max => max.map(|v| v as f64),
            AggregateFunction::Avg => {
                if count == 0 {
                    None
                } else {
                    Some(sum as f64 / count as f64)
                }
            }
        }
    }
}

impl fmt::Display for AggregateQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.attribute {
            None => write!(f, "{}(*)", self.function),
            Some(attr) => write!(f, "{}(#{})", self.function, attr.index()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Dept", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        )
    }

    fn instance(rows: &[(&str, &str, i64)]) -> RelationInstance {
        RelationInstance::from_rows(
            schema(),
            rows.iter()
                .map(|&(n, d, s)| vec![Value::name(n), Value::name(d), Value::int(s)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn every_function_evaluates_on_a_consistent_instance() {
        let r = instance(&[("Mary", "R&D", 40), ("John", "PR", 30), ("Eve", "R&D", 30)]);
        let s = schema();
        let salary =
            |f: AggregateFunction| AggregateQuery::over(&s, f, "Salary").unwrap().evaluate(&r);
        assert_eq!(AggregateQuery::count().evaluate(&r), Some(3.0));
        assert_eq!(salary(AggregateFunction::Min), Some(30.0));
        assert_eq!(salary(AggregateFunction::Max), Some(40.0));
        assert_eq!(salary(AggregateFunction::Sum), Some(100.0));
        assert_eq!(salary(AggregateFunction::CountDistinct), Some(2.0));
        let avg = salary(AggregateFunction::Avg).unwrap();
        assert!((avg - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn selections_restrict_the_aggregated_tuples() {
        let r = instance(&[("Mary", "R&D", 40), ("John", "PR", 30), ("Eve", "R&D", 20)]);
        let s = schema();
        let q = AggregateQuery::over(&s, AggregateFunction::Sum, "Salary")
            .unwrap()
            .filtered(&s, "Dept", Value::name("R&D"))
            .unwrap();
        assert_eq!(q.evaluate(&r), Some(60.0));
        let count_rd = AggregateQuery::count().filtered(&s, "Dept", Value::name("R&D")).unwrap();
        assert_eq!(count_rd.evaluate(&r), Some(2.0));
    }

    #[test]
    fn empty_aggregations_have_no_min_max_avg() {
        let r = instance(&[]);
        let s = schema();
        for f in [AggregateFunction::Min, AggregateFunction::Max, AggregateFunction::Avg] {
            assert_eq!(AggregateQuery::over(&s, f, "Salary").unwrap().evaluate(&r), None);
        }
        assert_eq!(AggregateQuery::count().evaluate(&r), Some(0.0));
        assert_eq!(
            AggregateQuery::over(&s, AggregateFunction::Sum, "Salary").unwrap().evaluate(&r),
            Some(0.0)
        );
    }

    #[test]
    fn validation_rejects_non_numeric_aggregates() {
        let s = schema();
        let bad = AggregateQuery::over(&s, AggregateFunction::Sum, "Name").unwrap();
        assert!(bad.validate(&s).is_err());
        let good = AggregateQuery::over(&s, AggregateFunction::Sum, "Salary").unwrap();
        assert!(good.validate(&s).is_ok());
        assert!(AggregateQuery::over(&s, AggregateFunction::Sum, "Nope").is_err());
    }
}
