//! How much does a priority narrow an aggregate's answer range?
//!
//! The paper's monotonicity property (P2) says that extending the priority can only
//! shrink the set of preferred repairs; for aggregates this translates into the answer
//! **range** only ever tightening. [`narrowing_report`] measures that effect for one
//! aggregate query across a chain of priorities (typically: the empty priority, a partial
//! priority, and a total extension), reporting the range under a chosen family at every
//! step. It is the aggregation counterpart of the `e9_priority_sweep` experiment.

use pdqi_core::{FamilyKind, RepairContext};
use pdqi_priority::Priority;

use crate::query::AggregateQuery;
use crate::range::{range_by_enumeration, RangeAnswer};

/// The range answers along a chain of priorities.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrowingReport {
    /// The family the ranges were computed under.
    pub family: FamilyKind,
    /// One entry per priority of the chain: (number of oriented edges, range).
    pub steps: Vec<(usize, RangeAnswer)>,
}

impl NarrowingReport {
    /// Whether every step's range is contained in the previous step's range (the
    /// monotone-narrowing property). Steps with undefined bounds are skipped.
    pub fn is_monotone(&self) -> bool {
        self.steps.windows(2).all(|pair| {
            let (_, ref wider) = pair[0];
            let (_, ref narrower) = pair[1];
            match (wider.glb, wider.lub, narrower.glb, narrower.lub) {
                (Some(wlo), Some(whi), Some(nlo), Some(nhi)) => nlo >= wlo && nhi <= whi,
                _ => true,
            }
        })
    }

    /// Renders the report as one line per step.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (edges, range) in &self.steps {
            out.push_str(&format!(
                "{:<7} priority edges: {:>3}  range: {}\n",
                self.family.label(),
                edges,
                range
            ));
        }
        out
    }
}

/// Evaluates `query` under `family` for every priority of `chain` (the priorities should
/// form an extension chain for the monotone-narrowing reading to make sense).
pub fn narrowing_report(
    ctx: &RepairContext,
    chain: &[Priority],
    family: FamilyKind,
    query: &AggregateQuery,
) -> NarrowingReport {
    let steps = chain
        .iter()
        .map(|priority| {
            let range = range_by_enumeration(ctx, priority, family.family().as_ref(), query);
            (priority.edge_count(), range)
        })
        .collect();
    NarrowingReport { family, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use pdqi_constraints::FdSet;
    use pdqi_priority::random_total_extension;
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::query::AggregateFunction;

    fn salary_context() -> RepairContext {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Emp",
                &[("Name", ValueType::Name), ("Salary", ValueType::Int)],
            )
            .unwrap(),
        );
        let instance = RelationInstance::from_rows(
            Arc::clone(&schema),
            vec![
                vec![Value::name("Mary"), Value::int(40)],
                vec![Value::name("Mary"), Value::int(20)],
                vec![Value::name("John"), Value::int(10)],
                vec![Value::name("John"), Value::int(35)],
                vec![Value::name("Eve"), Value::int(55)],
            ],
        )
        .unwrap();
        let fds = FdSet::parse(schema, &["Name -> Salary"]).unwrap();
        RepairContext::new(instance, fds)
    }

    #[test]
    fn extending_the_priority_narrows_the_sum_range_down_to_a_point() {
        let ctx = salary_context();
        let schema = Arc::clone(ctx.instance().schema());
        let query = AggregateQuery::over(&schema, AggregateFunction::Sum, "Salary").unwrap();
        let empty = ctx.empty_priority();
        let mut rng = StdRng::seed_from_u64(5);
        let partial = {
            let mut p = empty.clone();
            p.add(pdqi_relation::TupleId(0), pdqi_relation::TupleId(1)).unwrap();
            p
        };
        let total = random_total_extension(&partial, &mut rng);
        let report = narrowing_report(&ctx, &[empty, partial, total], FamilyKind::Global, &query);
        assert!(report.is_monotone());
        // The empty priority leaves the full hull [20+10+55, 40+35+55] = [85, 130].
        assert_eq!(report.steps[0].1.glb, Some(85.0));
        assert_eq!(report.steps[0].1.lub, Some(130.0));
        // The total priority pins a single repair, so the final range is a point.
        assert!(report.steps[2].1.is_exact());
        assert!(report.render().contains("G-Rep"));
    }

    #[test]
    fn narrowing_holds_for_every_family_on_random_total_extensions() {
        let ctx = salary_context();
        let schema = Arc::clone(ctx.instance().schema());
        let query = AggregateQuery::over(&schema, AggregateFunction::Max, "Salary").unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for kind in FamilyKind::ALL {
            let empty = ctx.empty_priority();
            let total = random_total_extension(&empty, &mut rng);
            let report = narrowing_report(&ctx, &[empty, total], kind, &query);
            assert!(report.is_monotone(), "narrowing violated for {}", kind.label());
        }
    }
}
