//! Key-range splitting for the scatter-gather coordinator experiments.
//!
//! [`key_range_split`] carves one relation instance into `n` contiguous row blocks such
//! that the concatenation of the blocks is the original instance **and no conflict edge
//! crosses a block boundary**. That second property is the soundness contract of
//! [`pdqi_core::ShardPlan`]: with every conflict local to one shard, the global repair
//! product factorises as the cartesian product of per-shard products, which is exactly
//! what the coordinator's merge rules assume.
//!
//! The splitter only places boundaries where the key column strictly increases (so the
//! resulting [`ShardPlan`] routes every existing row back to the block that holds it)
//! and where no conflict edge of any FD spans the cut. Among the admissible cut points
//! it picks the ones nearest to the equal-row-count targets, so shards come out as
//! balanced as the conflict structure allows.

use pdqi_constraints::conflict::fd_conflict_edges;
use pdqi_constraints::FdSet;
use pdqi_core::ShardPlan;
use pdqi_relation::{RelationInstance, Value};
use std::fmt;
use std::sync::Arc;

/// Why an instance could not be split into the requested number of shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSplitError {
    /// The requested shard count was zero.
    ZeroShards,
    /// The named key column does not exist in the instance's schema.
    UnknownKeyColumn {
        /// The requested column name.
        name: String,
    },
    /// The key column's values are not non-decreasing in row order, so contiguous row
    /// blocks would not be key ranges.
    UnsortedKey {
        /// The first out-of-order row index.
        row: usize,
    },
    /// Fewer admissible cut points exist than the split needs: every candidate boundary
    /// either sits inside a run of equal keys or is crossed by a conflict edge.
    NotEnoughBoundaries {
        /// How many admissible cut points the instance has.
        admissible: usize,
        /// How many the requested shard count needs.
        needed: usize,
    },
}

impl fmt::Display for ShardSplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardSplitError::ZeroShards => write!(f, "cannot split into zero shards"),
            ShardSplitError::UnknownKeyColumn { name } => {
                write!(f, "the schema has no column named `{name}`")
            }
            ShardSplitError::UnsortedKey { row } => write!(
                f,
                "key column must be non-decreasing in row order (row {row} breaks the order)"
            ),
            ShardSplitError::NotEnoughBoundaries { admissible, needed } => write!(
                f,
                "only {admissible} admissible cut point(s) exist but the split needs {needed} \
                 (boundaries must separate distinct keys and cross no conflict edge)"
            ),
        }
    }
}

impl std::error::Error for ShardSplitError {}

/// Splits `instance` into `shards` contiguous row blocks by the `key_column`, returning
/// the per-shard instances (in key-range order, sharing the original schema) and the
/// [`ShardPlan`] that routes keys back to them.
///
/// Requirements checked at runtime:
///
/// * the key column exists and its values are **non-decreasing** in row order;
/// * at least `shards - 1` admissible cut points exist — a cut point is a row index
///   where the key strictly increases and which no conflict edge (of any FD in `fds`)
///   spans.
///
/// Boundaries are chosen greedily nearest to the equal-row-count targets
/// `len * k / shards`, so the blocks are as balanced as the conflict structure allows.
/// The returned plan's split values are the first key of each block after the first.
pub fn key_range_split(
    instance: &RelationInstance,
    fds: &FdSet,
    key_column: &str,
    shards: usize,
) -> Result<(Vec<RelationInstance>, ShardPlan), ShardSplitError> {
    if shards == 0 {
        return Err(ShardSplitError::ZeroShards);
    }
    let schema = instance.schema();
    let key_index = schema
        .attr_id(key_column)
        .map_err(|_| ShardSplitError::UnknownKeyColumn { name: key_column.to_string() })?
        .index();

    // Rows in id order; contiguous blocks of this sequence are what shards serve.
    let rows: Vec<Vec<Value>> = instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
    let keys: Vec<&Value> = rows.iter().map(|row| &row[key_index]).collect();
    for (i, pair) in keys.windows(2).enumerate() {
        if pair[0] > pair[1] {
            return Err(ShardSplitError::UnsortedKey { row: i + 1 });
        }
    }

    // A cut at position p (splitting rows [0, p) from [p, len)) is admissible iff the
    // key strictly increases at p — so the ShardPlan routes by range — and no conflict
    // edge spans it — so repair choices stay local to one block.
    let mut crossing = vec![0i64; rows.len() + 1];
    for fd in fds.fds() {
        for (a, b) in fd_conflict_edges(instance, fd) {
            // The edge (a, b) with a < b blocks every cut in (a, b]: mark the range
            // in a difference array, prefix-summed below.
            crossing[a.index() + 1] += 1;
            crossing[b.index() + 1] -= 1;
        }
    }
    let mut spanned = 0i64;
    let admissible: Vec<usize> = (1..rows.len())
        .filter(|&p| {
            spanned += crossing[p];
            spanned == 0 && keys[p - 1] < keys[p]
        })
        .collect();

    let needed = shards - 1;
    if admissible.len() < needed {
        return Err(ShardSplitError::NotEnoughBoundaries { admissible: admissible.len(), needed });
    }

    // Greedy nearest-to-target selection over the sorted admissible list. For target k
    // the usable window is [prev + 1, len - remaining], which always leaves room for
    // the remaining targets, so feasibility is preserved.
    let mut chosen: Vec<usize> = Vec::with_capacity(needed);
    let mut prev_index: Option<usize> = None;
    for k in 0..needed {
        let target = rows.len() * (k + 1) / shards;
        let low = prev_index.map_or(0, |i| i + 1);
        let high = admissible.len() - (needed - k - 1);
        let (best_index, _) = admissible[low..high]
            .iter()
            .enumerate()
            .map(|(offset, &cut)| (low + offset, cut.abs_diff(target)))
            .min_by_key(|&(index, distance)| (distance, index))
            .expect("the feasibility window is non-empty");
        chosen.push(admissible[best_index]);
        prev_index = Some(best_index);
    }

    let mut parts = Vec::with_capacity(shards);
    let mut start = 0usize;
    for &cut in chosen.iter().chain(std::iter::once(&rows.len())) {
        let block = rows[start..cut].to_vec();
        let part = RelationInstance::from_rows(Arc::clone(schema), block)
            .expect("rows of a valid instance re-validate");
        parts.push(part);
        start = cut;
    }

    let splits: Vec<Value> = chosen.iter().map(|&cut| rows[cut][key_index].clone()).collect();
    let plan = ShardPlan::new(schema.name(), key_index, splits)
        .expect("split keys strictly increase by construction");
    Ok((parts, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::multi_chain_instance;

    fn concat_rows(parts: &[RelationInstance]) -> Vec<Vec<Value>> {
        parts
            .iter()
            .flat_map(|part| part.iter().map(|(_, tuple)| tuple.values().to_vec()))
            .collect()
    }

    #[test]
    fn parts_concatenate_back_to_the_original() {
        let (instance, fds) = multi_chain_instance(6, 4);
        for shards in [1usize, 2, 3, 4] {
            let (parts, plan) = key_range_split(&instance, &fds, "A", shards).unwrap();
            assert_eq!(parts.len(), shards, "shards {shards}");
            assert_eq!(plan.shard_count(), shards);
            let original: Vec<Vec<Value>> =
                instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
            assert_eq!(concat_rows(&parts), original, "shards {shards}");
        }
    }

    #[test]
    fn no_conflict_edge_crosses_a_boundary_and_the_plan_routes_rows_home() {
        let (instance, fds) = multi_chain_instance(5, 6);
        let (parts, plan) = key_range_split(&instance, &fds, "A", 3).unwrap();

        // Every row routes (by its key) to the part that physically holds it.
        for (shard, part) in parts.iter().enumerate() {
            for (_, tuple) in part.iter() {
                assert_eq!(plan.shard_of(&tuple.values()[plan.key_column()]), shard);
            }
        }

        // No conflict edge of any FD crosses a block boundary: every edge's endpoints
        // route to the same shard.
        for fd in fds.fds() {
            for (a, b) in fd_conflict_edges(&instance, fd) {
                let key_a = &instance.tuple_unchecked(a).values()[plan.key_column()];
                let key_b = &instance.tuple_unchecked(b).values()[plan.key_column()];
                assert_eq!(plan.shard_of(key_a), plan.shard_of(key_b), "edge {a:?}-{b:?}");
            }
        }
    }

    #[test]
    fn blocks_are_roughly_balanced() {
        let (instance, fds) = multi_chain_instance(8, 4);
        let (parts, _) = key_range_split(&instance, &fds, "A", 4).unwrap();
        // 8 chains of 4 rows over 4 shards: the equal-count targets all fall on chain
        // boundaries, so the greedy split lands exactly on 2 chains per shard.
        assert_eq!(parts.iter().map(RelationInstance::len).collect::<Vec<_>>(), [8, 8, 8, 8]);
    }

    #[test]
    fn impossible_splits_are_reported() {
        let (instance, fds) = multi_chain_instance(2, 4);
        // Only one chain boundary exists, so three shards cannot be cut.
        assert!(matches!(
            key_range_split(&instance, &fds, "A", 3),
            Err(ShardSplitError::NotEnoughBoundaries { needed: 2, .. })
        ));
        assert!(matches!(
            key_range_split(&instance, &fds, "A", 0),
            Err(ShardSplitError::ZeroShards)
        ));
        assert!(matches!(
            key_range_split(&instance, &fds, "Z", 2),
            Err(ShardSplitError::UnknownKeyColumn { .. })
        ));
        // The B column alternates 0/1 — not non-decreasing.
        assert!(matches!(
            key_range_split(&instance, &fds, "B", 2),
            Err(ShardSplitError::UnsortedKey { .. })
        ));
    }
}
