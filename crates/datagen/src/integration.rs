//! Scaled-up versions of the paper's Example 1 integration scenario.
//!
//! The generator produces a manager relation `Mgr(Name, Dept, Salary, Reports)` with the
//! two key dependencies of the paper (`Dept → …` and `Name → …`) and several sources of
//! varying reliability that disagree about who manages which department and at what
//! salary. Knobs: number of departments, number of sources and the probability that a
//! source reassigns a department to a different manager.

use std::sync::Arc;

use pdqi_constraints::FdSet;
use pdqi_priority::SourceOrder;
use pdqi_relation::{RelationSchema, Value, ValueType};
use rand::Rng;

/// A generated multi-source integration scenario.
pub struct IntegrationScenario {
    /// The relation schema (`Mgr`).
    pub schema: Arc<RelationSchema>,
    /// The two key dependencies of the paper's Example 1.
    pub fds: FdSet,
    /// One batch of rows per source, in reliability order (first = most reliable).
    pub sources: Vec<(String, Vec<Vec<Value>>)>,
    /// The reliability order: earlier sources are strictly more reliable than later ones
    /// (consecutive pairs only, so the order is partial after transitive closure).
    pub reliability: SourceOrder,
}

impl IntegrationScenario {
    /// Generates a scenario with `departments` departments and `num_sources` sources.
    /// Each source reports a manager for every department; with probability
    /// `disagreement` it reports a different manager (and salary) than the reference
    /// assignment, creating conflicts on both key dependencies.
    pub fn generate<R: Rng>(
        departments: usize,
        num_sources: usize,
        disagreement: f64,
        rng: &mut R,
    ) -> Self {
        assert!(num_sources >= 1, "at least one source is required");
        assert!((0.0..=1.0).contains(&disagreement), "disagreement must be in [0, 1]");
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let fds = FdSet::parse(
            Arc::clone(&schema),
            &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"],
        )
        .unwrap();
        let mut sources = Vec::with_capacity(num_sources);
        let mut reliability = SourceOrder::new();
        for s in 0..num_sources {
            let name = format!("s{}", s + 1);
            if s + 1 < num_sources {
                reliability.prefer(name.clone(), format!("s{}", s + 2));
            }
            let mut rows = Vec::with_capacity(departments);
            for d in 0..departments {
                // The reference assignment puts manager `m<d>` in department `d<d>`.
                let disagrees = s > 0 && rng.gen_bool(disagreement);
                let manager = if disagrees {
                    // Borrow the manager of a neighbouring department: violates both FDs.
                    format!("m{}", (d + 1) % departments)
                } else {
                    format!("m{d}")
                };
                let salary = if disagrees { rng.gen_range(10..100) } else { 50 + d as i64 };
                rows.push(vec![
                    Value::name(&manager),
                    Value::name(&format!("d{d}")),
                    Value::int(salary),
                    Value::int(rng.gen_range(1..10)),
                ]);
            }
            sources.push((name, rows));
        }
        IntegrationScenario { schema, fds, sources, reliability }
    }

    /// All rows of all sources, flattened (the integrated instance's content).
    pub fn all_rows(&self) -> Vec<Vec<Value>> {
        self.sources.iter().flat_map(|(_, rows)| rows.iter().cloned()).collect()
    }

    /// The source name of every flattened row, aligned with [`IntegrationScenario::all_rows`].
    pub fn row_sources(&self) -> Vec<String> {
        self.sources
            .iter()
            .flat_map(|(name, rows)| std::iter::repeat_n(name.clone(), rows.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::ConflictGraph;
    use pdqi_relation::RelationInstance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn a_single_source_scenario_is_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        let scenario = IntegrationScenario::generate(10, 1, 0.5, &mut rng);
        let instance =
            RelationInstance::from_rows(Arc::clone(&scenario.schema), scenario.all_rows()).unwrap();
        assert!(pdqi_constraints::is_consistent(&instance, &scenario.fds));
    }

    #[test]
    fn disagreement_creates_conflicts() {
        let mut rng = StdRng::seed_from_u64(3);
        let scenario = IntegrationScenario::generate(20, 3, 0.8, &mut rng);
        let instance =
            RelationInstance::from_rows(Arc::clone(&scenario.schema), scenario.all_rows()).unwrap();
        let graph = ConflictGraph::build(&instance, &scenario.fds);
        assert!(graph.edge_count() > 0);
        // Row/source alignment is preserved.
        assert_eq!(scenario.all_rows().len(), scenario.row_sources().len());
    }

    #[test]
    fn reliability_order_follows_source_index() {
        let mut rng = StdRng::seed_from_u64(3);
        let scenario = IntegrationScenario::generate(5, 3, 0.5, &mut rng);
        assert!(scenario.reliability.is_better("s1", "s3"));
        assert!(!scenario.reliability.is_better("s3", "s1"));
    }
}
