//! Random 3-CNF generators for the hardness-reduction experiments.
//!
//! Experiment E6 shows the exponential worst-case behaviour of the co-NP-hard decisions
//! on instances produced by the 3-SAT reduction of [`pdqi_solve::reductions`]. The
//! classic hard region for random 3-SAT lies around a clause-to-variable ratio of ~4.26;
//! the generator takes the ratio as a knob.

use pdqi_solve::{CnfFormula, Lit};
use rand::seq::SliceRandom;
use rand::Rng;

/// A random 3-CNF formula over `variables` variables with `clauses` clauses, each over
/// three *distinct* variables with independent random polarities (the shape required by
/// the CQA reduction).
pub fn random_3cnf<R: Rng>(variables: usize, clauses: usize, rng: &mut R) -> CnfFormula {
    assert!(variables >= 3, "three distinct variables per clause require at least 3 variables");
    let mut formula = CnfFormula::new(variables);
    let mut pool: Vec<usize> = (0..variables).collect();
    for _ in 0..clauses {
        pool.shuffle(rng);
        let clause =
            pool[..3].iter().map(|&var| Lit { var, positive: rng.gen_bool(0.5) }).collect();
        formula.add_clause(clause);
    }
    formula
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_solve::cqa_instance_from_3sat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clauses_have_three_distinct_variables() {
        let mut rng = StdRng::seed_from_u64(21);
        let formula = random_3cnf(10, 40, &mut rng);
        assert_eq!(formula.num_clauses(), 40);
        for clause in formula.clauses() {
            assert_eq!(clause.len(), 3);
            let distinct: std::collections::BTreeSet<_> = clause.iter().map(|l| l.var).collect();
            assert_eq!(distinct.len(), 3);
        }
        // The formulas feed the reduction without panicking.
        let _ = cqa_instance_from_3sat(&formula);
    }

    #[test]
    fn low_ratio_formulas_tend_to_be_satisfiable() {
        let mut rng = StdRng::seed_from_u64(22);
        let formula = random_3cnf(20, 20, &mut rng);
        assert!(formula.solve().is_sat());
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let a = random_3cnf(8, 30, &mut StdRng::seed_from_u64(5));
        let b = random_3cnf(8, 30, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.clauses(), b.clauses());
    }
}
