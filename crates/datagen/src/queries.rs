//! Query-workload generators.
//!
//! Fig. 5 distinguishes the complexity of consistent query answering by query class:
//! {∀,∃}-free (ground) queries vs. conjunctive queries. These generators produce both
//! kinds over a given instance, biased towards queries that actually touch existing
//! tuples so the benchmarks exercise the interesting code paths.

use pdqi_query::builder::{and_all, atom, exists, not, or, var};
use pdqi_query::{Formula, Term};
use pdqi_relation::{RelationInstance, TupleId, Value};
use rand::Rng;

/// A random **ground** query: a Boolean combination (conjunctions, disjunctions and a few
/// negations) of `literals` ground atoms drawn from the instance's tuples.
pub fn random_ground_query<R: Rng>(
    instance: &RelationInstance,
    literals: usize,
    rng: &mut R,
) -> Formula {
    assert!(!instance.is_empty(), "the instance must contain at least one tuple");
    assert!(literals >= 1, "at least one literal is required");
    let mut formula: Option<Formula> = None;
    for _ in 0..literals {
        let id = TupleId(rng.gen_range(0..instance.len()) as u32);
        let tuple = instance.tuple_unchecked(id);
        let ground_atom = atom(
            instance.schema().name(),
            tuple.values().iter().cloned().map(Term::Const).collect(),
        );
        let literal = if rng.gen_bool(0.3) { not(ground_atom) } else { ground_atom };
        formula = Some(match formula {
            None => literal,
            Some(previous) => {
                if rng.gen_bool(0.5) {
                    or(previous, literal)
                } else {
                    pdqi_query::builder::and(previous, literal)
                }
            }
        });
    }
    formula.expect("at least one literal was generated")
}

/// A random **conjunctive** query: `atoms` existentially quantified atoms over the
/// instance's relation, sharing a join variable on the first attribute, with constants
/// sampled from existing tuples for roughly half of the remaining positions.
pub fn random_conjunctive_query<R: Rng>(
    instance: &RelationInstance,
    atoms: usize,
    rng: &mut R,
) -> Formula {
    assert!(!instance.is_empty(), "the instance must contain at least one tuple");
    assert!(atoms >= 1, "at least one atom is required");
    let arity = instance.schema().arity();
    let mut vars: Vec<String> = vec!["j".to_string()];
    let mut conjuncts = Vec::with_capacity(atoms);
    for a in 0..atoms {
        let id = TupleId(rng.gen_range(0..instance.len()) as u32);
        let sample = instance.tuple_unchecked(id);
        let mut args: Vec<Term> = Vec::with_capacity(arity);
        for position in 0..arity {
            if position == 0 {
                // The join variable links all atoms on the first attribute.
                args.push(var("j"));
            } else if rng.gen_bool(0.5) {
                args.push(Term::Const(sample.values()[position].clone()));
            } else {
                let name = format!("x{a}_{position}");
                vars.push(name.clone());
                args.push(var(&name));
            }
        }
        conjuncts.push(atom(instance.schema().name(), args));
    }
    let var_refs: Vec<&str> = vars.iter().map(String::as_str).collect();
    exists(&var_refs, and_all(conjuncts))
}

/// A ground query guaranteed to mention the given values as one positive atom (useful
/// when a benchmark needs a query with a known answer).
pub fn ground_atom_query(instance: &RelationInstance, values: Vec<Value>) -> Formula {
    atom(instance.schema().name(), values.into_iter().map(Term::Const).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::example4_instance;
    use pdqi_query::classify::{is_conjunctive, is_quantifier_free};
    use pdqi_query::Evaluator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ground_queries_are_ground_and_evaluable() {
        let (instance, _) = example4_instance(6);
        let mut rng = StdRng::seed_from_u64(11);
        for literals in 1..6 {
            let query = random_ground_query(&instance, literals, &mut rng);
            assert!(is_quantifier_free(&query));
            assert!(query.free_vars().is_empty());
            Evaluator::with_relation(&instance).eval_closed(&query).unwrap();
        }
    }

    #[test]
    fn conjunctive_queries_are_conjunctive_closed_and_evaluable() {
        let (instance, _) = example4_instance(6);
        let mut rng = StdRng::seed_from_u64(12);
        for atoms in 1..5 {
            let query = random_conjunctive_query(&instance, atoms, &mut rng);
            assert!(is_conjunctive(&query));
            assert!(query.is_closed());
            Evaluator::with_relation(&instance).eval_closed(&query).unwrap();
        }
    }

    #[test]
    fn ground_atom_queries_hold_on_their_tuple() {
        let (instance, _) = example4_instance(2);
        let query = ground_atom_query(&instance, vec![Value::int(0), Value::int(1)]);
        assert!(Evaluator::with_relation(&instance).eval_closed(&query).unwrap());
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let (instance, _) = example4_instance(4);
        let a = random_conjunctive_query(&instance, 3, &mut StdRng::seed_from_u64(9));
        let b = random_conjunctive_query(&instance, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
