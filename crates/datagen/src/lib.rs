//! Synthetic workload generators for the `pdqi` experiments.
//!
//! The paper is a theory paper: it reports complexity classes, not measurements. To turn
//! its Fig. 5 into empirical scaling experiments the benchmark harness needs families of
//! instances whose *shape* is controlled:
//!
//! * [`synthetic`] — the paper's own shapes: Example 4's `2ⁿ`-repair instances, Example
//!   8-style duplicate-heavy one-FD instances, Example 9-style conflict chains, and random
//!   two-FD instances with a tunable conflict rate,
//! * [`integration`] — scaled-up versions of the Example 1 multi-source integration
//!   scenario (managers, departments, conflicting sources),
//! * [`priorities`] — random priorities with a completeness knob `p ∈ [0, 1]` (fraction
//!   of conflict edges oriented), plus total priorities,
//! * [`queries`] — ground and conjunctive query workloads over the generated instances,
//! * [`sat_instances`] — random 3-CNF formulas feeding the hardness reduction of
//!   [`pdqi_solve::reductions`],
//! * [`shard`] — key-range splitting of one instance into per-shard blocks whose
//!   boundaries no conflict edge crosses, for the scatter-gather coordinator
//!   experiments,
//! * [`trace`] — interleaved query/revision streams for the swap-under-load serving
//!   experiments (snapshot registry + network front end), and interleaved
//!   insert/delete/query streams for the incremental delta-maintenance experiments.
//!
//! All generators are deterministic given a seed (`StdRng`), so every experiment is
//! reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod integration;
pub mod priorities;
pub mod queries;
pub mod sat_instances;
pub mod shard;
pub mod synthetic;
pub mod trace;

pub use integration::IntegrationScenario;
pub use priorities::{random_priority, random_total_priority};
pub use queries::{random_conjunctive_query, random_ground_query};
pub use sat_instances::random_3cnf;
pub use shard::{key_range_split, ShardSplitError};
pub use synthetic::{
    chain_instance, duplicate_instance, example4_instance, multi_chain_instance,
    multi_chain_relations, random_conflict_instance, skewed_chain_instance,
};
pub use trace::{
    mutation_trace, revision_trace, MutationEvent, MutationTrace, RevisionTrace, TraceEvent,
};
