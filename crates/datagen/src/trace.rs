//! Serving traces: interleaved streams of queries and priority revisions.
//!
//! The serving architecture (snapshot registry + network front end) is exercised by a
//! workload the other generators do not produce: **queries racing revisions**. A
//! [`revision_trace`] builds a [`multi_chain_instance`]
//! and a deterministic event stream over it, where most events execute a query from a
//! small recurring pool (serving workloads repeat — that is what the answer memo is
//! for) and every `revision_every`-th event publishes a revised priority. Replaying the
//! stream against a `SnapshotRegistry` — queries on serving threads, revisions through
//! `revise`/`with_priority_revalidated` — is exactly the swap-under-load shape the
//! `e16_serving` bench and the serving tests pin down.
//!
//! [`mutation_trace`] is the incremental-maintenance analogue: the same recurring
//! query pool, but every k-th event **inserts or deletes rows** instead of revising
//! the priority. Replaying it — queries on serving threads, mutations through
//! `SnapshotRegistry::apply`/`EngineSnapshot::with_mutations` — drives the delta
//! subsystem the `e17_incremental` bench and the `incremental` tests pin down.

use pdqi_constraints::FdSet;
use pdqi_relation::{RelationInstance, TupleId, Value};
use rand::Rng;

use crate::synthetic::multi_chain_instance;

/// One event of a serving trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Execute this query (text for `PreparedQuery::parse`, or `PREPARE`/`EXEC` over
    /// the wire).
    Query(String),
    /// Publish a priority built from these explicit `winner ≻ loser` pairs (every pair
    /// is a conflict edge of the trace's instance, and the orientation is acyclic).
    Revision(Vec<(TupleId, TupleId)>),
}

/// A serving workload: the instance, its FDs, and the interleaved event stream.
#[derive(Debug, Clone)]
pub struct RevisionTrace {
    /// The relation the trace runs against (`chains` independent conflict chains).
    pub instance: RelationInstance,
    /// Its functional dependencies (`A -> B`, `C -> D`).
    pub fds: FdSet,
    /// `events` entries; every `revision_every`-th is a [`TraceEvent::Revision`].
    pub events: Vec<TraceEvent>,
}

/// Builds an interleaved query/revision stream over a `chains × length` multi-chain
/// instance: `events` events, of which every `revision_every`-th is a priority
/// revision re-orienting the conflict edges of one randomly chosen chain (revisions
/// therefore invalidate exactly one component's memo entries, the incremental-swap
/// shape `with_priority_revalidated` is built for). Queries are drawn from a pool of
/// 8 recurring texts so answer-memo hits occur like they would in a serving workload.
///
/// Deterministic given the `rng` seed, like every generator in this crate.
pub fn revision_trace<R: Rng>(
    chains: usize,
    length: usize,
    events: usize,
    revision_every: usize,
    rng: &mut R,
) -> RevisionTrace {
    assert!(chains >= 1 && length >= 2, "need at least one chain of at least two tuples");
    assert!(revision_every >= 2, "a trace needs query events between revisions");
    let (instance, fds) = multi_chain_instance(chains, length);
    let name = instance.schema().name().to_string();

    // The recurring query pool: open projections plus ground probes of stored tuples.
    let mut pool =
        vec![format!("EXISTS b,c,d . {name}(x,b,c,d)"), format!("EXISTS a,c,d . {name}(a,x,c,d)")];
    while pool.len() < 8 {
        let id = TupleId(rng.gen_range(0..instance.len()) as u32);
        let tuple = instance.tuple_unchecked(id);
        let values: Vec<String> = tuple.values().iter().map(|v| v.to_string()).collect();
        pool.push(format!("{name}({})", values.join(",")));
    }

    // Priority state: one orientation bit per (chain, edge), re-rolled per revision for
    // one chain. The emitted pairs always cover every chain, so each revision replaces
    // the full priority while *changing* only the chosen chain's component.
    let mut orientations: Vec<Vec<bool>> =
        (0..chains).map(|_| (0..length - 1).map(|_| rng.gen_bool(0.5)).collect()).collect();
    let emit_pairs = |orientations: &[Vec<bool>]| -> Vec<(TupleId, TupleId)> {
        let mut pairs = Vec::new();
        for (chain, bits) in orientations.iter().enumerate() {
            let offset = chain * length;
            for (i, &forward) in bits.iter().enumerate() {
                let a = TupleId((offset + i) as u32);
                let b = TupleId((offset + i + 1) as u32);
                // A path's edges can be oriented freely: no underlying cycle exists, so
                // the priority is acyclic by construction.
                pairs.push(if forward { (a, b) } else { (b, a) });
            }
        }
        pairs
    };

    let mut trace_events = Vec::with_capacity(events);
    for event in 0..events {
        if event % revision_every == revision_every - 1 {
            let chain = rng.gen_range(0..chains);
            for bit in &mut orientations[chain] {
                *bit = rng.gen_bool(0.5);
            }
            trace_events.push(TraceEvent::Revision(emit_pairs(&orientations)));
        } else {
            let pick = rng.gen_range(0..pool.len());
            trace_events.push(TraceEvent::Query(pool[pick].clone()));
        }
    }
    RevisionTrace { instance, fds, events: trace_events }
}

/// One event of a mutation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationEvent {
    /// Execute this query (text for `PreparedQuery::parse`, or `PREPARE`/`EXEC` over
    /// the wire).
    Query(String),
    /// Insert these rows (each conflicts with an existing chain, growing — or
    /// re-bridging — its component).
    Insert(Vec<Vec<Value>>),
    /// Delete these rows by value (each targets a row stored at this point of the
    /// trace; deleting a chain-interior tuple splits its component).
    Delete(Vec<Vec<Value>>),
}

/// A mutation workload: the initial instance, its FDs, and the interleaved event
/// stream. Folding the inserts/deletes over the initial rows yields the row list the
/// instance holds after any prefix of the trace.
#[derive(Debug, Clone)]
pub struct MutationTrace {
    /// The initial relation (`chains` independent conflict chains).
    pub instance: RelationInstance,
    /// Its functional dependencies (`A -> B`, `C -> D`).
    pub fds: FdSet,
    /// `events` entries; every `mutate_every`-th is an insert or delete.
    pub events: Vec<MutationEvent>,
}

/// Builds an interleaved insert/delete/query stream over a `chains × length`
/// multi-chain instance — the incremental-maintenance analogue of [`revision_trace`].
/// Every `mutate_every`-th event is a mutation, alternating:
///
/// * **inserts** pick a stored row and add a fresh tuple sharing its `A` key with a
///   new `B` value, so the new tuple conflicts with everything in that `A`-group —
///   the affected chain component grows (or, after an earlier split, re-merges);
/// * **deletes** remove a row stored *at that point of the trace* — deleting a
///   chain-interior tuple splits its component in two.
///
/// All other events execute a query from a pool of 8 recurring texts (serving
/// workloads repeat; that is what the answer memo is for). Deterministic given the
/// `rng` seed, like every generator in this crate.
pub fn mutation_trace<R: Rng>(
    chains: usize,
    length: usize,
    events: usize,
    mutate_every: usize,
    rng: &mut R,
) -> MutationTrace {
    assert!(chains >= 1 && length >= 2, "need at least one chain of at least two tuples");
    assert!(mutate_every >= 2, "a trace needs query events between mutations");
    let (instance, fds) = multi_chain_instance(chains, length);
    let name = instance.schema().name().to_string();

    // The recurring query pool: open projections plus ground probes of stored tuples
    // (probed tuples may later be deleted — the query stays valid, its answer changes).
    let mut pool =
        vec![format!("EXISTS b,c,d . {name}(x,b,c,d)"), format!("EXISTS a,c,d . {name}(a,x,c,d)")];
    while pool.len() < 8 {
        let id = TupleId(rng.gen_range(0..instance.len()) as u32);
        let tuple = instance.tuple_unchecked(id);
        let values: Vec<String> = tuple.values().iter().map(|v| v.to_string()).collect();
        pool.push(format!("{name}({})", values.join(",")));
    }

    // Shadow row state, so deletes always target rows stored at that trace position.
    let mut rows: Vec<Vec<Value>> =
        instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
    // Fresh B/C values for inserted tuples: B outside {0, 1} makes the new tuple
    // conflict with every stored tuple of its A-group; a fresh C keeps the second FD
    // out of the picture.
    let mut fresh = 0i64;

    let mut trace_events = Vec::with_capacity(events);
    let mut mutations = 0usize;
    for event in 0..events {
        if event % mutate_every != mutate_every - 1 {
            let pick = rng.gen_range(0..pool.len());
            trace_events.push(MutationEvent::Query(pool[pick].clone()));
            continue;
        }
        mutations += 1;
        // Alternate inserts and deletes, but never shrink below two rows.
        if mutations % 2 == 1 || rows.len() <= 2 {
            let anchor = rows[rng.gen_range(0..rows.len())].clone();
            fresh += 1;
            let row = vec![
                anchor[0].clone(),
                Value::int(100 + fresh),
                Value::int(2_000_000 + fresh),
                Value::int(0),
            ];
            rows.push(row.clone());
            trace_events.push(MutationEvent::Insert(vec![row]));
        } else {
            let victim = rows.swap_remove(rng.gen_range(0..rows.len()));
            trace_events.push(MutationEvent::Delete(vec![victim]));
        }
    }
    MutationTrace { instance, fds, events: trace_events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn traces_are_deterministic_and_interleave_on_schedule() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let first = revision_trace(4, 6, 40, 5, &mut a);
        let second = revision_trace(4, 6, 40, 5, &mut b);
        assert_eq!(first.events, second.events);
        assert_eq!(first.events.len(), 40);
        for (index, event) in first.events.iter().enumerate() {
            let is_revision = matches!(event, TraceEvent::Revision(_));
            assert_eq!(is_revision, index % 5 == 4, "event {index}");
        }
    }

    #[test]
    fn mutation_traces_are_deterministic_and_replayable() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let first = mutation_trace(4, 6, 60, 4, &mut a);
        let second = mutation_trace(4, 6, 60, 4, &mut b);
        assert_eq!(first.events, second.events);
        assert_eq!(first.events.len(), 60);

        // Replay the shadow state: every delete targets a row stored at that point,
        // every insert is schema-valid and conflicts with an existing A-group, and the
        // mutation schedule holds.
        let mut rows: Vec<Vec<Value>> =
            first.instance.iter().map(|(_, tuple)| tuple.values().to_vec()).collect();
        let mut mutations = 0;
        for (index, event) in first.events.iter().enumerate() {
            let is_mutation = !matches!(event, MutationEvent::Query(_));
            assert_eq!(is_mutation, index % 4 == 3, "event {index}");
            match event {
                MutationEvent::Query(text) => {
                    pdqi_query::parse_formula(text).expect("trace queries parse");
                }
                MutationEvent::Insert(inserted) => {
                    mutations += 1;
                    for row in inserted {
                        assert_eq!(row.len(), 4);
                        assert!(
                            rows.iter().any(|stored| stored[0] == row[0]),
                            "inserts anchor to a stored A-group"
                        );
                        rows.push(row.clone());
                    }
                }
                MutationEvent::Delete(deleted) => {
                    mutations += 1;
                    for row in deleted {
                        let position = rows
                            .iter()
                            .position(|stored| stored == row)
                            .expect("deletes target stored rows");
                        rows.swap_remove(position);
                    }
                }
            }
        }
        assert_eq!(mutations, 15);
        assert!(rows.len() >= 2);
    }

    #[test]
    fn revision_pairs_are_installable_priorities_and_queries_parse() {
        use pdqi_query::parse_formula;
        let mut rng = StdRng::seed_from_u64(11);
        let trace = revision_trace(3, 5, 30, 3, &mut rng);
        let graph = std::sync::Arc::new(pdqi_constraints::ConflictGraph::build(
            &trace.instance,
            &trace.fds,
        ));
        let mut revisions = 0;
        for event in &trace.events {
            match event {
                TraceEvent::Query(text) => {
                    parse_formula(text).expect("trace queries parse");
                }
                TraceEvent::Revision(pairs) => {
                    revisions += 1;
                    // Every revision covers all chain edges and installs cleanly.
                    assert_eq!(pairs.len(), 3 * 4);
                    pdqi_priority::Priority::from_pairs(std::sync::Arc::clone(&graph), pairs)
                        .expect("trace revisions are valid priorities");
                }
            }
        }
        assert_eq!(revisions, 10);
    }
}
