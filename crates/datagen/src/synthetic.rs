//! Instance generators shaped after the paper's examples.

use std::sync::Arc;

use pdqi_constraints::FdSet;
use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
use rand::Rng;

fn ab_schema() -> Arc<RelationSchema> {
    Arc::new(
        RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)]).unwrap(),
    )
}

fn abc_schema() -> Arc<RelationSchema> {
    Arc::new(
        RelationSchema::from_pairs(
            "R",
            &[("A", ValueType::Int), ("B", ValueType::Int), ("C", ValueType::Int)],
        )
        .unwrap(),
    )
}

fn abcd_schema_named(name: &str) -> Arc<RelationSchema> {
    Arc::new(
        RelationSchema::from_pairs(
            name,
            &[
                ("A", ValueType::Int),
                ("B", ValueType::Int),
                ("C", ValueType::Int),
                ("D", ValueType::Int),
            ],
        )
        .unwrap(),
    )
}

fn abcd_schema() -> Arc<RelationSchema> {
    abcd_schema_named("R")
}

/// Example 4: `r_n = {(i, 0), (i, 1) | i < n}` with the FD `A → B`; the instance has
/// exactly `2ⁿ` repairs (one independent binary choice per key value).
pub fn example4_instance(n: usize) -> (RelationInstance, FdSet) {
    let schema = ab_schema();
    let mut rows = Vec::with_capacity(2 * n);
    for i in 0..n {
        rows.push(vec![Value::int(i as i64), Value::int(0)]);
        rows.push(vec![Value::int(i as i64), Value::int(1)]);
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    (instance, fds)
}

/// Example 8-style duplicate-heavy instances: `groups` key values, each with
/// `duplicates` tuples sharing the same `B`-value plus one tuple with a different
/// `B`-value (and a distinguishing `C`). The FD is the non-key dependency `A → B`.
pub fn duplicate_instance(groups: usize, duplicates: usize) -> (RelationInstance, FdSet) {
    let schema = abc_schema();
    let mut rows = Vec::new();
    for g in 0..groups {
        for d in 0..duplicates {
            rows.push(vec![Value::int(g as i64), Value::int(0), Value::int(d as i64)]);
        }
        rows.push(vec![Value::int(g as i64), Value::int(1), Value::int(duplicates as i64)]);
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
    (instance, fds)
}

/// Example 9-style conflict chains: `length` tuples forming a path in the conflict graph,
/// alternating between violations of `A → B` and violations of `C → D`.
pub fn chain_instance(length: usize) -> (RelationInstance, FdSet) {
    let schema = abcd_schema();
    let mut rows = Vec::with_capacity(length);
    for i in 0..length {
        // Consecutive tuples 2k, 2k+1 share the A-value k (violating A → B through
        // distinct B); consecutive tuples 2k+1, 2k+2 share the C-value k (violating
        // C → D through distinct D). All other values are unique.
        let a = (i / 2) as i64;
        let b = (i % 2) as i64;
        let c = i.div_ceil(2) as i64 + 1_000_000;
        let d = ((i + 1) % 2) as i64;
        rows.push(vec![Value::int(a), Value::int(b), Value::int(c), Value::int(d)]);
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = FdSet::parse(schema, &["A -> B", "C -> D"]).unwrap();
    (instance, fds)
}

/// Many independent conflict chains: `chains` disjoint copies of [`chain_instance`]'s
/// path, each over its own key space, inside one relation. The conflict graph has
/// exactly `chains` non-trivial connected components (each a path of `length` tuples),
/// which makes this the canonical workload for component-parallel execution: per-chain
/// preferred-repair enumeration is sizeable (a path of `n` vertices has
/// Fibonacci-many maximal independent sets) and the components are embarrassingly
/// independent.
pub fn multi_chain_instance(chains: usize, length: usize) -> (RelationInstance, FdSet) {
    named_multi_chain_instance("R", chains, length)
}

fn named_multi_chain_instance(
    name: &str,
    chains: usize,
    length: usize,
) -> (RelationInstance, FdSet) {
    let schema = abcd_schema_named(name);
    let mut rows = Vec::with_capacity(chains * length);
    // Per-chain offsets keep the A- and C-key spaces of different chains disjoint, so
    // no conflict edge ever crosses chains.
    let stride = (length + 2) as i64;
    for chain in 0..chains {
        for i in 0..length {
            let a = chain as i64 * stride + (i / 2) as i64;
            let b = (i % 2) as i64;
            let c = 1_000_000 + chain as i64 * stride + i.div_ceil(2) as i64;
            let d = ((i + 1) % 2) as i64;
            rows.push(vec![Value::int(a), Value::int(b), Value::int(c), Value::int(d)]);
        }
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = FdSet::parse(schema, &["A -> B", "C -> D"]).unwrap();
    (instance, fds)
}

/// A **skewed-shard** workload: `chains` independent conflict chains whose lengths decay
/// geometrically from `max_length` down to 2 (chain `i` has `max(2, max_length >> i)`
/// tuples). The conflict graph has exactly `chains` non-trivial components of wildly
/// different sizes, so per-component preferred-repair counts — and with them the chunks
/// of the adaptive repair-product split and the shard plan of the sharded builder — are
/// heavily skewed: the canonical adversary for work-stealing schedulers that assume
/// uniform components.
pub fn skewed_chain_instance(chains: usize, max_length: usize) -> (RelationInstance, FdSet) {
    assert!(max_length >= 2, "chains need at least 2 tuples to conflict");
    let schema = abcd_schema();
    let mut rows = Vec::new();
    // Offsets keyed off the *maximum* length keep every chain's A- and C-key spaces
    // disjoint regardless of its own length.
    let stride = (max_length + 2) as i64;
    for chain in 0..chains {
        // checked_shr: `>>` with a shift ≥ the bit width panics in debug and wraps in
        // release, which would hand chains past 64 their full length again.
        let length = max_length.checked_shr(chain as u32).unwrap_or(0).max(2);
        for i in 0..length {
            let a = chain as i64 * stride + (i / 2) as i64;
            let b = (i % 2) as i64;
            let c = 1_000_000 + chain as i64 * stride + i.div_ceil(2) as i64;
            let d = ((i + 1) % 2) as i64;
            rows.push(vec![Value::int(a), Value::int(b), Value::int(c), Value::int(d)]);
        }
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = FdSet::parse(schema, &["A -> B", "C -> D"]).unwrap();
    (instance, fds)
}

/// `relations` disjoint copies of [`multi_chain_instance`], each under its own schema
/// name (`R0`, `R1`, …) — the multi-relation workload of the sharded snapshot builder,
/// whose build stages fan out per `(relation, FD)` and per relation.
pub fn multi_chain_relations(
    relations: usize,
    chains: usize,
    length: usize,
) -> Vec<(RelationInstance, FdSet)> {
    (0..relations)
        .map(|index| named_multi_chain_instance(&format!("R{index}"), chains, length))
        .collect()
}

/// Random two-FD instances with a tunable conflict rate: `n` tuples over `R(A,B,C)` with
/// FDs `A → B` and `C → B`. Key values are drawn from a pool whose size controls how many
/// tuples collide; `conflict_rate ∈ [0, 1]` is the approximate fraction of tuples that
/// share a key value with some other tuple.
pub fn random_conflict_instance<R: Rng>(
    n: usize,
    conflict_rate: f64,
    rng: &mut R,
) -> (RelationInstance, FdSet) {
    assert!((0.0..=1.0).contains(&conflict_rate), "conflict_rate must be in [0, 1]");
    let schema = abc_schema();
    let mut rows = Vec::with_capacity(n);
    // Conflicting tuples draw their A-value from a small pool (pairs of tuples per value
    // on average); the rest get unique A-values. B is a coin flip so tuples sharing a key
    // conflict roughly half the time; C plays the same game for the second FD.
    let colliding = ((n as f64) * conflict_rate) as usize;
    let pool = (colliding / 2).max(1) as i64;
    for i in 0..n {
        let a = if i < colliding { rng.gen_range(0..pool) } else { 1_000_000 + i as i64 };
        let c =
            if i < colliding { 2_000_000 + rng.gen_range(0..pool) } else { 3_000_000 + i as i64 };
        let b = rng.gen_range(0..2i64);
        rows.push(vec![Value::int(a), Value::int(b), Value::int(c)]);
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
    let fds = FdSet::parse(schema, &["A -> B", "C -> B"]).unwrap();
    (instance, fds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::ConflictGraph;
    use pdqi_core::RepairContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn example4_has_two_to_the_n_repairs() {
        for n in [1usize, 5, 9] {
            let (instance, fds) = example4_instance(n);
            assert_eq!(instance.len(), 2 * n);
            let ctx = RepairContext::new(instance, fds);
            assert_eq!(ctx.count_repairs(), 1u128 << n);
        }
    }

    #[test]
    fn duplicate_instances_have_the_example_8_shape() {
        let (instance, fds) = duplicate_instance(3, 4);
        assert_eq!(instance.len(), 3 * 5);
        let graph = ConflictGraph::build(&instance, &fds);
        // Each group is a star: the odd tuple conflicts with each of the 4 duplicates.
        assert_eq!(graph.edge_count(), 3 * 4);
        assert_eq!(graph.max_degree(), 4);
        // Per group: either the duplicates (1 repair) or the odd tuple (1 repair) ⇒ 2 each.
        let ctx = RepairContext::new(instance, fds);
        assert_eq!(ctx.count_repairs(), 8);
    }

    #[test]
    fn multi_chain_instances_have_one_component_per_chain() {
        let (instance, fds) = multi_chain_instance(8, 6);
        assert_eq!(instance.len(), 48);
        let ctx = RepairContext::new(instance, fds);
        let components: Vec<_> =
            ctx.graph().connected_components().into_iter().filter(|c| c.len() >= 2).collect();
        assert_eq!(components.len(), 8);
        assert!(components.iter().all(|c| c.len() == 6));
        // Each chain is a path: same repair count per component as chain_instance.
        let (single, single_fds) = chain_instance(6);
        let single_ctx = RepairContext::new(single, single_fds);
        let per_chain = single_ctx.count_repairs();
        assert_eq!(ctx.count_repairs(), per_chain.pow(8));
    }

    #[test]
    fn skewed_chains_have_geometrically_decaying_components() {
        let (instance, fds) = skewed_chain_instance(4, 16);
        // Lengths 16, 8, 4, 2.
        assert_eq!(instance.len(), 30);
        let ctx = RepairContext::new(instance, fds);
        let mut sizes: Vec<usize> = ctx
            .graph()
            .connected_components()
            .into_iter()
            .filter(|c| c.len() >= 2)
            .map(|c| c.len())
            .collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4, 8, 16]);
        // Short chains floor at 2 tuples, so every requested chain exists — including
        // past the 64-chain shift width, where a plain `>>` would overflow (debug) or
        // wrap back to the full length (release).
        for chains in [8usize, 70] {
            let (deep, deep_fds) = skewed_chain_instance(chains, 16);
            let deep_ctx = RepairContext::new(deep, deep_fds);
            let components: Vec<_> = deep_ctx
                .graph()
                .connected_components()
                .into_iter()
                .filter(|c| c.len() >= 2)
                .collect();
            assert_eq!(components.len(), chains, "chains {chains}");
            assert!(components.iter().filter(|c| c.len() > 2).count() <= 3, "chains {chains}");
        }
    }

    #[test]
    fn multi_chain_relations_carry_distinct_names_and_identical_shapes() {
        let relations = multi_chain_relations(3, 4, 6);
        assert_eq!(relations.len(), 3);
        let names: Vec<&str> = relations.iter().map(|(r, _)| r.schema().name()).collect();
        assert_eq!(names, vec!["R0", "R1", "R2"]);
        for (instance, fds) in &relations {
            assert_eq!(instance.len(), 24);
            let ctx = RepairContext::new(instance.clone(), fds.clone());
            let components: Vec<_> =
                ctx.graph().connected_components().into_iter().filter(|c| c.len() >= 2).collect();
            assert_eq!(components.len(), 4);
        }
    }

    #[test]
    fn chain_instances_form_a_path() {
        for length in [2usize, 5, 9] {
            let (instance, fds) = chain_instance(length);
            assert_eq!(instance.len(), length);
            let graph = ConflictGraph::build(&instance, &fds);
            assert_eq!(graph.edge_count(), length - 1, "length {length}");
            assert_eq!(graph.connected_components().len(), 1);
            assert!(graph.max_degree() <= 2);
        }
    }

    #[test]
    fn random_instances_scale_conflicts_with_the_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let (low, low_fds) = random_conflict_instance(200, 0.1, &mut rng);
        let (high, high_fds) = random_conflict_instance(200, 0.9, &mut rng);
        let low_edges = ConflictGraph::build(&low, &low_fds).edge_count();
        let high_edges = ConflictGraph::build(&high, &high_fds).edge_count();
        assert!(high_edges > low_edges, "{high_edges} should exceed {low_edges}");
        let mut rng2 = StdRng::seed_from_u64(1);
        let (zero, zero_fds) = random_conflict_instance(100, 0.0, &mut rng2);
        assert_eq!(ConflictGraph::build(&zero, &zero_fds).edge_count(), 0);
    }

    #[test]
    fn generation_is_deterministic_for_a_fixed_seed() {
        let (a, _) = random_conflict_instance(50, 0.5, &mut StdRng::seed_from_u64(7));
        let (b, _) = random_conflict_instance(50, 0.5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.len(), b.len());
        for (id, tuple) in a.iter() {
            assert_eq!(Some(tuple), b.tuple(id).ok());
        }
    }
}
