//! Random priorities with a completeness knob.
//!
//! Experiment E9 sweeps the fraction `p` of conflict edges the user has expressed a
//! preference about and observes how the number of preferred repairs shrinks as `p`
//! grows (monotonicity P2) down to a single repair at `p = 1` for the families with
//! categoricity P4.

use std::sync::Arc;

use pdqi_constraints::ConflictGraph;
use pdqi_priority::{random_total_extension, Priority};
use rand::seq::SliceRandom;
use rand::Rng;

/// A random priority orienting approximately a fraction `completeness ∈ [0, 1]` of the
/// conflict edges. Edges are oriented one at a time in random order with a random
/// direction; a direction that would create a cycle is flipped.
pub fn random_priority<R: Rng>(
    graph: Arc<ConflictGraph>,
    completeness: f64,
    rng: &mut R,
) -> Priority {
    assert!((0.0..=1.0).contains(&completeness), "completeness must be in [0, 1]");
    let mut priority = Priority::empty(Arc::clone(&graph));
    let mut edges: Vec<_> = graph.edges().to_vec();
    edges.shuffle(rng);
    let keep = ((edges.len() as f64) * completeness).round() as usize;
    for &(a, b) in edges.iter().take(keep) {
        let (winner, loser) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        if priority.add(winner, loser).is_err() {
            priority
                .add(loser, winner)
                .expect("one orientation of an unoriented conflict edge is always acyclic");
        }
    }
    priority
}

/// A random *total* priority (every conflict edge oriented).
pub fn random_total_priority<R: Rng>(graph: Arc<ConflictGraph>, rng: &mut R) -> Priority {
    random_total_extension(&Priority::empty(graph), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_relation::TupleId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle_graph(n: usize) -> Arc<ConflictGraph> {
        let edges: Vec<(TupleId, TupleId)> =
            (0..n).map(|i| (TupleId(i as u32), TupleId(((i + 1) % n) as u32))).collect();
        Arc::new(ConflictGraph::from_edges(n, &edges))
    }

    #[test]
    fn completeness_controls_the_number_of_oriented_edges() {
        let graph = cycle_graph(40);
        let mut rng = StdRng::seed_from_u64(5);
        for (p, expected) in [(0.0, 0usize), (0.5, 20), (1.0, 40)] {
            let priority = random_priority(Arc::clone(&graph), p, &mut rng);
            assert_eq!(priority.edge_count(), expected);
            assert!(priority.check_acyclic());
        }
    }

    #[test]
    fn total_priorities_are_total_and_acyclic() {
        let graph = cycle_graph(15);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..5 {
            let priority = random_total_priority(Arc::clone(&graph), &mut rng);
            assert!(priority.is_total());
            assert!(priority.check_acyclic());
        }
    }
}
