//! Enumeration of maximal independent sets (= repairs).
//!
//! The repairs of an instance w.r.t. a set of functional dependencies are exactly the
//! maximal independent sets of its conflict graph (Section 2.1 of the paper); for denial
//! constraints the same holds for the conflict hypergraph. Since there may be
//! exponentially many repairs (Example 4 exhibits `2ⁿ`), the enumerators support early
//! termination through [`std::ops::ControlFlow`], hard limits, and counting that exploits
//! connected-component decomposition (the count is the product of per-component counts).

use std::ops::ControlFlow;

use pdqi_constraints::{ConflictGraph, ConflictHypergraph};
use pdqi_relation::{TupleId, TupleSet};

/// Enumerator of the maximal independent sets of a [`ConflictGraph`].
pub struct GraphMisEnumerator<'g> {
    graph: &'g ConflictGraph,
    components: Vec<TupleSet>,
}

impl<'g> GraphMisEnumerator<'g> {
    /// Creates an enumerator for `graph`.
    pub fn new(graph: &'g ConflictGraph) -> Self {
        GraphMisEnumerator { graph, components: graph.connected_components() }
    }

    /// Visits every maximal independent set exactly once. The callback may stop the
    /// enumeration early by returning [`ControlFlow::Break`]. Returns `true` if the
    /// enumeration ran to completion.
    pub fn for_each<F>(&self, mut callback: F) -> bool
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        // Pre-compute the maximal independent sets of each component, then emit their
        // cartesian combinations. Components are typically small even when the whole
        // graph is large, which keeps the per-component enumeration cheap; the
        // combination step is where the exponential blow-up lives and where early
        // termination matters.
        let per_component: Vec<Vec<TupleSet>> =
            self.components.iter().map(|c| self.component_mis(c)).collect();
        let mut current = TupleSet::with_capacity(self.graph.vertex_count());
        self.combine(&per_component, 0, &mut current, &mut callback).is_continue()
    }

    /// Collects up to `limit` maximal independent sets.
    pub fn collect(&self, limit: usize) -> Vec<TupleSet> {
        let mut out = Vec::new();
        self.for_each(|set| {
            out.push(set.clone());
            if out.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        out
    }

    /// The number of maximal independent sets, computed as the product of per-component
    /// counts, saturating at `u128::MAX`.
    pub fn count(&self) -> u128 {
        self.components
            .iter()
            .map(|c| self.component_mis(c).len() as u128)
            .fold(1u128, u128::saturating_mul)
    }

    /// One maximal independent set, produced greedily (lowest tuple ids first).
    pub fn first(&self) -> TupleSet {
        self.graph.complete_to_maximal(&TupleSet::new())
    }

    /// The connected components this enumerator decomposes the graph into.
    pub fn components(&self) -> &[TupleSet] {
        &self.components
    }

    fn combine<F>(
        &self,
        per_component: &[Vec<TupleSet>],
        index: usize,
        current: &mut TupleSet,
        callback: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        if index == per_component.len() {
            return callback(current);
        }
        for choice in &per_component[index] {
            current.union_with(choice);
            let flow = self.combine(per_component, index + 1, current, callback);
            current.remove_all(choice);
            flow?;
        }
        ControlFlow::Continue(())
    }

    /// All maximal independent sets of one connected component, via backtracking over the
    /// component's vertices in ascending order. Each MIS corresponds to exactly one
    /// include/exclude decision vector, so no deduplication is needed; branches that can
    /// no longer lead to a *maximal* set are pruned, and completed sets are double-checked
    /// for maximality within the component.
    fn component_mis(&self, component: &TupleSet) -> Vec<TupleSet> {
        let vertices: Vec<TupleId> = component.iter().collect();
        let mut result = Vec::new();
        let mut chosen = TupleSet::with_capacity(self.graph.vertex_count());
        self.component_rec(&vertices, 0, &mut chosen, &mut result);
        result
    }

    fn component_rec(
        &self,
        vertices: &[TupleId],
        index: usize,
        chosen: &mut TupleSet,
        out: &mut Vec<TupleSet>,
    ) {
        if index == vertices.len() {
            if self.is_maximal_within(vertices, chosen) {
                out.push(chosen.clone());
            }
            return;
        }
        let v = vertices[index];
        let blocked = !self.graph.neighbors(v).is_disjoint_from(chosen);
        if !blocked {
            // Branch 1: include v.
            chosen.insert(v);
            self.component_rec(vertices, index + 1, chosen, out);
            chosen.remove(v);
        }
        // Branch 2: exclude v. Only viable if v is already dominated or might still be
        // dominated by a later (undecided) neighbour.
        let may_be_dominated_later =
            self.graph.neighbors(v).iter().any(|u| vertices[index + 1..].contains(&u));
        if blocked || may_be_dominated_later {
            self.component_rec(vertices, index + 1, chosen, out);
        }
    }

    fn is_maximal_within(&self, vertices: &[TupleId], chosen: &TupleSet) -> bool {
        vertices
            .iter()
            .all(|&v| chosen.contains(v) || !self.graph.neighbors(v).is_disjoint_from(chosen))
    }
}

/// A schedule for fanning independent per-component enumeration jobs out over workers:
/// the indices of `sizes` (per-component vertex counts) sorted descending (ties by
/// ascending index, so the schedule is deterministic).
///
/// MIS enumeration cost grows exponentially with component size, so the largest
/// components dominate the wall-clock of any parallel enumeration; pulling them first
/// lets the small components fill the tail and keeps workers balanced.
pub fn schedule_by_descending_size(sizes: &[usize]) -> Vec<usize> {
    let weights: Vec<u128> = sizes.iter().map(|&s| s as u128).collect();
    schedule_by_descending_weight(&weights)
}

/// [`schedule_by_descending_size`] for arbitrary (estimated) job weights — tuple counts
/// of shard builds, memoised repair counts of revalidation jobs — rather than vertex
/// counts. Heaviest first, ties broken by ascending index, so the schedule is
/// deterministic for a fixed weight vector.
pub fn schedule_by_descending_weight(weights: &[u128]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    order
}

#[cfg(test)]
mod schedule_tests {
    use super::{schedule_by_descending_size, schedule_by_descending_weight};

    #[test]
    fn largest_first_with_deterministic_ties() {
        assert_eq!(schedule_by_descending_size(&[2, 9, 4, 9, 1]), vec![1, 3, 2, 0, 4]);
        assert!(schedule_by_descending_size(&[]).is_empty());
    }

    #[test]
    fn weight_schedules_accept_counts_beyond_usize() {
        let weights = [1u128 << 90, 3, 1 << 100, 3];
        assert_eq!(schedule_by_descending_weight(&weights), vec![2, 0, 1, 3]);
    }
}

/// All maximal independent sets of the subgraph induced by `vertices`, which must be
/// closed under conflict neighbourhoods (a connected component, or a union of
/// components). This is the building block of component-memoised repair pipelines: the
/// repairs of the whole graph are exactly the unions of one such set per component.
pub fn maximal_independent_sets_within(
    graph: &ConflictGraph,
    vertices: &TupleSet,
) -> Vec<TupleSet> {
    debug_assert!(
        vertices.iter().all(|v| graph.neighbors(v).is_subset_of(vertices)),
        "the vertex set must be closed under conflict neighbourhoods"
    );
    GraphMisEnumerator { graph, components: Vec::new() }.component_mis(vertices)
}

/// Enumerator of the maximal independent sets of a [`ConflictHypergraph`].
pub struct HypergraphMisEnumerator<'g> {
    hypergraph: &'g ConflictHypergraph,
}

impl<'g> HypergraphMisEnumerator<'g> {
    /// Creates an enumerator for `hypergraph`.
    pub fn new(hypergraph: &'g ConflictHypergraph) -> Self {
        HypergraphMisEnumerator { hypergraph }
    }

    /// Visits every maximal independent set exactly once; the callback may stop early.
    /// Returns `true` if the enumeration ran to completion.
    pub fn for_each<F>(&self, mut callback: F) -> bool
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        let n = self.hypergraph.vertex_count();
        let mut chosen = TupleSet::with_capacity(n);
        self.rec(0, n, &mut chosen, &mut callback).is_continue()
    }

    /// Collects up to `limit` maximal independent sets.
    pub fn collect(&self, limit: usize) -> Vec<TupleSet> {
        let mut out = Vec::new();
        self.for_each(|set| {
            out.push(set.clone());
            if out.len() >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        out
    }

    /// Counts all maximal independent sets by exhaustive enumeration.
    pub fn count(&self) -> u128 {
        let mut count = 0u128;
        self.for_each(|_| {
            count += 1;
            ControlFlow::Continue(())
        });
        count
    }

    fn rec<F>(
        &self,
        index: usize,
        n: usize,
        chosen: &mut TupleSet,
        callback: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&TupleSet) -> ControlFlow<()>,
    {
        if index == n {
            if self.hypergraph.is_maximal_independent(chosen) {
                return callback(chosen);
            }
            return ControlFlow::Continue(());
        }
        let v = TupleId(index as u32);
        // Branch 1: include v if it does not complete a hyperedge.
        chosen.insert(v);
        if self.hypergraph.is_independent(chosen) {
            self.rec(index + 1, n, chosen, callback)?;
        }
        chosen.remove(v);
        // Branch 2: exclude v.
        self.rec(index + 1, n, chosen, callback)?;
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_constraints::{DenialConstraint, FdSet, FunctionalDependency};
    use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn example4(n: i64) -> (RelationInstance, ConflictGraph) {
        let schema = Arc::new(
            RelationSchema::from_pairs("R", &[("A", ValueType::Int), ("B", ValueType::Int)])
                .unwrap(),
        );
        let mut rows = Vec::new();
        for i in 0..n {
            rows.push(vec![Value::int(i), Value::int(0)]);
            rows.push(vec![Value::int(i), Value::int(1)]);
        }
        let instance = RelationInstance::from_rows(Arc::clone(&schema), rows).unwrap();
        let fds = FdSet::parse(schema, &["A -> B"]).unwrap();
        let graph = ConflictGraph::build(&instance, &fds);
        (instance, graph)
    }

    fn example1_graph() -> ConflictGraph {
        ConflictGraph::from_edges(
            4,
            &[(TupleId(0), TupleId(1)), (TupleId(0), TupleId(2)), (TupleId(1), TupleId(3))],
        )
    }

    #[test]
    fn example_2_has_exactly_three_repairs() {
        let graph = example1_graph();
        let enumerator = GraphMisEnumerator::new(&graph);
        let repairs = enumerator.collect(usize::MAX);
        assert_eq!(repairs.len(), 3);
        assert_eq!(enumerator.count(), 3);
        let expected = [
            TupleSet::from_ids([TupleId(0), TupleId(3)]),
            TupleSet::from_ids([TupleId(1), TupleId(2)]),
            TupleSet::from_ids([TupleId(2), TupleId(3)]),
        ];
        for repair in &expected {
            assert!(repairs.contains(repair));
        }
        for repair in &repairs {
            assert!(graph.is_maximal_independent(repair));
        }
    }

    #[test]
    fn example_4_has_two_to_the_n_repairs() {
        for n in [1i64, 3, 5, 8] {
            let (_, graph) = example4(n);
            let enumerator = GraphMisEnumerator::new(&graph);
            assert_eq!(enumerator.count(), 1u128 << n);
            assert_eq!(enumerator.collect(usize::MAX).len(), 1usize << n);
        }
    }

    #[test]
    fn counting_scales_beyond_what_enumeration_could_materialise() {
        // 2^120 repairs: countable via the component product without enumerating.
        let (_, graph) = example4(120);
        assert_eq!(GraphMisEnumerator::new(&graph).count(), 1u128 << 120);
    }

    #[test]
    fn early_termination_stops_the_enumeration() {
        let (_, graph) = example4(20);
        let enumerator = GraphMisEnumerator::new(&graph);
        let mut seen = 0usize;
        let completed = enumerator.for_each(|_| {
            seen += 1;
            if seen == 10 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(seen, 10);
        assert!(!completed);
        assert_eq!(enumerator.collect(5).len(), 5);
    }

    #[test]
    fn a_consistent_instance_has_exactly_one_repair() {
        let graph = ConflictGraph::from_edges(4, &[]);
        let enumerator = GraphMisEnumerator::new(&graph);
        assert_eq!(enumerator.count(), 1);
        assert_eq!(enumerator.collect(10), vec![TupleSet::full(4)]);
        assert_eq!(enumerator.first(), TupleSet::full(4));
    }

    #[test]
    fn triangle_has_three_singleton_repairs() {
        let graph = ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        );
        let repairs = GraphMisEnumerator::new(&graph).collect(usize::MAX);
        assert_eq!(repairs.len(), 3);
        assert!(repairs.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn first_is_a_maximal_independent_set() {
        let graph = example1_graph();
        let first = GraphMisEnumerator::new(&graph).first();
        assert!(graph.is_maximal_independent(&first));
    }

    #[test]
    fn hypergraph_enumeration_matches_graph_enumeration_for_fd_constraints() {
        let (instance, graph) = example4(3);
        let fd = FunctionalDependency::parse(instance.schema(), "A -> B").unwrap();
        let constraints = DenialConstraint::from_fd(Arc::clone(instance.schema()), &fd);
        let hyper = ConflictHypergraph::build(&instance, &constraints);
        let from_graph = GraphMisEnumerator::new(&graph).collect(usize::MAX);
        let from_hyper = HypergraphMisEnumerator::new(&hyper).collect(usize::MAX);
        assert_eq!(from_graph.len(), from_hyper.len());
        for set in &from_graph {
            assert!(from_hyper.contains(set));
        }
        assert_eq!(HypergraphMisEnumerator::new(&hyper).count(), 8);
    }

    #[test]
    fn hypergraph_with_a_ternary_edge_keeps_all_two_element_subsets() {
        // One hyperedge {0,1,2} over 3 vertices: the maximal independent sets are the
        // three 2-element subsets.
        let hyper = ConflictHypergraph::from_hyperedges(
            3,
            vec![TupleSet::from_ids([TupleId(0), TupleId(1), TupleId(2)])],
        );
        let sets = HypergraphMisEnumerator::new(&hyper).collect(usize::MAX);
        assert_eq!(sets.len(), 3);
        assert!(sets.iter().all(|s| s.len() == 2));
    }
}
