//! A small DPLL SAT solver.
//!
//! The paper's intractability results (co-NP-completeness of preferred consistent query
//! answering, Π₂ᵖ-completeness for G-Rep) rest on reductions from propositional
//! satisfiability. This module provides a compact, dependency-free DPLL solver — unit
//! propagation plus branching on the most frequently occurring unassigned variable —
//! that the reduction module and the tests use as a ground-truth oracle, and that the
//! benchmark harness uses to label generated instances as satisfiable/unsatisfiable.

use std::fmt;

/// A literal: a propositional variable (0-based) with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: usize) -> Self {
        Lit { var, positive: true }
    }

    /// The negative literal of `var`.
    pub fn neg(var: usize) -> Self {
        Lit { var, positive: false }
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Lit { var: self.var, positive: !self.positive }
    }

    /// Whether the literal is satisfied under the given (possibly partial) assignment.
    fn status(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment[self.var].map(|value| value == self.positive)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "!x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula.
#[derive(Debug, Clone, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

/// The outcome of solving a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witnessing assignment (indexed by variable).
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

impl CnfFormula {
    /// An empty formula over `num_vars` variables (trivially satisfiable).
    pub fn new(num_vars: usize) -> Self {
        CnfFormula { num_vars, clauses: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Adds a clause, growing the variable count if needed. An empty clause makes the
    /// formula unsatisfiable.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in &clause {
            if lit.var >= self.num_vars {
                self.num_vars = lit.var + 1;
            }
        }
        self.clauses.push(clause);
    }

    /// Whether `assignment` satisfies every clause.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|lit| assignment.get(lit.var).copied() == Some(lit.positive))
        })
    }

    /// Decides satisfiability by DPLL search.
    pub fn solve(&self) -> SatResult {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        if self.dpll(&mut assignment) {
            // Unconstrained variables default to `false`.
            SatResult::Sat(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
        } else {
            SatResult::Unsat
        }
    }

    fn dpll(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to fixpoint.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut propagated = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for &lit in clause {
                    match lit.status(assignment) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        // Conflict: undo this call's propagations.
                        for &var in &trail {
                            assignment[var] = None;
                        }
                        return false;
                    }
                    1 => {
                        let lit = unassigned.expect("exactly one unassigned literal");
                        assignment[lit.var] = Some(lit.positive);
                        trail.push(lit.var);
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }
        // Pick the unassigned variable occurring in the most unsatisfied clauses.
        let mut occurrences = vec![0usize; self.num_vars];
        let mut any_unassigned = false;
        for clause in &self.clauses {
            if clause.iter().any(|lit| lit.status(assignment) == Some(true)) {
                continue;
            }
            for lit in clause {
                if assignment[lit.var].is_none() {
                    occurrences[lit.var] += 1;
                    any_unassigned = true;
                }
            }
        }
        if !any_unassigned {
            // Every clause is satisfied or all variables in pending clauses are assigned;
            // since propagation found no conflict, the formula is satisfied.
            return true;
        }
        let branch_var = (0..self.num_vars)
            .filter(|&v| assignment[v].is_none())
            .max_by_key(|&v| occurrences[v])
            .expect("an unassigned variable exists");
        for value in [true, false] {
            assignment[branch_var] = Some(value);
            if self.dpll(assignment) {
                return true;
            }
            assignment[branch_var] = None;
        }
        // Undo propagations made at this level before failing.
        for &var in &trail {
            assignment[var] = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(lits: &[(usize, bool)]) -> Clause {
        lits.iter().map(|&(v, p)| Lit { var: v, positive: p }).collect()
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        assert!(CnfFormula::new(0).solve().is_sat());
        assert!(CnfFormula::new(3).solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsatisfiable() {
        let mut f = CnfFormula::new(1);
        f.add_clause(vec![]);
        assert_eq!(f.solve(), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_formula_returns_a_model() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x2) ∧ (¬x1 ∨ ¬x2)
        let mut f = CnfFormula::new(3);
        f.add_clause(clause(&[(0, true), (1, true)]));
        f.add_clause(clause(&[(0, false), (2, true)]));
        f.add_clause(clause(&[(1, false), (2, false)]));
        match f.solve() {
            SatResult::Sat(model) => assert!(f.is_satisfied_by(&model)),
            SatResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn classic_unsatisfiable_core_is_detected() {
        // (x0) ∧ (¬x0 ∨ x1) ∧ (¬x1)
        let mut f = CnfFormula::new(2);
        f.add_clause(clause(&[(0, true)]));
        f.add_clause(clause(&[(0, false), (1, true)]));
        f.add_clause(clause(&[(1, false)]));
        assert_eq!(f.solve(), SatResult::Unsat);
    }

    #[test]
    fn all_eight_clauses_over_three_variables_are_unsatisfiable() {
        // Every combination of polarities over {x0,x1,x2}: no assignment satisfies all.
        let mut f = CnfFormula::new(3);
        for mask in 0..8u32 {
            f.add_clause((0..3).map(|v| Lit { var: v, positive: mask & (1 << v) != 0 }).collect());
        }
        assert_eq!(f.solve(), SatResult::Unsat);
        // Dropping any single clause makes it satisfiable.
        let mut g = CnfFormula::new(3);
        for mask in 1..8u32 {
            g.add_clause((0..3).map(|v| Lit { var: v, positive: mask & (1 << v) != 0 }).collect());
        }
        assert!(g.solve().is_sat());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsatisfiable() {
        // Variables p[i][j]: pigeon i sits in hole j (i < 3, j < 2).
        let var = |i: usize, j: usize| i * 2 + j;
        let mut f = CnfFormula::new(6);
        for i in 0..3 {
            f.add_clause(clause(&[(var(i, 0), true), (var(i, 1), true)]));
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    f.add_clause(clause(&[(var(i1, j), false), (var(i2, j), false)]));
                }
            }
        }
        assert_eq!(f.solve(), SatResult::Unsat);
    }

    #[test]
    fn add_clause_grows_the_variable_count() {
        let mut f = CnfFormula::new(0);
        f.add_clause(vec![Lit::pos(4)]);
        assert_eq!(f.num_vars(), 5);
        assert_eq!(f.num_clauses(), 1);
        assert!(f.solve().is_sat());
    }

    #[test]
    fn literal_helpers() {
        assert_eq!(Lit::pos(3).negated(), Lit::neg(3));
        assert_eq!(Lit::neg(3).negated(), Lit::pos(3));
        assert_eq!(Lit::pos(2).to_string(), "x2");
        assert_eq!(Lit::neg(2).to_string(), "!x2");
    }
}
