//! The 3-SAT reduction behind the paper's co-NP-hardness results.
//!
//! Theorem 3 / Theorem 4 and the results quoted from \[6, 8\] establish that consistent
//! query answering is co-NP-hard already for conjunctive queries and a fixed set of
//! functional dependencies: the proofs encode a propositional formula *in the data* while
//! the schema, constraints and query stay fixed. This module implements such an encoding
//! so the benchmark harness can generate adversarial inputs whose answer is known from a
//! SAT oracle.
//!
//! **Encoding.** For a 3-CNF formula `φ` over variables `x₁..xₙ` with clauses `c₁..cₘ`
//! (three *distinct* variables per clause) build the relation
//! `Lit(Clause, Var, Sign)` containing a tuple `(cⱼ, xᵢ, s)` for every literal occurrence
//! (`s = 1` for a positive occurrence, `s = 0` for a negated one) **plus**, for every
//! variable `xᵢ`, the two anchor tuples `(dᵢ, xᵢ, 0)` and `(dᵢ, xᵢ, 1)` under a fresh
//! dummy clause id. The single functional dependency is `Var → Sign`. Two occurrences of
//! the same variable with opposite signs conflict, and the anchors guarantee both signs
//! are present for every variable, so a repair keeps exactly the occurrences of one sign
//! per variable — i.e. repairs are in bijection with truth assignments, where keeping the
//! occurrences with sign `s` means the assignment makes those literals **false**
//! (`σ(xᵢ) = 1 − s`). The anchor tuples can never witness the query below because a dummy
//! clause id only ever carries a single variable. The fixed conjunctive query
//!
//! ```text
//! Q ≡ ∃ c,v1,v2,v3,s1,s2,s3 . Lit(c,v1,s1) ∧ Lit(c,v2,s2) ∧ Lit(c,v3,s3)
//!                            ∧ v1 ≠ v2 ∧ v1 ≠ v3 ∧ v2 ≠ v3
//! ```
//!
//! holds in a repair iff some clause has all three of its literals kept, i.e. iff the
//! corresponding assignment falsifies that clause. Hence `true` is the consistent answer
//! to `Q` iff **every** assignment falsifies some clause iff `φ` is unsatisfiable.

use std::sync::Arc;

use pdqi_constraints::FdSet;
use pdqi_query::parser::parse_formula;
use pdqi_query::Formula;
use pdqi_relation::{RelationInstance, RelationSchema, Value, ValueType};

use crate::sat::CnfFormula;

/// A consistent-query-answering instance produced from a 3-CNF formula.
pub struct SatCqaInstance {
    /// The `Lit(Clause, Var, Sign)` relation encoding the formula.
    pub instance: RelationInstance,
    /// The fixed constraint set `{Var → Sign}`.
    pub fds: FdSet,
    /// The fixed conjunctive query `Q`; `true` is its consistent answer iff the formula
    /// is unsatisfiable.
    pub query: Formula,
}

/// The fixed conjunctive query of the reduction (independent of the formula).
pub fn reduction_query() -> Formula {
    parse_formula(
        "EXISTS c,v1,v2,v3,s1,s2,s3 . Lit(c,v1,s1) AND Lit(c,v2,s2) AND Lit(c,v3,s3) \
         AND v1 != v2 AND v1 != v3 AND v2 != v3",
    )
    .expect("the reduction query is well-formed")
}

/// The fixed schema of the reduction: `Lit(Clause: name, Var: name, Sign: int)`.
pub fn reduction_schema() -> Arc<RelationSchema> {
    Arc::new(
        RelationSchema::from_pairs(
            "Lit",
            &[("Clause", ValueType::Name), ("Var", ValueType::Name), ("Sign", ValueType::Int)],
        )
        .expect("the reduction schema is well-formed"),
    )
}

/// Encodes a 3-CNF formula as a CQA instance. Every clause must contain exactly three
/// literals over three distinct variables (the shape the hardness proof relies on).
///
/// # Panics
/// Panics if some clause does not have exactly three distinct variables.
pub fn cqa_instance_from_3sat(formula: &CnfFormula) -> SatCqaInstance {
    let schema = reduction_schema();
    let mut rows = Vec::new();
    // Anchor tuples: both signs of every variable, under a dummy clause id, so that every
    // variable is genuinely "chosen" by every repair even if the formula mentions it with
    // a single polarity only.
    for var in 0..formula.num_vars() {
        for sign in [0i64, 1] {
            rows.push(vec![
                Value::name(&format!("d{var}")),
                Value::name(&format!("x{var}")),
                Value::int(sign),
            ]);
        }
    }
    for (clause_index, clause) in formula.clauses().iter().enumerate() {
        assert_eq!(clause.len(), 3, "the reduction requires exactly 3 literals per clause");
        let distinct =
            clause.iter().map(|l| l.var).collect::<std::collections::BTreeSet<_>>().len();
        assert_eq!(distinct, 3, "the reduction requires 3 distinct variables per clause");
        for lit in clause {
            rows.push(vec![
                Value::name(&format!("c{clause_index}")),
                Value::name(&format!("x{}", lit.var)),
                Value::int(if lit.positive { 1 } else { 0 }),
            ]);
        }
    }
    let instance = RelationInstance::from_rows(Arc::clone(&schema), rows)
        .expect("reduction rows match the reduction schema");
    let fds = FdSet::parse(schema, &["Var -> Sign"]).expect("the reduction FD is well-formed");
    SatCqaInstance { instance, fds, query: reduction_query() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mis::GraphMisEnumerator;
    use crate::sat::{Lit, SatResult};
    use pdqi_constraints::ConflictGraph;
    use pdqi_query::Evaluator;
    use std::ops::ControlFlow;

    fn clause3(a: (usize, bool), b: (usize, bool), c: (usize, bool)) -> Vec<Lit> {
        vec![
            Lit { var: a.0, positive: a.1 },
            Lit { var: b.0, positive: b.1 },
            Lit { var: c.0, positive: c.1 },
        ]
    }

    /// Brute-force check of the reduction's defining property: consistent answer to `Q`
    /// (over all repairs) is `true` iff the formula is unsatisfiable.
    fn consistent_answer_by_enumeration(cqa: &SatCqaInstance) -> bool {
        let graph = ConflictGraph::build(&cqa.instance, &cqa.fds);
        let mut holds_everywhere = true;
        GraphMisEnumerator::new(&graph).for_each(|repair| {
            let eval = Evaluator::with_restricted(&cqa.instance, repair);
            if !eval.eval_closed(&cqa.query).unwrap() {
                holds_everywhere = false;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        holds_everywhere
    }

    #[test]
    fn satisfiable_formula_yields_consistent_answer_false() {
        // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ x2): satisfiable.
        let mut f = CnfFormula::new(3);
        f.add_clause(clause3((0, true), (1, true), (2, true)));
        f.add_clause(clause3((0, false), (1, false), (2, true)));
        assert!(f.solve().is_sat());
        let cqa = cqa_instance_from_3sat(&f);
        assert!(!consistent_answer_by_enumeration(&cqa));
    }

    #[test]
    fn unsatisfiable_formula_yields_consistent_answer_true() {
        // All eight sign patterns over three variables: unsatisfiable.
        let mut f = CnfFormula::new(3);
        for mask in 0..8u32 {
            f.add_clause(clause3((0, mask & 1 != 0), (1, mask & 2 != 0), (2, mask & 4 != 0)));
        }
        assert_eq!(f.solve(), SatResult::Unsat);
        let cqa = cqa_instance_from_3sat(&f);
        assert!(consistent_answer_by_enumeration(&cqa));
    }

    #[test]
    fn reduction_agrees_with_the_sat_oracle_on_small_random_like_formulas() {
        // A handful of fixed small formulas exercising both outcomes.
        let cases: Vec<Vec<[(usize, bool); 3]>> = vec![
            vec![[(0, true), (1, true), (2, false)]],
            vec![
                [(0, true), (1, true), (2, true)],
                [(0, false), (1, true), (2, false)],
                [(0, true), (1, false), (2, false)],
                [(0, false), (1, false), (2, true)],
            ],
            vec![
                [(0, true), (1, true), (2, true)],
                [(0, true), (1, false), (2, false)],
                [(0, false), (1, true), (2, false)],
                [(0, false), (1, false), (2, true)],
                [(0, true), (1, true), (2, false)],
                [(0, false), (1, true), (2, true)],
                [(0, true), (1, false), (2, true)],
                [(0, false), (1, false), (2, false)],
            ],
        ];
        for clauses in cases {
            let mut f = CnfFormula::new(3);
            for c in &clauses {
                f.add_clause(clause3(c[0], c[1], c[2]));
            }
            let cqa = cqa_instance_from_3sat(&f);
            let consistent_true = consistent_answer_by_enumeration(&cqa);
            assert_eq!(
                consistent_true,
                !f.solve().is_sat(),
                "reduction disagrees with the SAT oracle on {clauses:?}"
            );
        }
    }

    #[test]
    fn repairs_correspond_to_assignments() {
        let mut f = CnfFormula::new(3);
        f.add_clause(clause3((0, true), (1, true), (2, true)));
        f.add_clause(clause3((0, false), (1, false), (2, false)));
        let cqa = cqa_instance_from_3sat(&f);
        let graph = ConflictGraph::build(&cqa.instance, &cqa.fds);
        // Three variables, each appearing with both signs: 2^3 repairs.
        assert_eq!(GraphMisEnumerator::new(&graph).count(), 8);
    }

    #[test]
    #[should_panic(expected = "3 distinct variables")]
    fn clauses_with_repeated_variables_are_rejected() {
        let mut f = CnfFormula::new(2);
        f.add_clause(clause3((0, true), (0, false), (1, true)));
        cqa_instance_from_3sat(&f);
    }
}
