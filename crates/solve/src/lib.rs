//! Search engines backing the repair machinery of `pdqi`.
//!
//! The paper's complexity landscape (Fig. 5) mixes polynomial-time problems (repair
//! checking for Rep/L/S/C, Algorithm 1) with co-NP- and Π₂ᵖ-complete ones (G-repair
//! checking, preferred consistent query answers). The polynomial algorithms live next to
//! their definitions in `pdqi-core`; this crate provides the *search* machinery the hard
//! problems need, plus the reduction used to generate provably hard benchmark instances:
//!
//! * [`mis`] — enumeration of maximal independent sets of conflict graphs and
//!   hypergraphs (the repairs), with connected-component decomposition, early
//!   termination and counting,
//! * [`sat`] — a small DPLL SAT solver (unit propagation + branching) used by the
//!   reductions and as an oracle in tests,
//! * [`search`] — the backtracking search for a repair that `≪`-dominates a given repair
//!   (the co-NP core of G-repair checking, Prop. 5),
//! * [`reductions`] — the 3-SAT → consistent-query-answering reduction behind the
//!   paper's co-NP-hardness results, used to produce adversarial benchmark inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mis;
pub mod reductions;
pub mod sat;
pub mod search;

pub use mis::{
    maximal_independent_sets_within, schedule_by_descending_size, GraphMisEnumerator,
    HypergraphMisEnumerator,
};
pub use reductions::{cqa_instance_from_3sat, SatCqaInstance};
pub use sat::{Clause, CnfFormula, Lit, SatResult};
pub use search::exists_dominating_repair;
