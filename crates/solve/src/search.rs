//! Search for a repair that `≪`-dominates a given repair.
//!
//! Proposition 5 of the paper characterises globally optimal repairs through the lifting
//! `≪` of the priority to repairs: `r1 ≪ r2` iff every tuple of `r1 \ r2` is dominated by
//! some tuple of `r2 \ r1`, and a repair is globally optimal iff it is `≪`-maximal.
//! G-repair checking is co-NP-complete (Theorem 5), so deciding "is there a repair that
//! `≪`-dominates `r'`?" requires search. [`exists_dominating_repair`] implements that
//! search as a backtracking enumeration over maximal independent sets with two pruning
//! rules that make the common cases fast:
//!
//! * a tuple of the base repair may only be *dropped* if one of its dominators outside
//!   the base repair can still be included,
//! * once a candidate diverges from the base repair it must keep covering every dropped
//!   tuple, so branches whose dropped tuples have no remaining potential dominator are
//!   cut immediately.

use pdqi_constraints::ConflictGraph;
use pdqi_priority::Priority;
use pdqi_relation::{TupleId, TupleSet};

/// Searches for a repair `r''` with `base ≪ r''` and `r'' ≠ base`. Returns a witness if
/// one exists. `base` must be a repair (maximal independent set) of `graph`.
pub fn exists_dominating_repair(
    graph: &ConflictGraph,
    priority: &Priority,
    base: &TupleSet,
) -> Option<TupleSet> {
    debug_assert!(graph.is_maximal_independent(base));
    let n = graph.vertex_count();
    let mut chosen = TupleSet::with_capacity(n);
    let mut excluded = TupleSet::with_capacity(n);
    search(graph, priority, base, 0, &mut chosen, &mut excluded)
}

fn search(
    graph: &ConflictGraph,
    priority: &Priority,
    base: &TupleSet,
    index: usize,
    chosen: &mut TupleSet,
    excluded: &mut TupleSet,
) -> Option<TupleSet> {
    let n = graph.vertex_count();
    if index == n {
        if !graph.is_maximal_independent(chosen) || chosen == base {
            return None;
        }
        // Final check of the ≪ condition (the pruning below keeps partial candidates
        // consistent with it, so this is cheap and almost always succeeds).
        if dominates_base(priority, base, chosen) {
            return Some(chosen.clone());
        }
        return None;
    }
    let v = TupleId(index as u32);
    let blocked = !graph.neighbors(v).is_disjoint_from(chosen);

    // Branch 1: include v (if independent).
    if !blocked {
        chosen.insert(v);
        if let Some(witness) = search(graph, priority, base, index + 1, chosen, excluded) {
            return Some(witness);
        }
        chosen.remove(v);
    }

    // Branch 2: exclude v.
    // If v belongs to the base repair, dropping it is only allowed when some dominator of
    // v outside the base repair is either already chosen or still undecided.
    if base.contains(v) {
        let has_cover = priority.dominators_of(v).iter().any(|d| {
            !base.contains(d)
                && (chosen.contains(d) || (!excluded.contains(d) && d.index() > index))
        });
        if !has_cover {
            return None;
        }
    }
    // Excluding v must still allow maximality: v needs a chosen or future neighbour.
    let may_be_dominated = blocked || graph.neighbors(v).iter().any(|u| u.index() > index);
    if !may_be_dominated {
        return None;
    }
    excluded.insert(v);
    let result = search(graph, priority, base, index + 1, chosen, excluded);
    excluded.remove(v);
    result
}

/// The `≪` test of Proposition 5: every tuple of `base \ candidate` is dominated by some
/// tuple of `candidate \ base`.
pub fn dominates_base(priority: &Priority, base: &TupleSet, candidate: &TupleSet) -> bool {
    let dropped = base.difference(candidate);
    let added = candidate.difference(base);
    let covered =
        dropped.iter().all(|x| !priority.dominators_of(x).intersection(&added).is_empty());
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Example 8: conflict graph tc–ta, tc–tb with total priority tc ≻ ta, tc ≻ tb.
    /// Repairs: {ta,tb} and {tc}; {ta,tb} is dominated by {tc}, {tc} is not dominated.
    fn example8() -> (Arc<ConflictGraph>, Priority) {
        let graph = Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(2), TupleId(0)), (TupleId(2), TupleId(1))],
        ));
        let priority = Priority::from_pairs(
            Arc::clone(&graph),
            &[(TupleId(2), TupleId(0)), (TupleId(2), TupleId(1))],
        )
        .unwrap();
        (graph, priority)
    }

    /// Example 9: the 5-vertex path with the total priority ta ≻ tb ≻ tc ≻ td ≻ te.
    /// Repairs: r1 = {ta,tc,te} and r2 = {tb,td}; r1 ≪-dominates r2 (tb is dominated by
    /// ta and td by tc), so r2 is not globally optimal while r1 is (Section 3.3).
    fn example9() -> (Arc<ConflictGraph>, Priority) {
        let graph = Arc::new(ConflictGraph::from_edges(
            5,
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ],
        ));
        let priority = Priority::from_pairs(
            Arc::clone(&graph),
            &[
                (TupleId(0), TupleId(1)),
                (TupleId(1), TupleId(2)),
                (TupleId(2), TupleId(3)),
                (TupleId(3), TupleId(4)),
            ],
        )
        .unwrap();
        (graph, priority)
    }

    #[test]
    fn example_8_duplicate_repair_is_dominated() {
        let (graph, priority) = example8();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(1)]);
        let r2 = TupleSet::from_ids([TupleId(2)]);
        let witness = exists_dominating_repair(&graph, &priority, &r1).expect("r1 is dominated");
        assert_eq!(witness, r2);
        assert!(exists_dominating_repair(&graph, &priority, &r2).is_none());
    }

    #[test]
    fn example_9_only_the_alternating_repair_is_undominated() {
        let (graph, priority) = example9();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(2), TupleId(4)]);
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(3)]);
        assert!(exists_dominating_repair(&graph, &priority, &r1).is_none());
        assert_eq!(exists_dominating_repair(&graph, &priority, &r2), Some(r1));
    }

    #[test]
    fn empty_priority_dominates_nothing() {
        let (graph, _) = example9();
        let empty = Priority::empty(Arc::clone(&graph));
        let r2 = TupleSet::from_ids([TupleId(1), TupleId(3)]);
        assert!(exists_dominating_repair(&graph, &empty, &r2).is_none());
    }

    #[test]
    fn dominates_base_matches_the_definition() {
        let (_, priority) = example8();
        let r1 = TupleSet::from_ids([TupleId(0), TupleId(1)]);
        let r2 = TupleSet::from_ids([TupleId(2)]);
        assert!(dominates_base(&priority, &r1, &r2));
        assert!(!dominates_base(&priority, &r2, &r1));
        // A repair trivially ≪-dominates itself (empty difference); the search explicitly
        // excludes that degenerate witness.
        assert!(dominates_base(&priority, &r1, &r1));
    }

    #[test]
    fn partially_oriented_example_7_triangle() {
        // Example 7: triangle with ta ≻ tb and ta ≻ tc. Repairs are the three singletons.
        let graph = Arc::new(ConflictGraph::from_edges(
            3,
            &[(TupleId(0), TupleId(1)), (TupleId(1), TupleId(2)), (TupleId(0), TupleId(2))],
        ));
        let priority = Priority::from_pairs(
            Arc::clone(&graph),
            &[(TupleId(0), TupleId(1)), (TupleId(0), TupleId(2))],
        )
        .unwrap();
        let ta = TupleSet::from_ids([TupleId(0)]);
        let tb = TupleSet::from_ids([TupleId(1)]);
        let tc = TupleSet::from_ids([TupleId(2)]);
        assert!(exists_dominating_repair(&graph, &priority, &ta).is_none());
        assert_eq!(exists_dominating_repair(&graph, &priority, &tb), Some(ta.clone()));
        assert_eq!(exists_dominating_repair(&graph, &priority, &tc), Some(ta));
    }
}
