//! The data-cleaning baseline the paper argues against.
//!
//! The paper's introduction contrasts preference-driven consistent query answering with
//! the traditional data-cleaning pipeline \[16, 18, 23\]: integrate the sources, let the
//! user supply conflict-resolution rules (timestamps, source reliability, custom logic),
//! physically remove the losing tuples (or park them in a contingency table) and query
//! the cleaned database. Its shortcomings — incomplete rules leave the database
//! inconsistent, deletion loses information, and the incomplete information carried by
//! the conflicts is never exploited — are precisely what Examples 1–3 illustrate.
//!
//! This crate implements that baseline so the comparison can be reproduced:
//!
//! * [`source`] — provenance-tagged integration of consistent sources,
//! * [`cleaner`] — resolution rules (newest timestamp, most reliable source, custom) and
//!   the cleaning procedure with its contingency table,
//! * [`compare`] — side-by-side evaluation: plain answers on the cleaned database vs.
//!   preferred consistent answers on the uncleaned one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cleaner;
pub mod compare;
pub mod source;

pub use cleaner::{Cleaner, CleaningOutcome, ResolutionRule};
pub use compare::{compare_answers, AnswerComparison};
pub use source::{DataSource, Integration};
