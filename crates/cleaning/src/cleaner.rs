//! Conflict-resolution rules and the cleaning procedure.
//!
//! The cleaning pipeline examines every conflicting pair of tuples and applies the user's
//! resolution rules in order; the first rule with an opinion decides which tuple loses.
//! Losing tuples are removed from the kept set and recorded in the contingency table
//! \[23\]. If the rules cannot resolve every conflict the kept set remains inconsistent —
//! the situation Example 3 of the paper builds on.

use pdqi_constraints::ConflictGraph;
use pdqi_priority::SourceOrder;
use pdqi_relation::{TupleId, TupleSet};

use crate::source::Integration;

/// User-supplied resolution logic: given the integration and a conflicting pair, return
/// the loser (or `None` to abstain).
pub type CustomRule = Box<dyn Fn(&Integration, TupleId, TupleId) -> Option<TupleId>>;

/// A conflict-resolution rule. Rules see the provenance of both tuples of a conflicting
/// pair and may declare a loser or abstain.
pub enum ResolutionRule {
    /// Remove the tuple whose newest provenance timestamp is strictly older.
    PreferNewerTimestamp,
    /// Remove the tuple whose (primary) source is strictly less reliable.
    PreferReliableSource(SourceOrder),
    /// Arbitrary user logic: given the two tuple ids, return the loser (or `None`).
    Custom(CustomRule),
}

impl std::fmt::Debug for ResolutionRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolutionRule::PreferNewerTimestamp => f.write_str("PreferNewerTimestamp"),
            ResolutionRule::PreferReliableSource(_) => f.write_str("PreferReliableSource"),
            ResolutionRule::Custom(_) => f.write_str("Custom"),
        }
    }
}

impl ResolutionRule {
    /// The loser of the conflict between `a` and `b`, if this rule can decide it.
    fn loser(&self, integration: &Integration, a: TupleId, b: TupleId) -> Option<TupleId> {
        match self {
            ResolutionRule::PreferNewerTimestamp => {
                let timestamps = integration.newest_timestamps();
                match timestamps[a.index()].cmp(&timestamps[b.index()]) {
                    std::cmp::Ordering::Greater => Some(b),
                    std::cmp::Ordering::Less => Some(a),
                    std::cmp::Ordering::Equal => None,
                }
            }
            ResolutionRule::PreferReliableSource(order) => {
                let sources = integration.primary_sources();
                let (sa, sb) = (&sources[a.index()], &sources[b.index()]);
                if order.is_better(sa, sb) {
                    Some(b)
                } else if order.is_better(sb, sa) {
                    Some(a)
                } else {
                    None
                }
            }
            ResolutionRule::Custom(rule) => rule(integration, a, b),
        }
    }
}

/// The outcome of a cleaning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CleaningOutcome {
    /// Tuples kept in the cleaned database.
    pub kept: TupleSet,
    /// Tuples removed by some resolution rule (the contingency table).
    pub contingency: TupleSet,
    /// Conflicting pairs no rule could resolve (both tuples are kept).
    pub unresolved: Vec<(TupleId, TupleId)>,
}

impl CleaningOutcome {
    /// Whether the cleaned database is still inconsistent.
    pub fn still_inconsistent(&self) -> bool {
        !self.unresolved.is_empty()
    }
}

/// A cleaning procedure: an ordered list of resolution rules.
#[derive(Debug, Default)]
pub struct Cleaner {
    rules: Vec<ResolutionRule>,
}

impl Cleaner {
    /// A cleaner with no rules (keeps everything, resolves nothing).
    pub fn new() -> Self {
        Cleaner { rules: Vec::new() }
    }

    /// Appends a rule (rules are applied in insertion order).
    pub fn with_rule(mut self, rule: ResolutionRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Cleans the integrated instance: for every conflict edge the first rule with an
    /// opinion removes the losing tuple; unresolved conflicts keep both tuples.
    pub fn clean(&self, integration: &Integration, graph: &ConflictGraph) -> CleaningOutcome {
        let n = graph.vertex_count();
        let mut contingency = TupleSet::with_capacity(n);
        let mut unresolved = Vec::new();
        for &(a, b) in graph.edges() {
            let loser = self.rules.iter().find_map(|rule| rule.loser(integration, a, b));
            match loser {
                Some(loser) => {
                    contingency.insert(loser);
                }
                None => unresolved.push((a, b)),
            }
        }
        let mut kept = TupleSet::full(n);
        kept.remove_all(&contingency);
        // Conflicts whose loser was removed because of *another* conflict are resolved
        // incidentally; keep only the pairs that truly survive together.
        let unresolved =
            unresolved.into_iter().filter(|&(a, b)| kept.contains(a) && kept.contains(b)).collect();
        CleaningOutcome { kept, contingency, unresolved }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DataSource;
    use pdqi_constraints::FdSet;
    use pdqi_relation::{RelationSchema, Value, ValueType};
    use std::sync::Arc;

    fn mgr_schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        )
    }

    fn example1() -> (Integration, ConflictGraph) {
        let sources = vec![
            DataSource::new(
                "s1",
                vec![vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)]],
                3,
            ),
            DataSource::new(
                "s2",
                vec![vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)]],
                2,
            ),
            DataSource::new(
                "s3",
                vec![
                    vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                    vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
                ],
                1,
            ),
        ];
        let integration = Integration::integrate(mgr_schema(), &sources).unwrap();
        let fds = FdSet::parse(
            mgr_schema(),
            &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"],
        )
        .unwrap();
        let graph = ConflictGraph::build(integration.instance(), &fds);
        (integration, graph)
    }

    #[test]
    fn example_3_partial_reliability_leaves_an_inconsistent_database() {
        let (integration, graph) = example1();
        // s3 less reliable than s1 and s2; s1 vs s2 unknown.
        let mut order = SourceOrder::new();
        order.prefer("s1", "s3").prefer("s2", "s3");
        let outcome = Cleaner::new()
            .with_rule(ResolutionRule::PreferReliableSource(order))
            .clean(&integration, &graph);
        // The s3 tuples are removed, the Mary/John R&D conflict survives: r' of Example 3.
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(0), TupleId(1)]));
        assert_eq!(outcome.contingency, TupleSet::from_ids([TupleId(2), TupleId(3)]));
        assert!(outcome.still_inconsistent());
        assert_eq!(outcome.unresolved, vec![(TupleId(0), TupleId(1))]);
    }

    #[test]
    fn timestamps_resolve_every_conflict_of_example_1() {
        let (integration, graph) = example1();
        let outcome = Cleaner::new()
            .with_rule(ResolutionRule::PreferNewerTimestamp)
            .clean(&integration, &graph);
        // s1 (t=3) beats s2 (t=2) and s3 (t=1); s2 beats s3. Note the information loss
        // the paper warns about: (John,PR) loses against (John,R&D) even though
        // (John,R&D) is itself removed, so the cleaned database keeps a single tuple
        // while the corresponding repair {Mary-R&D, John-PR} would keep two.
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(0)]));
        assert_eq!(outcome.contingency.len(), 3);
        assert!(!outcome.still_inconsistent());
    }

    #[test]
    fn a_cleaner_without_rules_keeps_everything() {
        let (integration, graph) = example1();
        let outcome = Cleaner::new().clean(&integration, &graph);
        assert_eq!(outcome.kept.len(), 4);
        assert!(outcome.contingency.is_empty());
        assert_eq!(outcome.unresolved.len(), graph.edge_count());
    }

    #[test]
    fn rules_are_applied_in_order() {
        let (integration, graph) = example1();
        // A custom rule that always removes the higher tuple id, placed before the
        // timestamp rule: the custom rule wins.
        let outcome = Cleaner::new()
            .with_rule(ResolutionRule::Custom(Box::new(|_, a, b| Some(a.max(b)))))
            .with_rule(ResolutionRule::PreferNewerTimestamp)
            .clean(&integration, &graph);
        assert!(outcome.kept.contains(TupleId(0)));
        assert!(!outcome.kept.contains(TupleId(2)));
        assert!(!outcome.still_inconsistent());
    }

    #[test]
    fn incidentally_resolved_conflicts_are_not_reported_unresolved() {
        let (integration, graph) = example1();
        // Only resolve conflicts touching tuple 0 (remove the other side); the John
        // R&D–PR conflict is untouched, but the Mary conflicts disappear with tuple 1/2.
        let outcome = Cleaner::new()
            .with_rule(ResolutionRule::Custom(Box::new(|_, a, b| {
                if a == TupleId(0) {
                    Some(b)
                } else if b == TupleId(0) {
                    Some(a)
                } else {
                    None
                }
            })))
            .clean(&integration, &graph);
        // Tuple 1 was removed, so the (1,3) conflict is incidentally resolved.
        assert!(outcome.unresolved.is_empty());
        assert_eq!(outcome.kept, TupleSet::from_ids([TupleId(0), TupleId(3)]));
    }
}
