//! Provenance-tagged integration of data sources.
//!
//! Example 1 of the paper integrates three individually consistent sources `s1`, `s2`,
//! `s3` into a single inconsistent instance. [`Integration`] performs that union while
//! remembering, for every tuple of the result, which sources contributed it and when —
//! the information the cleaning rules and the reliability-based priorities consume.

use std::sync::Arc;

use pdqi_relation::{RelationInstance, RelationSchema, TupleId, Value};

/// One data source: a name, its (consistent or not) instance and an optional timestamp
/// describing the freshness of the whole source.
#[derive(Debug, Clone)]
pub struct DataSource {
    /// The source name (used by reliability orders).
    pub name: String,
    /// The source's tuples.
    pub rows: Vec<Vec<Value>>,
    /// Freshness of the source; larger is newer.
    pub timestamp: i64,
}

impl DataSource {
    /// Creates a source from raw rows.
    pub fn new(name: impl Into<String>, rows: Vec<Vec<Value>>, timestamp: i64) -> Self {
        DataSource { name: name.into(), rows, timestamp }
    }
}

/// Per-tuple provenance: the contributing source and its timestamp. A tuple contributed
/// by several sources carries one record per contributor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Source name.
    pub source: String,
    /// Source timestamp.
    pub timestamp: i64,
}

/// The result of integrating several sources over one schema.
#[derive(Debug, Clone)]
pub struct Integration {
    instance: RelationInstance,
    provenance: Vec<Vec<Provenance>>,
}

impl Integration {
    /// Unions the sources into one instance (set semantics), recording provenance.
    pub fn integrate(
        schema: Arc<RelationSchema>,
        sources: &[DataSource],
    ) -> Result<Self, pdqi_relation::RelationError> {
        let mut instance = RelationInstance::new(schema);
        let mut provenance: Vec<Vec<Provenance>> = Vec::new();
        for source in sources {
            for row in &source.rows {
                let (id, fresh) = instance.insert(row.clone())?;
                if fresh {
                    provenance.push(Vec::new());
                }
                provenance[id.index()]
                    .push(Provenance { source: source.name.clone(), timestamp: source.timestamp });
            }
        }
        Ok(Integration { instance, provenance })
    }

    /// The integrated instance.
    pub fn instance(&self) -> &RelationInstance {
        &self.instance
    }

    /// The provenance records of one tuple.
    pub fn provenance(&self, id: TupleId) -> &[Provenance] {
        &self.provenance[id.index()]
    }

    /// The primary (first-contributing) source of each tuple, indexed by tuple id — the
    /// shape expected by [`pdqi_priority::priority_from_source_reliability`].
    pub fn primary_sources(&self) -> Vec<String> {
        self.provenance
            .iter()
            .map(|records| records.first().map(|p| p.source.clone()).unwrap_or_default())
            .collect()
    }

    /// The newest timestamp attached to each tuple, indexed by tuple id — usable as a
    /// score vector for [`pdqi_priority::priority_from_scores`].
    pub fn newest_timestamps(&self) -> Vec<i64> {
        self.provenance
            .iter()
            .map(|records| records.iter().map(|p| p.timestamp).max().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdqi_relation::ValueType;

    fn mgr_schema() -> Arc<RelationSchema> {
        Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        )
    }

    /// The three sources of Example 1.
    pub fn example1_sources() -> Vec<DataSource> {
        vec![
            DataSource::new(
                "s1",
                vec![vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)]],
                3,
            ),
            DataSource::new(
                "s2",
                vec![vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)]],
                2,
            ),
            DataSource::new(
                "s3",
                vec![
                    vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                    vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
                ],
                1,
            ),
        ]
    }

    #[test]
    fn example_1_integration_produces_the_four_tuple_instance() {
        let integration = Integration::integrate(mgr_schema(), &example1_sources()).unwrap();
        assert_eq!(integration.instance().len(), 4);
        assert_eq!(integration.primary_sources(), vec!["s1", "s2", "s3", "s3"]);
        assert_eq!(integration.newest_timestamps(), vec![3, 2, 1, 1]);
    }

    #[test]
    fn duplicate_tuples_accumulate_provenance() {
        let schema = mgr_schema();
        let shared = vec![Value::name("Mary"), Value::name("R&D"), Value::int(40), Value::int(3)];
        let sources = vec![
            DataSource::new("a", vec![shared.clone()], 10),
            DataSource::new("b", vec![shared], 20),
        ];
        let integration = Integration::integrate(schema, &sources).unwrap();
        assert_eq!(integration.instance().len(), 1);
        assert_eq!(integration.provenance(TupleId(0)).len(), 2);
        assert_eq!(integration.newest_timestamps(), vec![20]);
        assert_eq!(integration.primary_sources(), vec!["a"]);
    }

    #[test]
    fn schema_violations_are_propagated() {
        let sources = vec![DataSource::new("bad", vec![vec![Value::int(1)]], 0)];
        assert!(Integration::integrate(mgr_schema(), &sources).is_err());
    }
}
