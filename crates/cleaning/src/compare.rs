//! Side-by-side comparison: cleaning vs. preferred consistent query answering.
//!
//! Example 3 of the paper makes the case for preference-driven CQA: with only partial
//! reliability information, cleaning produces a database that is still inconsistent and
//! answers `Q2` with a misleading `false`, while the preferred-repair semantics answers
//! `true`. [`compare_answers`] reproduces that comparison for an arbitrary scenario and
//! is the backbone of the `cleaning_vs_cqa` example and of experiment E10.

use pdqi_constraints::FdSet;
use pdqi_core::cqa::preferred_consistent_answer;
use pdqi_core::{FamilyKind, RepairContext};
use pdqi_priority::Priority;
use pdqi_query::{Evaluator, Formula, QueryError};

use crate::cleaner::CleaningOutcome;
use crate::source::Integration;

/// The three answers produced for one closed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnswerComparison {
    /// Plain evaluation of the query over the cleaned database (what a user who trusts
    /// the cleaning pipeline sees).
    pub cleaned_answer: bool,
    /// Whether the cleaned database is still inconsistent (making the previous answer
    /// potentially meaningless).
    pub cleaned_still_inconsistent: bool,
    /// The preferred consistent answer over the *uncleaned* database: `Some(true)` /
    /// `Some(false)` when determined, `None` when the inconsistency leaves it open.
    pub preferred_answer: Option<bool>,
}

/// Evaluates a closed query (a) over the cleaned database and (b) as a preferred
/// consistent answer over the original integrated instance with the given priority and
/// family.
pub fn compare_answers(
    integration: &Integration,
    fds: &FdSet,
    cleaning: &CleaningOutcome,
    priority: &Priority,
    family: FamilyKind,
    query: &Formula,
) -> Result<AnswerComparison, QueryError> {
    let cleaned_answer =
        Evaluator::with_restricted(integration.instance(), &cleaning.kept).eval_closed(query)?;
    let ctx = RepairContext::new(integration.instance().clone(), fds.clone());
    let outcome = preferred_consistent_answer(&ctx, priority, family.family().as_ref(), query)?;
    let preferred_answer = if outcome.certainly_true {
        Some(true)
    } else if outcome.certainly_false {
        Some(false)
    } else {
        None
    };
    Ok(AnswerComparison {
        cleaned_answer,
        cleaned_still_inconsistent: cleaning.still_inconsistent(),
        preferred_answer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cleaner::{Cleaner, ResolutionRule};
    use crate::source::DataSource;
    use pdqi_constraints::ConflictGraph;
    use pdqi_priority::{priority_from_source_reliability, SourceOrder};
    use pdqi_query::parse_formula;
    use pdqi_relation::{RelationSchema, Value, ValueType};
    use std::sync::Arc;

    const Q2: &str = "EXISTS d1,s1,r1,d2,s2,r2 . Mgr('Mary',d1,s1,r1) AND Mgr('John',d2,s2,r2) AND s1 > s2 AND r1 < r2";

    fn example3_setup() -> (Integration, FdSet, ConflictGraph, SourceOrder) {
        let schema = Arc::new(
            RelationSchema::from_pairs(
                "Mgr",
                &[
                    ("Name", ValueType::Name),
                    ("Dept", ValueType::Name),
                    ("Salary", ValueType::Int),
                    ("Reports", ValueType::Int),
                ],
            )
            .unwrap(),
        );
        let sources = vec![
            DataSource::new(
                "s1",
                vec![vec!["Mary".into(), "R&D".into(), Value::int(40), Value::int(3)]],
                0,
            ),
            DataSource::new(
                "s2",
                vec![vec!["John".into(), "R&D".into(), Value::int(10), Value::int(2)]],
                0,
            ),
            DataSource::new(
                "s3",
                vec![
                    vec!["Mary".into(), "IT".into(), Value::int(20), Value::int(1)],
                    vec!["John".into(), "PR".into(), Value::int(30), Value::int(4)],
                ],
                0,
            ),
        ];
        let integration = Integration::integrate(Arc::clone(&schema), &sources).unwrap();
        let fds =
            FdSet::parse(schema, &["Dept -> Name Salary Reports", "Name -> Dept Salary Reports"])
                .unwrap();
        let graph = ConflictGraph::build(integration.instance(), &fds);
        let mut order = SourceOrder::new();
        order.prefer("s1", "s3").prefer("s2", "s3");
        (integration, fds, graph, order)
    }

    #[test]
    fn example_3_cleaning_misleads_while_preferred_cqa_answers_true() {
        let (integration, fds, graph, order) = example3_setup();
        let cleaning = Cleaner::new()
            .with_rule(ResolutionRule::PreferReliableSource(order.clone()))
            .clean(&integration, &graph);
        let priority = priority_from_source_reliability(
            Arc::new(graph.clone()),
            &integration.primary_sources(),
            &order,
        );
        let q2 = parse_formula(Q2).unwrap();
        let comparison =
            compare_answers(&integration, &fds, &cleaning, &priority, FamilyKind::Global, &q2)
                .unwrap();
        // The cleaned database answers `false` and is still inconsistent, while the
        // preferred consistent answer is `true` — exactly the paper's Example 3.
        assert!(!comparison.cleaned_answer);
        assert!(comparison.cleaned_still_inconsistent);
        assert_eq!(comparison.preferred_answer, Some(true));
    }

    #[test]
    fn without_preferences_the_answer_is_undetermined() {
        let (integration, fds, graph, _) = example3_setup();
        let cleaning = Cleaner::new().clean(&integration, &graph);
        let empty = Priority::empty(Arc::new(graph));
        let q2 = parse_formula(Q2).unwrap();
        let comparison =
            compare_answers(&integration, &fds, &cleaning, &empty, FamilyKind::Rep, &q2).unwrap();
        assert_eq!(comparison.preferred_answer, None);
        assert!(comparison.cleaned_still_inconsistent);
    }
}
